//! "Trace-based simulators always give the same results, provided that the
//! user code is deterministic" (§VII-C) — across the whole pipeline:
//! generation, compression, both simulators, and randomized predictors.

use mbp::compress::{compress, decompress, Codec};
use mbp::examples::{Batage, BatageConfig, Tage, TageConfig};
use mbp::sim::{simulate, simulate_comparison, SimConfig, SliceSource};
use mbp::trace::translate;
use mbp::workloads::Suite;

#[test]
fn whole_pipeline_is_reproducible() {
    let run_once = || {
        let suite = Suite::smoke();
        let mut digest = Vec::new();
        for spec in &suite.traces {
            let records = spec.records();
            // Compress/decompress round trip inside the pipeline.
            let sbbt = translate::records_to_sbbt(&records).unwrap();
            let packed = compress(&sbbt, Codec::Mzst, 19).unwrap();
            let restored = translate::sbbt_to_records(decompress(&packed).unwrap()).unwrap();
            let mut source = SliceSource::new(&restored);
            let mut tage = Tage::new(TageConfig::small());
            let r = simulate(&mut source, &mut tage, &SimConfig::default()).unwrap();
            digest.push((
                spec.name.clone(),
                r.metrics.mispredictions,
                r.metadata.num_conditional_branches,
                packed.len(),
            ));
        }
        digest
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn randomized_predictors_are_seed_deterministic() {
    let records = Suite::smoke().traces[1].records();
    let run = || {
        let mut source = SliceSource::new(&records);
        let mut batage = Batage::new(BatageConfig::small());
        simulate(&mut source, &mut batage, &SimConfig::default())
            .unwrap()
            .metrics
            .mispredictions
    };
    assert_eq!(run(), run());
}

#[test]
fn comparison_simulator_is_deterministic() {
    let records = Suite::smoke().traces[0].records();
    let run = || {
        let mut source = SliceSource::new(&records);
        let mut a = Tage::new(TageConfig::small());
        let mut b = Batage::new(BatageConfig::small());
        let r = simulate_comparison(&mut source, &mut a, &mut b, &SimConfig::default()).unwrap();
        (r.mispredictions, r.only_a_wrong, r.only_b_wrong)
    };
    assert_eq!(run(), run());
}

#[test]
fn most_failed_report_is_stable() {
    // Ties in the most-failed report break deterministically (by address),
    // so tooling diffing two runs sees no churn.
    let records = Suite::smoke().traces[0].records();
    let run = || {
        let mut source = SliceSource::new(&records);
        let mut tage = Tage::new(TageConfig::small());
        let r = simulate(&mut source, &mut tage, &SimConfig::default()).unwrap();
        r.most_failed
            .iter()
            .map(|s| (s.ip, s.mispredictions))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
