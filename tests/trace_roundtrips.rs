//! End-to-end trace format round trips, including compression and files on
//! disk — the translation tooling of §IV-D.

use std::io::Write;

use mbp::compress::{compress, Codec};
use mbp::trace::sbbt::{SbbtReader, SbbtWriter};
use mbp::trace::{bt9, translate, BranchRecord};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn sample(seed: u64, instructions: u64) -> Vec<BranchRecord> {
    TraceGenerator::from_params(&ProgramParams::int_speed(), seed).take_instructions(instructions)
}

#[test]
fn sbbt_file_roundtrip_uncompressed() {
    let records = sample(1, 100_000);
    let dir = std::env::temp_dir().join("mbplib-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.sbbt");
    let mut w = SbbtWriter::create(&path).unwrap();
    for r in &records {
        w.write_record(r).unwrap();
    }
    w.finish().unwrap();

    let mut r = SbbtReader::open(&path).unwrap();
    assert_eq!(r.header().branch_count, records.len() as u64);
    assert_eq!(r.read_all().unwrap(), records);
}

#[test]
fn sbbt_file_roundtrip_both_codecs() {
    let records = sample(2, 100_000);
    let dir = std::env::temp_dir().join("mbplib-tests");
    std::fs::create_dir_all(&dir).unwrap();
    for (codec, level) in [(Codec::Mgz, 6), (Codec::Mzst, 19)] {
        let path = dir.join(format!("roundtrip.sbbt.{}", codec.extension()));
        let mut w = SbbtWriter::create_compressed(&path, codec, level).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish_compressed().unwrap();

        let raw_size = 24 + 16 * records.len() as u64;
        let disk = std::fs::metadata(&path).unwrap().len();
        assert!(disk < raw_size, "{codec}: no compression achieved");

        let mut r = SbbtReader::open(&path).unwrap();
        assert_eq!(r.read_all().unwrap(), records, "{codec} roundtrip");
    }
}

#[test]
fn bt9_file_roundtrip_compressed() {
    let records = sample(3, 60_000);
    let text = translate::records_to_bt9(&records);
    let dir = std::env::temp_dir().join("mbplib-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.bt9.mgz");
    let packed = compress(text.as_bytes(), Codec::Mgz, 9).unwrap();
    std::fs::File::create(&path)
        .unwrap()
        .write_all(&packed)
        .unwrap();

    let trace = bt9::open(&path).unwrap();
    let back: Vec<_> = trace.records().collect();
    assert_eq!(back, records);
}

#[test]
fn full_translation_chain_preserves_branch_stream() {
    // records → champsim → SBBT → records → BT9 → SBBT → records.
    let records = sample(4, 50_000);
    let champ = translate::records_to_champsim(&records).unwrap();
    let reader = mbp::trace::champsim::ChampsimReader::from_reader(&champ[..]).unwrap();
    let sbbt = translate::champsim_to_sbbt(reader).unwrap();
    let stage1 = translate::sbbt_to_records(sbbt).unwrap();
    assert_eq!(stage1.len(), records.len());
    for (a, b) in stage1.iter().zip(&records) {
        assert_eq!(a.branch.ip(), b.branch.ip());
        assert_eq!(a.branch.is_taken(), b.branch.is_taken());
        assert_eq!(a.gap, b.gap);
    }

    let bt9_text = translate::records_to_bt9(&stage1);
    let parsed = bt9::parse_text(&bt9_text).unwrap();
    let stage2 = translate::sbbt_to_records(translate::bt9_to_sbbt(&parsed).unwrap()).unwrap();
    assert_eq!(stage2, stage1);
}

#[test]
fn format_sizes_are_ordered_like_table1() {
    let records = sample(5, 200_000);
    let sbbt = translate::records_to_sbbt(&records).unwrap();
    let bt9 = translate::records_to_bt9(&records);
    let champ = translate::records_to_champsim(&records).unwrap();

    // §IV: "the absence of the branch graph in the header makes the SBBT
    // traces contain more redundant information. This may make the files
    // bigger" — raw BT9 (deduplicated via its graph) may well be smaller
    // than raw SBBT; what must hold is that the per-instruction format
    // dwarfs both.
    assert!(
        champ.len() > 4 * sbbt.len(),
        "ChampSim {} vs SBBT {}",
        champ.len(),
        sbbt.len()
    );
    assert!(
        champ.len() > 4 * bt9.len(),
        "ChampSim {} vs BT9 {}",
        champ.len(),
        bt9.len()
    );

    // "Using a good compression method also helps to reduce the amount of
    // redundant information": compressed SBBT must shed most of its raw
    // redundancy and land far below the compressed per-instruction trace
    // (Table I's 42× DPC3 row in miniature).
    let sbbt_mzst = compress(&sbbt, Codec::Mzst, 22).unwrap();
    let champ_mgz = compress(&champ, Codec::Mgz, 6).unwrap();
    assert!(
        sbbt_mzst.len() < sbbt.len() / 3,
        "SBBT should compress well: {} → {}",
        sbbt.len(),
        sbbt_mzst.len()
    );
    assert!(
        champ_mgz.len() > 3 * sbbt_mzst.len(),
        "compressed per-instruction {} should dwarf compressed SBBT {}",
        champ_mgz.len(),
        sbbt_mzst.len()
    );
}

#[test]
fn corrupted_files_error_cleanly() {
    let records = sample(6, 20_000);
    let mut sbbt = translate::records_to_sbbt(&records).unwrap();
    // Bit-flip in the middle of the packet stream: either an invalid packet
    // error or a silently tolerated value change — but never a panic. Flip
    // a reserved opcode bit, which must be caught.
    sbbt[24 + 16 * 100] |= 0b0111_0000;
    let mut reader = SbbtReader::from_bytes(sbbt).unwrap();
    let result = reader.read_all();
    assert!(result.is_err(), "reserved-bit corruption must be detected");
}
