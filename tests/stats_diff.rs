//! Tests of `mbpsim stats-diff`: the golden fixture pins the delta-report
//! format, and the CLI tests pin the exit-code contract.
//!
//! To regenerate the fixture after an intentional format change:
//! `MBP_UPDATE_GOLDEN=1 cargo test -p mbp --test stats_diff`.

use std::path::PathBuf;
use std::process::Command;

use mbp::diff::{diff_metrics, DiffOptions, Status};
use mbp::json::{json, Value};

/// The baseline side of the golden pair. The `compress` section exists only
/// here, so the diff reports its leaves as removed.
fn golden_baseline() -> Value {
    json!({
        "decode": { "packets_decoded": 4096, "time_s": 0.25 },
        "compress": { "bytes_in": 65536 },
        "simulate": {
            "instructions": 12288,
            "instructions_per_second": 12288000.0,
            "records": 4096,
            "time_s": 1.0,
        },
        "sweep": { "faults": 0, "worker_busy_s": 2.0 },
    })
}

/// The candidate side: one regression (slower simulate), one zero-baseline
/// regression (new faults), one improvement (faster rate), one unchanged
/// metric, two informational changes, and `timeseries`/`simpoint` sections
/// the baseline predates (reported as added; the simpoint `doc_hash` string
/// stays out of the numeric diff).
fn golden_candidate() -> Value {
    json!({
        "decode": { "packets_decoded": 4096, "time_s": 0.24 },
        "simulate": {
            "instructions": 12288,
            "instructions_per_second": 18000000.0,
            "records": 8192,
            "time_s": 1.5,
        },
        "sweep": { "faults": 2, "worker_busy_s": 2.0 },
        "timeseries": { "num_windows": 3, "warmup_end_window": 0 },
        "simpoint": {
            "doc_hash": "fnv1a64:0123456789abcdef",
            "simulated_fraction": 0.375,
            "max_error_estimate": 0.012,
        },
    })
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/stats_diff_golden.txt")
}

#[test]
fn report_format_matches_golden_fixture() {
    let report = diff_metrics(
        &golden_baseline(),
        &golden_candidate(),
        &DiffOptions { threshold_pct: 5.0 },
    );
    let rendered = report.render();
    let path = golden_path();
    if std::env::var_os("MBP_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "report format drifted from the golden fixture; if intentional, \
         regenerate with MBP_UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_pair_exercises_every_status() {
    let report = diff_metrics(
        &golden_baseline(),
        &golden_candidate(),
        &DiffOptions { threshold_pct: 5.0 },
    );
    assert!(report.has_regressions());
    assert_eq!(report.count(Status::Regression), 2, "time_s and faults");
    assert_eq!(report.count(Status::Improvement), 1, "the rate metric");
    assert!(report.count(Status::Unchanged) >= 2);
    assert!(
        report.count(Status::Changed) >= 2,
        "counts stay informational"
    );
    assert_eq!(
        report.count(Status::Added),
        4,
        "the timeseries section plus the simpoint numerics (doc_hash skipped)"
    );
    assert_eq!(report.count(Status::Removed), 1, "the compress section");
}

fn mbpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpsim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mbplib-stats-diff-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn cli_exits_five_on_regression_and_zero_when_clean() {
    let dir = temp_dir("exit-codes");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    std::fs::write(&a, format!("{:#}\n", golden_baseline())).unwrap();
    std::fs::write(&b, format!("{:#}\n", golden_candidate())).unwrap();

    let out = mbpsim()
        .arg("stats-diff")
        .args([&a, &b])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(5), "regression exit code");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("simulate.time_s"), "{stdout}");

    let out = mbpsim()
        .arg("stats-diff")
        .args([&a, &a])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "identical files are clean");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 regressed"), "{stdout}");
}

#[test]
fn cli_threshold_flag_loosens_the_gate() {
    let dir = temp_dir("threshold");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    // Only the 50% time_s slowdown; no zero-baseline fault regression.
    std::fs::write(&a, format!("{:#}\n", json!({"simulate": {"time_s": 1.0}}))).unwrap();
    std::fs::write(&b, format!("{:#}\n", json!({"simulate": {"time_s": 1.5}}))).unwrap();

    let strict = mbpsim()
        .arg("stats-diff")
        .args([&a, &b])
        .output()
        .expect("spawn");
    assert_eq!(strict.status.code(), Some(5));

    let loose = mbpsim()
        .arg("stats-diff")
        .args([&a, &b])
        .args(["--threshold", "75"])
        .output()
        .expect("spawn");
    assert_eq!(loose.status.code(), Some(0), "75% threshold tolerates +50%");
}

#[test]
fn cli_rejects_missing_operands_and_bad_files() {
    let out = mbpsim().arg("stats-diff").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage error");

    let dir = temp_dir("bad-files");
    let a = dir.join("a.json");
    std::fs::write(&a, "not json").unwrap();
    let out = mbpsim()
        .arg("stats-diff")
        .args([&a, &a])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "unparseable input");
}
