//! End-to-end tests of the `mbpsim` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn mbpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpsim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mbplib-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn list_names_every_stock_predictor() {
    let out = mbpsim().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for name in mbp::examples::PREDICTOR_NAMES {
        assert!(stdout.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn gen_run_info_pipeline() {
    let dir = temp_dir("pipeline");
    let out = mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = dir.join("SMOKE-mobile.sbbt.mzst");
    assert!(trace.exists());

    let out = mbpsim()
        .args(["info", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("branch density"), "{stdout}");

    let out = mbpsim()
        .args(["run", "--predictor", "gshare", "--trace"])
        .arg(&trace)
        .args(["--warmup", "1000"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("run output is valid JSON");
    assert_eq!(doc["metadata"]["warmup_instr"].as_u64(), Some(1000));
    assert!(doc["metrics"]["mpki"].as_f64().is_some());
}

#[test]
fn explain_emits_versioned_forensic_report() {
    let dir = temp_dir("explain");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let trace = dir.join("SMOKE-mobile.sbbt.mzst");

    let out = mbpsim()
        .arg("explain")
        .arg(&trace)
        .args(["tournament", "--top", "5"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("json");
    let forensics = doc.get("forensics").expect("forensics section");
    assert_eq!(forensics["schema_version"].as_u64(), Some(1));
    let top = forensics["top"].as_array().expect("top array");
    assert!(!top.is_empty() && top.len() <= 5, "top-K honored");
    assert!(
        top[0]["attribution"].as_object().is_some(),
        "tournament attributes its mispredictions"
    );
    let coverage = forensics["coverage"].as_array().expect("coverage curve");
    assert_eq!(coverage.len(), top.len());

    // Unknown predictor stays a usage error on the explain path too.
    let out = mbpsim()
        .arg("explain")
        .arg(&trace)
        .arg("frobnicator")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn translate_roundtrip_through_bt9() {
    let dir = temp_dir("translate");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let sbbt = dir.join("SMOKE-mobile.sbbt.mzst");
    let bt9 = dir.join("mobile.bt9.mgz");
    let back = dir.join("mobile-back.sbbt");

    assert!(mbpsim()
        .args(["translate", "--from"])
        .arg(&sbbt)
        .arg("--to")
        .arg(&bt9)
        .status()
        .expect("spawn")
        .success());
    assert!(mbpsim()
        .args(["translate", "--from"])
        .arg(&bt9)
        .arg("--to")
        .arg(&back)
        .status()
        .expect("spawn")
        .success());

    // The double translation preserves the branch stream exactly.
    let original = mbp::trace::sbbt::SbbtReader::open(&sbbt)
        .expect("open")
        .read_all()
        .expect("read");
    let roundtripped = mbp::trace::sbbt::SbbtReader::open(&back)
        .expect("open")
        .read_all()
        .expect("read");
    assert_eq!(original, roundtripped);
}

#[test]
fn compare_emits_comparison_json() {
    let dir = temp_dir("compare");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let out = mbpsim()
        .args(["compare", "--predictors", "bimodal,gshare", "--trace"])
        .arg(dir.join("SMOKE-server.sbbt.mzst"))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("valid JSON");
    assert!(doc["metrics"]["mpki_0"].as_f64().is_some());
    assert!(doc["metrics"]["mpki_1"].as_f64().is_some());
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = mbpsim()
        .args([
            "run",
            "--predictor",
            "nonexistent",
            "--trace",
            "/does/not/matter",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown predictor"), "{stderr}");

    let out = mbpsim().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = mbpsim()
        .args(["run", "--predictor", "gshare"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --trace"));
}

#[test]
fn usage_errors_exit_with_code_2() {
    for argv in [
        vec!["frobnicate"],
        vec!["run", "--predictor", "nonexistent", "--trace", "/x"],
        vec!["run", "--predictor", "gshare"],
        vec!["gen", "--suite", "bogus", "--out", "/tmp"],
    ] {
        let out = mbpsim().args(&argv).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{argv:?}");
    }
}

#[test]
fn corrupt_trace_exits_3_with_one_line_error() {
    let dir = temp_dir("corrupt");
    let trace = dir.join("bad.sbbt");
    // A valid signature followed by a header declaring u64::MAX branches.
    let mut bytes = b"SBBT\n\x01\x00\x00".to_vec();
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&trace, bytes).expect("write");

    for cmd in ["run", "info"] {
        let mut invocation = mbpsim();
        invocation.arg(cmd);
        if cmd == "run" {
            invocation.args(["--predictor", "gshare"]);
        }
        let out = invocation
            .arg("--trace")
            .arg(&trace)
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(3), "{cmd}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        // One structured line, not a panic backtrace.
        assert_eq!(stderr.lines().count(), 1, "{cmd}: {stderr}");
        assert!(stderr.starts_with("mbpsim: "), "{cmd}: {stderr}");
        assert!(!stderr.contains("panicked at"), "{cmd}: {stderr}");
        assert!(!stderr.contains("RUST_BACKTRACE"), "{cmd}: {stderr}");
    }
}

#[test]
fn truncated_compressed_trace_exits_3() {
    let dir = temp_dir("truncated");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let path = dir.join("SMOKE-mobile.sbbt.mzst");
    let mut bytes = std::fs::read(&path).expect("read");
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&path, bytes).expect("write");

    let out = mbpsim()
        .args(["info", "--trace"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked at"), "{stderr}");
}

#[test]
fn sweep_with_faulty_predictor_exits_4_and_reports_failure() {
    let dir = temp_dir("faulty-sweep");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let out = mbpsim()
        .args(["sweep", "--predictors", "bimodal,faulty,gshare", "--trace"])
        .arg(dir.join("SMOKE-mobile.sbbt.mzst"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4));

    // The JSON document is complete: survivors ranked, the failure listed.
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("sweep output is valid JSON");
    assert_eq!(doc["metadata"]["num_predictors"].as_u64(), Some(3));
    assert_eq!(doc["metadata"]["num_failures"].as_u64(), Some(1));
    assert_eq!(doc["failures"][0]["predictor"].as_str(), Some("faulty"));
    assert_eq!(doc["failures"][0]["kind"].as_str(), Some("panic"));
    let leaderboard: Vec<&str> = (0..2)
        .map(|i| doc["leaderboard"][i]["predictor"].as_str().expect("name"))
        .collect();
    assert!(leaderboard.contains(&"bimodal"), "{leaderboard:?}");
    assert!(leaderboard.contains(&"gshare"), "{leaderboard:?}");

    // The failure is also summarized on stderr, without a backtrace.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"faulty\" failed (panic)"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");
}
