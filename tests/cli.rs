//! End-to-end tests of the `mbpsim` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn mbpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpsim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mbplib-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn list_names_every_stock_predictor() {
    let out = mbpsim().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    for name in mbp::examples::PREDICTOR_NAMES {
        assert!(stdout.lines().any(|l| l == name), "missing {name}");
    }
}

#[test]
fn gen_run_info_pipeline() {
    let dir = temp_dir("pipeline");
    let out = mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = dir.join("SMOKE-mobile.sbbt.mzst");
    assert!(trace.exists());

    let out = mbpsim()
        .args(["info", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("branch density"), "{stdout}");

    let out = mbpsim()
        .args(["run", "--predictor", "gshare", "--trace"])
        .arg(&trace)
        .args(["--warmup", "1000"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("run output is valid JSON");
    assert_eq!(doc["metadata"]["warmup_instr"].as_u64(), Some(1000));
    assert!(doc["metrics"]["mpki"].as_f64().is_some());
}

#[test]
fn translate_roundtrip_through_bt9() {
    let dir = temp_dir("translate");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let sbbt = dir.join("SMOKE-mobile.sbbt.mzst");
    let bt9 = dir.join("mobile.bt9.mgz");
    let back = dir.join("mobile-back.sbbt");

    assert!(mbpsim()
        .args(["translate", "--from"])
        .arg(&sbbt)
        .arg("--to")
        .arg(&bt9)
        .status()
        .expect("spawn")
        .success());
    assert!(mbpsim()
        .args(["translate", "--from"])
        .arg(&bt9)
        .arg("--to")
        .arg(&back)
        .status()
        .expect("spawn")
        .success());

    // The double translation preserves the branch stream exactly.
    let original = mbp::trace::sbbt::SbbtReader::open(&sbbt)
        .expect("open")
        .read_all()
        .expect("read");
    let roundtripped = mbp::trace::sbbt::SbbtReader::open(&back)
        .expect("open")
        .read_all()
        .expect("read");
    assert_eq!(original, roundtripped);
}

#[test]
fn compare_emits_comparison_json() {
    let dir = temp_dir("compare");
    assert!(mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(&dir)
        .status()
        .expect("spawn")
        .success());
    let out = mbpsim()
        .args(["compare", "--predictors", "bimodal,gshare", "--trace"])
        .arg(dir.join("SMOKE-server.sbbt.mzst"))
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc: mbp::json::Value = String::from_utf8(out.stdout)
        .expect("utf8")
        .parse()
        .expect("valid JSON");
    assert!(doc["metrics"]["mpki_0"].as_f64().is_some());
    assert!(doc["metrics"]["mpki_1"].as_f64().is_some());
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = mbpsim()
        .args([
            "run",
            "--predictor",
            "nonexistent",
            "--trace",
            "/does/not/matter",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown predictor"), "{stderr}");

    let out = mbpsim().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = mbpsim()
        .args(["run", "--predictor", "gshare"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --trace"));
}
