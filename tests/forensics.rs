//! End-to-end misprediction forensics: on phase-heavy synthetic workloads
//! the attribution engine's top-10 hard-to-predict set must explain at
//! least the pinned fraction of all mispredictions for every stock
//! predictor, component attribution must be present for the composite
//! predictors, and — the other side of the contract — forensics disabled
//! must leave the simulation output exactly as it was.

use mbp::examples::by_name;
use mbp::sim::{simulate, ForensicsConfig, SimConfig, SliceSource, FORENSICS_SCHEMA_VERSION};
use mbp::trace::BranchRecord;
use mbp::workloads::{ProgramParams, TraceGenerator};

/// The eight stock predictors the forensics contract is pinned against.
const STOCK_PREDICTORS: [&str; 8] = [
    "bimodal",
    "two-level",
    "gshare",
    "gselect",
    "tournament",
    "hashed-perceptron",
    "tage",
    "batage",
];

/// The top-10 H2P set must explain at least this fraction of all
/// mispredictions (documented bound; also enforced by ci.sh on the smoke
/// trace). The floor is committed per workload: media/int concentrates its
/// miss mass (worst predictor ≥ 0.92 measured), while mobile/server spreads
/// it across ~90 mispredicting static branches, so its top-10 coverage
/// plateaus near 0.54 for the strongest predictors — the floor below pins
/// that shape against regression without overstating it.
const MIN_TOP10_COVERAGE_CONCENTRATED: f64 = 0.60;
const MIN_TOP10_COVERAGE_FLAT: f64 = 0.50;

/// Alternating slabs of two different synthetic programs — the same
/// phase-heavy construction the sampling accuracy suite pins.
fn phase_workload(
    a: &ProgramParams,
    b: &ProgramParams,
    seed: u64,
    slabs: usize,
    slab_instructions: u64,
) -> Vec<BranchRecord> {
    let mut gen_a = TraceGenerator::from_params(a, seed);
    let mut gen_b = TraceGenerator::from_params(b, seed + 1);
    let mut records = Vec::new();
    for i in 0..slabs {
        let source = if i % 2 == 0 { &mut gen_a } else { &mut gen_b };
        records.extend(source.take_instructions(slab_instructions));
    }
    records
}

fn forensic_config() -> SimConfig {
    SimConfig {
        forensics: Some(ForensicsConfig::default()),
        ..SimConfig::default()
    }
}

fn assert_workload_coverage(records: &[BranchRecord], floor: f64, label: &str) {
    for name in STOCK_PREDICTORS {
        let mut p = by_name(name).expect("stock predictor");
        let result = simulate(&mut SliceSource::new(records), &mut *p, &forensic_config())
            .expect("forensic sim");
        let report = result.forensics.as_ref().expect("forensics section");
        assert_eq!(
            report["schema_version"].as_u64(),
            Some(FORENSICS_SCHEMA_VERSION)
        );
        let coverage = report["coverage"].as_array().expect("coverage curve");
        let last = coverage.last().expect("non-empty coverage");
        let top_n = last["top_n"].as_u64().unwrap();
        let fraction = last["fraction"].as_f64().unwrap();
        assert!(top_n <= 10, "{label}/{name}: top set larger than 10");
        assert!(
            fraction >= floor,
            "{label}/{name}: top-{top_n} branches cover only {fraction:.3} \
             of mispredictions (< {floor})"
        );
        // The composite predictors must attribute their mispredictions to
        // a component; single-table predictors report no attribution.
        let attributed = report["top"].as_array().unwrap().iter().any(|b| {
            b["attribution"]
                .as_object()
                .is_some_and(|m| m.keys().count() > 0)
        });
        match name {
            "tournament" | "tage" | "batage" => assert!(
                attributed,
                "{label}/{name}: no component attribution in the top set"
            ),
            _ => assert!(
                !attributed,
                "{label}/{name}: unexpected attribution from a simple predictor"
            ),
        }
    }
}

#[test]
fn top10_covers_most_mispredictions_on_mobile_server_phases() {
    let records = phase_workload(
        &ProgramParams::mobile(),
        &ProgramParams::server(),
        7,
        20,
        10_000,
    );
    assert_workload_coverage(&records, MIN_TOP10_COVERAGE_FLAT, "mobile/server");
}

#[test]
fn top10_covers_most_mispredictions_on_media_int_phases() {
    let records = phase_workload(
        &ProgramParams::media(),
        &ProgramParams::int_speed(),
        11,
        20,
        10_000,
    );
    assert_workload_coverage(&records, MIN_TOP10_COVERAGE_CONCENTRATED, "media/int");
}

#[test]
fn forensics_is_a_pure_observer() {
    // Forensics on vs off must not change a single simulation result:
    // identical metrics and per-predictor statistics, and the off document
    // must not even carry the section.
    let records = phase_workload(
        &ProgramParams::mobile(),
        &ProgramParams::server(),
        7,
        6,
        10_000,
    );
    for name in ["gshare", "tournament", "tage"] {
        let mut on = by_name(name).unwrap();
        let mut off = by_name(name).unwrap();
        let with = simulate(
            &mut SliceSource::new(&records),
            &mut *on,
            &forensic_config(),
        )
        .unwrap();
        let without = simulate(
            &mut SliceSource::new(&records),
            &mut *off,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(without.forensics.is_none());
        // Wall-clock metadata differs between runs; the simulated outcome
        // must not.
        assert_eq!(
            with.metrics.mispredictions, without.metrics.mispredictions,
            "{name}: misprediction counts diverged"
        );
        assert_eq!(
            with.metrics.mpki, without.metrics.mpki,
            "{name}: mpki diverged"
        );
        assert_eq!(
            with.metrics.accuracy, without.metrics.accuracy,
            "{name}: accuracy diverged"
        );
    }
}

#[test]
fn explain_report_is_deterministic() {
    let records = phase_workload(
        &ProgramParams::media(),
        &ProgramParams::int_speed(),
        11,
        6,
        10_000,
    );
    let run = || {
        let mut p = by_name("tage").unwrap();
        simulate(&mut SliceSource::new(&records), &mut *p, &forensic_config())
            .unwrap()
            .forensics
            .unwrap()
            .to_string()
    };
    assert_eq!(run(), run(), "forensic report must be run-to-run stable");
}
