//! The composability contract (§IV-B, §VI-D): predictors as components.
//!
//! These tests exercise the property the train/track split exists for —
//! that an owning component can call `train` and `track` independently,
//! with different `Branch` values, on arbitrarily nested components.

use std::sync::{Arc, Mutex};

use mbp::examples::{
    AlwaysTaken, BiasFilter, Bimodal, Gshare, LoopPredictor, NeverTaken, Tournament,
};
use mbp::sim::{simulate, Predictor, SimConfig, SliceSource, Value};
use mbp::trace::{Branch, BranchRecord, Opcode};
use mbp::workloads::{ProgramParams, TraceGenerator};

/// A shared log of interface calls with their branch outcomes.
/// (`Arc<Mutex<_>>` rather than `Rc<RefCell<_>>` because `Tournament`
/// components must be `Send`.)
type CallLog = Arc<Mutex<Vec<(&'static str, u64, bool)>>>;

/// Records every interface call in a [`CallLog`].
#[derive(Clone, Default)]
struct Probe {
    log: CallLog,
    answer: bool,
}

impl Predictor for Probe {
    fn predict(&mut self, _ip: u64) -> bool {
        self.answer
    }
    fn train(&mut self, b: &Branch) {
        self.log
            .lock()
            .unwrap()
            .push(("train", b.ip(), b.is_taken()));
    }
    fn track(&mut self, b: &Branch) {
        self.log
            .lock()
            .unwrap()
            .push(("track", b.ip(), b.is_taken()));
    }
}

fn cond(ip: u64, taken: bool) -> Branch {
    Branch::new(ip, 0x10, Opcode::conditional_direct(), taken)
}

#[test]
fn meta_predictor_trains_components_with_synthetic_branches() {
    // §VI-D: the tournament trains its chooser with a branch whose outcome
    // is "component 1 was right", not the program outcome.
    let log = Arc::new(Mutex::new(Vec::new()));
    let meta = Probe {
        log: log.clone(),
        answer: false,
    };
    let mut t = Tournament::new(
        Box::new(meta),
        Box::new(NeverTaken),  // component 0: predicts false
        Box::new(AlwaysTaken), // component 1: predicts true
    );

    // Branch is taken → component 1 was right → meta's training branch
    // must carry outcome `true` even though... the program outcome is also
    // true here, so use a not-taken branch to disambiguate:
    let b = cond(0x100, false); // component 0 right → meta outcome false
    t.predict(b.ip());
    t.train(&b);
    let trains: Vec<_> = log
        .lock()
        .unwrap()
        .iter()
        .filter(|(what, _, _)| *what == "train")
        .cloned()
        .collect();
    assert_eq!(trains, vec![("train", 0x100, false)]);

    log.lock().unwrap().clear();
    let b = cond(0x100, true); // component 1 right → meta outcome true
    t.predict(b.ip());
    t.train(&b);
    let trains: Vec<_> = log
        .lock()
        .unwrap()
        .iter()
        .filter(|(what, _, _)| *what == "train")
        .cloned()
        .collect();
    assert_eq!(trains, vec![("train", 0x100, true)]);
}

#[test]
fn components_are_tracked_with_the_program_branch() {
    // "the track function of the meta-predictor is always invoked with the
    // program branch" — even when train got a synthetic one.
    let log = Arc::new(Mutex::new(Vec::new()));
    let meta = Probe {
        log: log.clone(),
        answer: false,
    };
    let mut t = Tournament::new(Box::new(meta), Box::new(NeverTaken), Box::new(AlwaysTaken));
    let b = cond(0x200, false);
    t.predict(b.ip());
    t.train(&b);
    t.track(&b);
    let tracks: Vec<_> = log
        .lock()
        .unwrap()
        .iter()
        .filter(|(what, _, _)| *what == "track")
        .cloned()
        .collect();
    assert_eq!(tracks, vec![("track", 0x200, false)]);
}

#[test]
fn three_level_nesting_runs_and_reports_nested_metadata() {
    // Filter over a loop predictor over a tournament: the paper's
    // composition freedoms all at once.
    let records =
        TraceGenerator::from_params(&ProgramParams::media(), 0xc0de).take_instructions(300_000);
    let mut stack = BiasFilter::new(Box::new(LoopPredictor::new(
        Box::new(Tournament::new(
            Box::new(Bimodal::new(10)),
            Box::new(Bimodal::new(12)),
            Box::new(Gshare::new(12, 12)),
        )),
        7,
    )));
    let mut source = SliceSource::new(&records);
    let result = simulate(&mut source, &mut stack, &SimConfig::default()).expect("runs");
    assert!(result.metrics.accuracy > 0.8, "nested stack still predicts");

    // Metadata nests three levels deep (JSON flexibility, §VI-D).
    let meta = result.metadata.predictor;
    assert_eq!(meta["name"].as_str(), Some("MBPlib Bias Filter"));
    assert_eq!(
        meta["inner"]["name"].as_str(),
        Some("MBPlib Loop Predictor")
    );
    assert_eq!(
        meta["inner"]["inner"]["name"].as_str(),
        Some("MBPlib Tournament")
    );
    assert_eq!(
        meta["inner"]["inner"]["predictor_1"]["name"].as_str(),
        Some("MBPlib GShare")
    );
}

#[test]
fn nested_stack_beats_or_matches_its_core_component() {
    let records =
        TraceGenerator::from_params(&ProgramParams::media(), 0xc0df).take_instructions(400_000);
    let mpki = |p: &mut dyn Predictor| {
        let mut source = SliceSource::new(&records);
        simulate(&mut source, p, &SimConfig::default())
            .expect("runs")
            .metrics
            .mpki
    };
    let plain = mpki(&mut Gshare::new(14, 13));
    let mut stacked = LoopPredictor::new(Box::new(Gshare::new(14, 13)), 8);
    let enhanced = mpki(&mut stacked);
    assert!(
        enhanced <= plain * 1.02,
        "loop-enhanced {enhanced:.3} should not lose to plain {plain:.3}"
    );
}

#[test]
fn boxed_predictors_compose_through_the_simulator() {
    // Box<dyn Predictor> is itself a Predictor (needed for heterogeneous
    // composition); run one straight through `simulate`.
    let records: Vec<BranchRecord> = (0..100)
        .map(|i| BranchRecord::new(cond(0x10, i % 2 == 0), 3))
        .collect();
    let mut boxed: Box<dyn Predictor> = Box::new(Gshare::new(8, 10));
    let mut source = SliceSource::new(&records);
    let result = simulate(&mut source, &mut boxed, &SimConfig::default()).expect("runs");
    assert_eq!(result.metadata.num_conditional_branches, 100);
    assert!(result.metadata.predictor != Value::Null);
}

#[test]
fn predict_remains_pure_across_all_stock_predictors() {
    // §IV-A: predict "shall not modify the state of the predictor in any
    // way that would affect future predictions". Calling predict an extra
    // time between train/track must not change results.
    use mbp::examples::by_name;
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 0xc0ee).take_instructions(120_000);
    for name in mbp::examples::PREDICTOR_NAMES {
        let run = |double_predict: bool| {
            let mut p = by_name(name).expect("stock predictor");
            let mut mis = 0u64;
            for r in &records {
                let b = r.branch;
                if b.is_conditional() {
                    if double_predict {
                        p.predict(b.ip());
                    }
                    mis += (p.predict(b.ip()) != b.is_taken()) as u64;
                    p.train(&b);
                }
                p.track(&b);
            }
            mis
        };
        assert_eq!(run(false), run(true), "{name} predict is not idempotent");
    }
}
