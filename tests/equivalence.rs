//! §VII-C: "MBPlib can be used as a replacement of the CBP5 framework …
//! we checked that the simulation results of both frameworks were
//! identical." This test enforces that property for every stock predictor.

use mbp::baselines::cbp5::{run_framework_text, McbpAdapter};
use mbp::examples::{
    Batage, BatageConfig, Bimodal, Gshare, HashedPerceptron, Tage, TageConfig, Tournament,
    TwoBcGskew, TwoLevel,
};
use mbp::sim::{simulate, Predictor, SimConfig, SliceSource};
use mbp::trace::{translate, BranchRecord};
use mbp::workloads::Suite;

fn suite_records() -> Vec<(String, Vec<BranchRecord>)> {
    Suite::smoke()
        .traces
        .iter()
        .map(|t| (t.name.clone(), t.records()))
        .collect()
}

fn assert_identical<P, Q>(name: &str, mut lib_pred: P, fw_pred: Q, records: &[BranchRecord])
where
    P: Predictor,
    Q: Predictor,
{
    let bt9 = translate::records_to_bt9(records);
    let mut adapter = McbpAdapter::new(fw_pred);
    let framework = run_framework_text(&bt9, &mut adapter).expect("framework run");

    let mut source = SliceSource::new(records);
    let library = simulate(&mut source, &mut lib_pred, &SimConfig::default()).expect("sim run");

    assert_eq!(
        framework.mispredictions, library.metrics.mispredictions,
        "{name}: mispredictions differ between CBP5 framework and MBPlib"
    );
    assert_eq!(
        framework.num_conditional_branches, library.metadata.num_conditional_branches,
        "{name}: conditional branch counts differ"
    );
    assert_eq!(
        framework.instructions, library.metadata.simulation_instr,
        "{name}: instruction counts differ"
    );
    assert_eq!(framework.mpki, library.metrics.mpki, "{name}: MPKI differs");
}

#[test]
fn bimodal_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(&name, Bimodal::new(12), Bimodal::new(12), &recs);
    }
}

#[test]
fn two_level_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            TwoLevel::gas(10, 8, 0),
            TwoLevel::gas(10, 8, 0),
            &recs,
        );
    }
}

#[test]
fn gshare_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(&name, Gshare::new(15, 13), Gshare::new(15, 13), &recs);
    }
}

#[test]
fn tournament_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            Tournament::classic(12),
            Tournament::classic(12),
            &recs,
        );
    }
}

#[test]
fn gskew_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            TwoBcGskew::new(14, 12),
            TwoBcGskew::new(14, 12),
            &recs,
        );
    }
}

#[test]
fn perceptron_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            HashedPerceptron::new(vec![4, 8, 16, 32], 12),
            HashedPerceptron::new(vec![4, 8, 16, 32], 12),
            &recs,
        );
    }
}

#[test]
fn tage_identical_across_simulators() {
    // TAGE uses a seeded RNG; determinism across the two drivers is part of
    // what this test proves.
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            Tage::new(TageConfig::small()),
            Tage::new(TageConfig::small()),
            &recs,
        );
    }
}

#[test]
fn batage_identical_across_simulators() {
    for (name, recs) in suite_records() {
        assert_identical(
            &name,
            Batage::new(BatageConfig::small()),
            Batage::new(BatageConfig::small()),
            &recs,
        );
    }
}
