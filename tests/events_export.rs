//! End-to-end tests of the event journal's export path: a real multi-worker
//! sweep, drained and rendered as Chrome trace-event JSON, must parse back
//! through `mbp-json` and satisfy the validator's per-thread monotonicity.
//!
//! The journal is process-global, so every test takes the same lock and
//! clears the journal while holding it.

use std::sync::{Mutex, MutexGuard, PoisonError};

use mbp::events_export::{chrome_trace_json, validate_chrome_trace};
use mbp::examples::by_name;
use mbp::json::Value;
use mbp::sim::{simulate_many, Predictor, SimConfig, SliceSource, SweepConfig};
use mbp::stats::events::{self, EventKind, EventName};
use mbp::trace::{Branch, BranchRecord};
use mbp::workloads::{ProgramParams, Suite, TraceGenerator};

fn journal_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    events::set_events_enabled(true);
    events::clear();
    guard
}

fn sweep_config(jobs: usize) -> SweepConfig {
    SweepConfig {
        sim: SimConfig {
            max_instructions: Some(50_000),
            ..SimConfig::default()
        },
        jobs,
        ..SweepConfig::default()
    }
}

/// A finite record block for sweeps: `simulate_many` decodes its whole
/// source up front, so it must not be fed the endless generator.
fn smoke_records() -> Vec<BranchRecord> {
    Suite::smoke().traces[0].records()
}

fn generator() -> TraceGenerator {
    TraceGenerator::from_params(&ProgramParams::mobile(), 1).with_name("EVENTS-test")
}

/// Wraps a stock predictor and sleeps once on the first prediction, so a
/// single fast worker cannot drain the whole queue before its sibling has
/// spawned — the test needs both workers to actually journal intervals.
struct SlowOnce {
    inner: Box<dyn Predictor + Send>,
    slept: bool,
}

impl SlowOnce {
    fn boxed(name: &str) -> Box<dyn Predictor + Send> {
        Box::new(Self {
            inner: by_name(name).unwrap(),
            slept: false,
        })
    }
}

impl Predictor for SlowOnce {
    fn predict(&mut self, ip: u64) -> bool {
        if !self.slept {
            self.slept = true;
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        self.inner.predict(ip)
    }
    fn train(&mut self, b: &Branch) {
        self.inner.train(b)
    }
    fn track(&mut self, b: &Branch) {
        self.inner.track(b)
    }
    fn metadata(&self) -> Value {
        self.inner.metadata()
    }
}

/// Panics after `n` predictions; exercises the sweep's `catch_unwind` path.
struct PanicAfter(u64);

impl Predictor for PanicAfter {
    fn predict(&mut self, _ip: u64) -> bool {
        if self.0 == 0 {
            panic!("intentional fault for testing");
        }
        self.0 -= 1;
        true
    }
    fn train(&mut self, _b: &Branch) {}
    fn track(&mut self, _b: &Branch) {}
    fn metadata(&self) -> Value {
        mbp::json::json!({"name": "panic-after"})
    }
}

#[test]
fn two_worker_sweep_round_trips_through_chrome_trace() {
    let _guard = journal_lock();
    let predictors: Vec<(String, Box<dyn Predictor + Send>)> =
        ["gshare", "bimodal", "gshare", "bimodal"]
            .iter()
            .enumerate()
            .map(|(i, name)| (format!("{name}-{i}"), SlowOnce::boxed(name)))
            .collect();
    let records = smoke_records();
    let mut trace = SliceSource::new(&records);
    let result = simulate_many(&mut trace, predictors, &sweep_config(2)).expect("sweep runs");
    assert_eq!(result.entries.len(), 4);
    assert_eq!(result.jobs, 2);

    let drained = events::drain();
    assert!(
        !drained.is_empty(),
        "an instrumented sweep leaves a journal"
    );
    let worker_tids: std::collections::HashSet<u64> = drained
        .iter()
        .filter(|e| e.name == EventName::SweepWorker)
        .map(|e| e.tid)
        .collect();
    assert_eq!(worker_tids.len(), 2, "both workers journal their intervals");
    assert!(
        drained.iter().any(|e| e.name == EventName::SweepDecode),
        "the decode pass is journaled"
    );
    assert_eq!(
        drained
            .iter()
            .filter(|e| e.name == EventName::SweepPredictorDone)
            .count(),
        4,
        "one completion instant per predictor"
    );

    // The export must survive a full serialize -> reparse -> validate loop.
    let doc = chrome_trace_json(&drained, events::dropped_events());
    let reparsed: Value = doc.to_pretty_string().parse().expect("trace JSON parses");
    let check = validate_chrome_trace(&reparsed).expect("strictly monotonic per thread");
    assert_eq!(check.events, drained.len() as u64);
    assert!(check.threads >= 3, "decode thread plus two workers");
}

#[test]
fn sweep_fault_path_keeps_worker_spans_paired() {
    let _guard = journal_lock();
    let predictors: Vec<(String, Box<dyn Predictor + Send>)> = vec![
        ("ok".to_string(), by_name("bimodal").unwrap()),
        ("buggy".to_string(), Box::new(PanicAfter(100))),
    ];
    let records = smoke_records();
    let mut trace = SliceSource::new(&records);
    let result = simulate_many(&mut trace, predictors, &sweep_config(2)).expect("sweep survives");
    assert_eq!(result.failures.len(), 1, "the fault is isolated");

    let drained = events::drain();
    assert!(
        drained.iter().any(|e| e.name == EventName::SweepFault),
        "the caught panic is journaled as an instant"
    );
    // Every worker interval that opened also closed — the panicking
    // predictor unwound through the span guard, not past it.
    for tid in drained
        .iter()
        .map(|e| e.tid)
        .collect::<std::collections::HashSet<_>>()
    {
        let begins = drained
            .iter()
            .filter(|e| {
                e.tid == tid && e.name == EventName::SweepWorker && e.kind == EventKind::SpanBegin
            })
            .count();
        let ends = drained
            .iter()
            .filter(|e| {
                e.tid == tid && e.name == EventName::SweepWorker && e.kind == EventKind::SpanEnd
            })
            .count();
        assert_eq!(begins, ends, "unbalanced worker spans on tid {tid}");
    }

    let doc = chrome_trace_json(&drained, events::dropped_events());
    validate_chrome_trace(&doc).expect("fault-path trace still validates");
}

#[test]
fn journal_overflow_is_counted_and_warned_about() {
    let _guard = journal_lock();
    assert_eq!(events::dropped_events(), 0, "clear() zeroes the loss count");
    assert_eq!(
        mbp::events_export::dropped_events_warning(events::dropped_events()),
        None,
        "a fresh journal warns about nothing"
    );
    // One thread's shard holds SHARD_CAPACITY events; overfill it so the
    // ring must evict and the producer-side loss counter moves.
    for i in 0..(events::SHARD_CAPACITY as u64 + 1000) {
        events::instant(EventName::TelemetryScrape, i);
    }
    let dropped = events::dropped_events();
    assert!(dropped >= 1000, "overfill is counted, got {dropped}");
    let warning =
        mbp::events_export::dropped_events_warning(dropped).expect("loss produces the warning");
    assert!(
        warning.contains(&format!("{dropped} event(s) dropped")),
        "{warning}"
    );
    events::clear();
}

#[test]
fn simulation_batches_feed_the_sampler() {
    let _guard = journal_lock();
    let before = events::sample_every();
    events::set_sample_every(4);
    let mut trace = generator();
    let mut predictor = by_name("gshare").unwrap();
    let cfg = SimConfig {
        max_instructions: Some(100_000),
        ..SimConfig::default()
    };
    mbp::sim::simulate(&mut trace, &mut *predictor, &cfg).expect("sim runs");
    events::set_sample_every(before);

    let drained = events::drain();
    let samples: Vec<_> = drained
        .iter()
        .filter(|e| e.kind == EventKind::Sample)
        .collect();
    assert!(
        !samples.is_empty(),
        "a multi-batch run crosses the sampling interval"
    );
    assert!(samples
        .iter()
        .any(|e| e.name == EventName::SampleSimRecords));
    // Cumulative series never go backwards within a thread.
    let mut last = 0u64;
    for s in samples
        .iter()
        .filter(|e| e.name == EventName::SampleSimRecords)
    {
        assert!(s.arg >= last, "cumulative sample series regressed");
        last = s.arg;
    }
}
