//! The windowed time-series must be driver-invisible, exactly like the
//! headline metrics: the scalar driver, the batched driver, and the
//! parallel sweep produce byte-identical `metrics.timeseries` JSON for the
//! same predictor, trace and configuration — including window sizes that
//! land windows exactly on (and one instruction off) batch boundaries, and
//! warm-up cut-offs inside a window.

use mbp::examples::{by_name, Gshare};
use mbp::sim::{
    simulate, simulate_many, simulate_scalar, Predictor, SimConfig, SimResult, SliceSource,
    SweepConfig, TraceSource, DEFAULT_WINDOW_INSTRUCTIONS,
};
use mbp::trace::sbbt::{SbbtReader, BATCH_RECORDS};
use mbp::trace::{translate, BranchRecord};
use mbp::workloads::Suite;

fn canonical_json(mut result: SimResult) -> String {
    result.metrics.simulation_time = 0.0;
    result.to_json().to_pretty_string()
}

fn fresh_reader(sbbt: &[u8]) -> SbbtReader {
    SbbtReader::from_decompressed(sbbt.to_vec()).expect("generated trace decodes")
}

fn run_scalar(sbbt: &[u8], predictor: &mut dyn Predictor, config: &SimConfig) -> SimResult {
    let mut reader = fresh_reader(sbbt);
    let source: &mut dyn TraceSource = &mut reader;
    simulate_scalar(source, predictor, config).expect("scalar sim")
}

fn run_batched(sbbt: &[u8], predictor: &mut dyn Predictor, config: &SimConfig) -> SimResult {
    let mut reader = fresh_reader(sbbt);
    let source: &mut dyn TraceSource = &mut reader;
    simulate(source, predictor, config).expect("batched sim")
}

/// Instructions covered by the first `n` records.
fn instructions_after(records: &[BranchRecord], n: usize) -> u64 {
    records.iter().take(n).map(|r| r.instructions()).sum()
}

/// Window sizes that stress the batched driver: a window ending exactly on
/// the first batch boundary, one instruction to either side, a tiny window
/// (many windows per batch), and one larger than the whole trace.
fn edge_windows(records: &[BranchRecord]) -> Vec<u64> {
    assert!(
        records.len() > 2 * BATCH_RECORDS,
        "smoke trace must span several batches for boundary tests"
    );
    let batch1 = instructions_after(records, BATCH_RECORDS);
    let total = instructions_after(records, records.len());
    vec![batch1 - 1, batch1, batch1 + 1, 1_000, total + 1_000]
}

#[test]
fn scalar_and_batched_timeseries_json_identical() {
    for spec in &Suite::smoke().traces {
        let records = spec.records();
        let sbbt = translate::records_to_sbbt(&records).expect("records encode");
        for window in edge_windows(&records) {
            let config = SimConfig {
                timeseries_window: Some(window),
                ..SimConfig::default()
            };
            let scalar = run_scalar(&sbbt, &mut Gshare::new(25, 18), &config);
            let batched = run_batched(&sbbt, &mut Gshare::new(25, 18), &config);
            assert!(
                scalar.timeseries.is_some(),
                "{}/window={window}: timeseries missing",
                spec.name
            );
            assert_eq!(
                canonical_json(scalar),
                canonical_json(batched),
                "{}/window={window}: scalar and batched JSON diverge",
                spec.name
            );
        }
    }
}

#[test]
fn scalar_and_batched_timeseries_csv_identical() {
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let sbbt = translate::records_to_sbbt(&records).expect("records encode");
    for window in edge_windows(&records) {
        let config = SimConfig {
            timeseries_window: Some(window),
            ..SimConfig::default()
        };
        let scalar = run_scalar(&sbbt, &mut Gshare::new(25, 18), &config);
        let batched = run_batched(&sbbt, &mut Gshare::new(25, 18), &config);
        let scalar_csv = scalar.timeseries.expect("scalar series").to_csv(None);
        let batched_csv = batched.timeseries.expect("batched series").to_csv(None);
        assert_eq!(scalar_csv, batched_csv, "window={window}: CSV diverges");
    }
}

#[test]
fn windows_tile_the_instruction_stream_exactly() {
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let sbbt = translate::records_to_sbbt(&records).expect("records encode");
    let total = instructions_after(&records, records.len());
    let window = 10_000u64;
    let config = SimConfig {
        timeseries_window: Some(window),
        ..SimConfig::default()
    };
    let result = run_batched(&sbbt, &mut Gshare::new(25, 18), &config);
    let series = result.timeseries.expect("series");
    assert_eq!(series.window_size, window);
    assert!(!series.windows.is_empty());

    // Windows tile the stream contiguously; a record spanning a boundary
    // may overshoot it, but every closed window must still cross the next
    // grid line past its start.
    let mut expected_start = 0u64;
    for (i, w) in series.windows.iter().enumerate() {
        assert_eq!(
            w.start_instruction, expected_start,
            "window {i} leaves a gap"
        );
        let end = w.start_instruction + w.instructions;
        if i + 1 < series.windows.len() {
            let grid = (w.start_instruction / window + 1) * window;
            assert!(end >= grid, "window {i} closed before its boundary");
        }
        expected_start = end;
    }
    let covered: u64 = series.windows.iter().map(|w| w.instructions).sum();
    assert_eq!(covered, total, "windows must tile the whole run");
    let mispredictions: u64 = series.windows.iter().map(|w| w.mispredictions).sum();
    assert_eq!(
        mispredictions, result.metrics.mispredictions,
        "per-window mispredictions must sum to the headline total"
    );
}

#[test]
fn warmup_cutoff_inside_a_window_is_driver_invisible() {
    let spec = &Suite::smoke().traces[1];
    let records = spec.records();
    let sbbt = translate::records_to_sbbt(&records).expect("records encode");
    let batch1 = instructions_after(&records, BATCH_RECORDS);
    for warmup in [batch1 - 1, batch1, batch1 + 1, 12_345] {
        let config = SimConfig {
            warmup_instructions: warmup,
            timeseries_window: Some(8_192),
            ..SimConfig::default()
        };
        let scalar = run_scalar(&sbbt, &mut Gshare::new(25, 18), &config);
        let batched = run_batched(&sbbt, &mut Gshare::new(25, 18), &config);
        assert_eq!(
            canonical_json(scalar),
            canonical_json(batched),
            "warmup={warmup}: drivers diverge with timeseries enabled"
        );
    }
}

#[test]
fn sweep_timeseries_matches_standalone_runs() {
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let names = ["gshare", "bimodal", "tage"];
    let predictors: Vec<(String, Box<dyn Predictor + Send>)> = names
        .iter()
        .map(|n| (n.to_string(), by_name(n).expect("known predictor")))
        .collect();
    let config = SweepConfig {
        sim: SimConfig {
            timeseries_window: Some(10_000),
            collect_probes: true,
            ..SimConfig::default()
        },
        jobs: 2,
        ..SweepConfig::default()
    };
    let mut source = SliceSource::named(&records, "traces/SMOKE.sbbt");
    let sweep = simulate_many(&mut source, predictors, &config).expect("sweep");

    for name in names {
        let entry = sweep
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("sweep lost predictor {name}"));
        assert!(
            entry.result.timeseries.is_some(),
            "{name}: sweep entry lost its timeseries"
        );
        let mut standalone = by_name(name).expect("known predictor");
        let mut source = SliceSource::named(&records, "traces/SMOKE.sbbt");
        let direct = simulate(&mut source, &mut *standalone, &config.sim).expect("sim");
        assert_eq!(
            canonical_json(entry.result.clone()),
            canonical_json(direct),
            "{name}: sweep entry JSON differs from a standalone run"
        );
    }
}

#[test]
fn timeseries_and_probes_are_off_by_default() {
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let sbbt = translate::records_to_sbbt(&records).expect("records encode");
    let result = run_batched(&sbbt, &mut Gshare::new(25, 18), &SimConfig::default());
    assert!(result.timeseries.is_none(), "timeseries must be opt-in");
    assert!(result.table_probes.is_empty(), "probes must be opt-in");
    let json = result.to_json().to_pretty_string();
    assert!(
        !json.contains("\"timeseries\""),
        "no timeseries key when disabled"
    );
    assert!(
        !json.contains("\"introspection\""),
        "no introspection key when disabled"
    );
    // The default window constant is what `--timeseries-out` without
    // `--window` selects; pin it so CLI docs stay truthful.
    assert_eq!(DEFAULT_WINDOW_INSTRUCTIONS, 100_000);
}
