//! Behavioural properties of the synthetic workload suites — the contract
//! that makes them a usable stand-in for the CBP5/DPC3 sets.

use mbp::examples::{Bimodal, Gshare, Tage, TageConfig};
use mbp::sim::{simulate, Predictor, SimConfig, SliceSource, TraceSource};
use mbp::workloads::{ProgramParams, Suite, TraceGenerator};

fn mpki(records: &[mbp::trace::BranchRecord], p: &mut dyn Predictor) -> f64 {
    let mut source = SliceSource::new(records);
    simulate(&mut source, p, &SimConfig::default())
        .expect("in-memory")
        .metrics
        .mpki
}

#[test]
fn suites_regenerate_identically() {
    let a = Suite::cbp5_training(1);
    let b = Suite::cbp5_training(1);
    for (ta, tb) in a.traces.iter().zip(&b.traces) {
        assert_eq!(ta.name, tb.name);
        assert_eq!(ta.records(), tb.records(), "{} must regenerate", ta.name);
    }
}

#[test]
fn category_difficulty_ordering() {
    // SERVER categories must be harder than MOBILE for the same predictor
    // (the CBP5 sets' defining property).
    let suite = Suite::cbp5_training(1);
    let mobile = suite
        .traces
        .iter()
        .find(|t| t.name.starts_with("SHORT_MOBILE"))
        .expect("mobile trace");
    let server = suite
        .traces
        .iter()
        .find(|t| t.name.starts_with("SHORT_SERVER"))
        .expect("server trace");
    let m = mpki(&mobile.records(), &mut Gshare::new(15, 14));
    let s = mpki(&server.records(), &mut Gshare::new(15, 14));
    assert!(m < s, "mobile {m:.2} should be easier than server {s:.2}");
}

#[test]
fn every_training_trace_is_predictable_but_not_trivial() {
    for spec in &Suite::cbp5_training(1).traces {
        let records = spec.records();
        let m = mpki(&records, &mut Tage::new(TageConfig::small()));
        assert!(m < 60.0, "{}: TAGE MPKI {m:.1} absurdly high", spec.name);
        let b = mpki(&records, &mut Bimodal::new(13));
        assert!(
            b > 0.05,
            "{}: bimodal MPKI {b:.2} suspiciously perfect",
            spec.name
        );
    }
}

#[test]
fn generator_stream_matches_materialized_records() {
    // Streaming the generator through the simulator must equal simulating
    // the materialized records (TraceSource equivalence).
    let params = ProgramParams::int_speed();
    let records = TraceGenerator::from_params(&params, 42).take_instructions(150_000);
    let mut materialized = SliceSource::new(&records);
    let cfg = SimConfig {
        max_instructions: Some(100_000),
        ..SimConfig::default()
    };
    let a = simulate(&mut materialized, &mut Gshare::new(12, 12), &cfg).expect("runs");

    let mut streaming = TraceGenerator::from_params(&params, 42);
    let b = simulate(&mut streaming, &mut Gshare::new(12, 12), &cfg).expect("runs");

    assert_eq!(a.metrics.mispredictions, b.metrics.mispredictions);
    assert_eq!(a.metadata.simulation_instr, b.metadata.simulation_instr);
    assert!(!b.metadata.exhausted_trace, "generator stream is endless");
}

#[test]
fn dpc3_traces_flow_through_the_champsim_pipeline() {
    use mbp::baselines::champsim::{ChampsimConfig, Cpu, TargetPredictorChoice};
    use mbp::trace::champsim::{ChampsimReader, ChampsimWriter};

    let spec = &Suite::dpc3(1).traces[0];
    let records: Vec<_> = spec.generator().take_instructions(60_000);
    let mut w = ChampsimWriter::new(Vec::new());
    for r in &records {
        w.write_branch_record(r).expect("in-memory write");
    }
    let bytes = w.finish().expect("finish");
    let reader = ChampsimReader::from_reader(&bytes[..]).expect("open");
    let mut cpu = Cpu::new(
        ChampsimConfig::ice_lake_like(),
        Box::new(Gshare::new(14, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
    );
    let stats = cpu.run(reader, None);
    assert!(stats.instructions > 50_000);
    assert!(stats.ipc > 0.1 && stats.ipc <= 6.0, "IPC {:.2}", stats.ipc);
}

#[test]
fn long_traces_expose_phase_changes() {
    // LONG traces exist to "measure how the predictor adapts to changes in
    // the program behavior" (§II): a long trace must not be uniformly
    // easy; its per-window misprediction rate should vary.
    let suite = Suite::cbp5_training(1);
    let spec = suite
        .traces
        .iter()
        .find(|t| t.name.starts_with("LONG_SERVER"))
        .expect("long trace");
    let records = spec.records();
    let mut p = Gshare::new(15, 14);
    let window = records.len() / 8;
    let mut rates = Vec::new();
    for chunk in records.chunks(window) {
        let mut mis = 0u64;
        for r in chunk {
            let b = r.branch;
            if b.is_conditional() {
                mis += (p.predict(b.ip()) != b.is_taken()) as u64;
                p.train(&b);
            }
            p.track(&b);
        }
        rates.push(mis as f64 / chunk.len() as f64);
    }
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max > min * 1.15,
        "per-window misprediction rate should vary: {rates:?}"
    );
}

#[test]
fn generator_take_instructions_is_consistent_with_hint() {
    let mut gen = TraceGenerator::from_params(&ProgramParams::mobile(), 5);
    let records = gen.take_instructions(50_000);
    let total: u64 = records.iter().map(|r| r.instructions()).sum();
    assert!(total >= 50_000);
    let hinted = SliceSource::new(&records).instruction_count_hint();
    assert_eq!(hinted, Some(total));
}
