//! The decode-once batch pipeline must be invisible in the results: the
//! per-record driver (`simulate_scalar`), the batched driver (`simulate`
//! over `fill_batch`), and the parallel sweep (`simulate_many`) produce
//! byte-identical JSON documents for the same predictor, trace and
//! configuration — including warm-up and `max_instructions` cut-offs that
//! land exactly on (or one instruction off) a batch boundary.

use mbp::examples::{by_name, Gshare, Tage, TageConfig, PREDICTOR_NAMES};
use mbp::sim::{
    simulate, simulate_many, simulate_scalar, Predictor, SimConfig, SimResult, SliceSource,
    SweepConfig, TraceSource,
};
use mbp::trace::sbbt::{SbbtReader, BATCH_RECORDS};
use mbp::trace::{translate, BranchRecord};
use mbp::workloads::Suite;

/// Renders a result as the pretty JSON the CLI prints, with the only
/// run-dependent field (wall-clock simulation time) zeroed out.
fn canonical_json(mut result: SimResult) -> String {
    result.metrics.simulation_time = 0.0;
    result.to_json().to_pretty_string()
}

fn fresh_reader(sbbt: &[u8]) -> SbbtReader {
    SbbtReader::from_decompressed(sbbt.to_vec()).expect("generated trace decodes")
}

fn run_scalar(sbbt: &[u8], predictor: &mut dyn Predictor, config: &SimConfig) -> String {
    let mut reader = fresh_reader(sbbt);
    let source: &mut dyn TraceSource = &mut reader;
    canonical_json(simulate_scalar(source, predictor, config).expect("scalar sim"))
}

fn run_batched(sbbt: &[u8], predictor: &mut dyn Predictor, config: &SimConfig) -> String {
    let mut reader = fresh_reader(sbbt);
    let source: &mut dyn TraceSource = &mut reader;
    canonical_json(simulate(source, predictor, config).expect("batched sim"))
}

/// Instructions covered by the first `n` records: the boundary where the
/// batched driver's `n`-th record ends and the next batch begins.
fn instructions_after(records: &[BranchRecord], n: usize) -> u64 {
    records.iter().take(n).map(|r| r.instructions()).sum()
}

/// The cut-off configurations the batched driver must get right: defaults,
/// warm-up and instruction caps landing exactly on the first and second
/// batch boundary (and one instruction to either side), plus limits past
/// the end of the trace.
fn edge_configs(records: &[BranchRecord]) -> Vec<(String, SimConfig)> {
    assert!(
        records.len() > 2 * BATCH_RECORDS,
        "smoke trace must span several batches for boundary tests"
    );
    let batch1 = instructions_after(records, BATCH_RECORDS);
    let batch2 = instructions_after(records, 2 * BATCH_RECORDS);
    let total = instructions_after(records, records.len());

    let mut configs = vec![("default".to_string(), SimConfig::default())];
    for warmup in [batch1 - 1, batch1, batch1 + 1] {
        configs.push((
            format!("warmup={warmup}"),
            SimConfig {
                warmup_instructions: warmup,
                ..SimConfig::default()
            },
        ));
    }
    for max in [batch2 - 1, batch2, batch2 + 1, total, total + 1000] {
        configs.push((
            format!("max={max}"),
            SimConfig {
                max_instructions: Some(max),
                ..SimConfig::default()
            },
        ));
    }
    configs.push((
        "warmup-past-end".to_string(),
        SimConfig {
            warmup_instructions: total + 1000,
            ..SimConfig::default()
        },
    ));
    configs.push((
        "warmup-and-max-on-boundaries".to_string(),
        SimConfig {
            warmup_instructions: batch1,
            max_instructions: Some(batch2),
            ..SimConfig::default()
        },
    ));
    configs
}

#[test]
fn gshare_scalar_and_batched_json_identical() {
    for spec in &Suite::smoke().traces {
        let records = spec.records();
        let sbbt = translate::records_to_sbbt(&records).expect("records encode");
        for (label, config) in edge_configs(&records) {
            let scalar = run_scalar(&sbbt, &mut Gshare::new(25, 18), &config);
            let batched = run_batched(&sbbt, &mut Gshare::new(25, 18), &config);
            assert_eq!(
                scalar, batched,
                "{}/{label}: scalar and batched JSON diverge",
                spec.name
            );
        }
    }
}

#[test]
fn tage_scalar_and_batched_json_identical() {
    for spec in &Suite::smoke().traces {
        let records = spec.records();
        let sbbt = translate::records_to_sbbt(&records).expect("records encode");
        for (label, config) in edge_configs(&records) {
            let scalar = run_scalar(&sbbt, &mut Tage::new(TageConfig::small()), &config);
            let batched = run_batched(&sbbt, &mut Tage::new(TageConfig::small()), &config);
            assert_eq!(
                scalar, batched,
                "{}/{label}: scalar and batched JSON diverge",
                spec.name
            );
        }
    }
}

#[test]
fn sweep_entries_match_standalone_runs() {
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let names = ["gshare", "bimodal", "tournament", "two-level", "tage"];
    let predictors: Vec<(String, Box<dyn Predictor + Send>)> = names
        .iter()
        .map(|n| {
            (
                n.to_string(),
                by_name(n).unwrap_or_else(|| panic!("unknown predictor {n}")),
            )
        })
        .collect();

    let config = SweepConfig {
        sim: SimConfig::default(),
        jobs: 2,
        ..SweepConfig::default()
    };
    let mut source = SliceSource::named(&records, "traces/SMOKE.sbbt");
    let sweep = simulate_many(&mut source, predictors, &config).expect("sweep");
    assert_eq!(sweep.entries.len(), names.len());

    for name in names {
        let entry = sweep
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("sweep lost predictor {name}"));
        let mut standalone = by_name(name).expect("known predictor");
        let mut source = SliceSource::named(&records, "traces/SMOKE.sbbt");
        let direct = simulate(&mut source, &mut *standalone, &config.sim).expect("sim");
        assert_eq!(
            canonical_json(entry.result.clone()),
            canonical_json(direct),
            "{name}: sweep entry JSON differs from a standalone run"
        );
    }
}

#[test]
fn sweep_honours_cutoffs_like_standalone_runs() {
    let spec = &Suite::smoke().traces[1];
    let records = spec.records();
    let config = SweepConfig {
        sim: SimConfig {
            warmup_instructions: instructions_after(&records, BATCH_RECORDS),
            max_instructions: Some(instructions_after(&records, 2 * BATCH_RECORDS)),
            ..SimConfig::default()
        },
        jobs: 2,
        ..SweepConfig::default()
    };

    let predictors: Vec<(String, Box<dyn Predictor + Send>)> = ["gshare", "tage"]
        .iter()
        .map(|n| (n.to_string(), by_name(n).expect("known predictor")))
        .collect();
    let mut source = SliceSource::named(&records, "traces/SMOKE-cut.sbbt");
    let sweep = simulate_many(&mut source, predictors, &config).expect("sweep");

    for entry in &sweep.entries {
        let mut standalone = by_name(&entry.name).expect("known predictor");
        let mut source = SliceSource::named(&records, "traces/SMOKE-cut.sbbt");
        let direct = simulate(&mut source, &mut *standalone, &config.sim).expect("sim");
        assert_eq!(
            canonical_json(entry.result.clone()),
            canonical_json(direct),
            "{}: sweep entry diverges from standalone under cut-offs",
            entry.name
        );
    }
}

#[test]
fn every_stock_predictor_agrees_across_drivers_on_default_config() {
    // A broader (single-config) sweep across the whole predictor roster:
    // any driver-visible behavioural difference in predict/train/track
    // ordering shows up as a JSON diff here.
    let spec = &Suite::smoke().traces[0];
    let records = spec.records();
    let sbbt = translate::records_to_sbbt(&records).expect("records encode");
    let config = SimConfig::default();
    for name in PREDICTOR_NAMES {
        let mut scalar_pred = by_name(name).expect("roster predictor");
        let mut batched_pred = by_name(name).expect("roster predictor");
        let scalar = run_scalar(&sbbt, &mut *scalar_pred, &config);
        let batched = run_batched(&sbbt, &mut *batched_pred, &config);
        assert_eq!(scalar, batched, "{name}: drivers diverge");
    }
}
