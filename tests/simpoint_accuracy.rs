//! End-to-end accuracy of SimPoint-style phase sampling: for phase-heavy
//! synthetic workloads, the MPKI reconstructed from weighted representative
//! slices must stay within a pinned relative error of full simulation for
//! every stock predictor — while simulating well under half of the trace.
//!
//! Also pins the phases document itself as a golden fixture. To regenerate
//! after an intentional schema or clustering change:
//! `MBP_GOLDEN_REGEN=1 cargo test -p mbp --test simpoint_accuracy`.

use std::path::PathBuf;

use mbp::examples::by_name;
use mbp::sim::{
    extract_phases, simulate, simulate_sampled, SimConfig, SliceSource, PHASES_SCHEMA_VERSION,
};
use mbp::trace::BranchRecord;
use mbp::workloads::{ProgramParams, TraceGenerator};

/// The eight stock predictors the sampling contract is pinned against.
const STOCK_PREDICTORS: [&str; 8] = [
    "bimodal",
    "two-level",
    "gshare",
    "gselect",
    "tournament",
    "hashed-perceptron",
    "tage",
    "batage",
];

/// Sampled-vs-full MPKI may differ by at most this relative error on the
/// phase workloads below (documented bound; also enforced by ci.sh on the
/// smoke trace).
const MAX_RELATIVE_ERROR: f64 = 0.15;

/// Alternating slabs of two different synthetic programs: a genuinely
/// phase-heavy instruction stream, which is exactly the case BBV
/// clustering exists for.
fn phase_workload(
    a: &ProgramParams,
    b: &ProgramParams,
    seed: u64,
    slabs: usize,
    slab_instructions: u64,
) -> Vec<BranchRecord> {
    let mut gen_a = TraceGenerator::from_params(a, seed);
    let mut gen_b = TraceGenerator::from_params(b, seed + 1);
    let mut records = Vec::new();
    for i in 0..slabs {
        let source = if i % 2 == 0 { &mut gen_a } else { &mut gen_b };
        records.extend(source.take_instructions(slab_instructions));
    }
    records
}

/// Full-simulation vs sampled-reconstruction MPKI for one predictor;
/// returns `(full_mpki, sampled_mpki)`.
fn mpki_pair(records: &[BranchRecord], predictor: &str, window: u64, k: usize) -> (f64, f64) {
    let cfg = SimConfig::default();
    let mut full_p = by_name(predictor).expect("stock predictor");
    let full = simulate(&mut SliceSource::new(records), &mut *full_p, &cfg).expect("full sim");
    let phases = extract_phases(records, window, k);
    assert!(
        phases.planned_fraction() < 0.5,
        "plan must simulate under half the trace, planned {}",
        phases.planned_fraction()
    );
    let mut sampled_p = by_name(predictor).expect("stock predictor");
    let sampled = simulate_sampled(records, &mut *sampled_p, &phases, &cfg);
    (full.metrics.mpki, sampled.metrics.mpki)
}

fn assert_workload_within_bound(records: &[BranchRecord], window: u64, k: usize, label: &str) {
    for name in STOCK_PREDICTORS {
        let (full, sampled) = mpki_pair(records, name, window, k);
        // Guard the denominator so near-perfect predictors (sub-1 MPKI)
        // compare on an absolute-ish scale instead of exploding.
        let relative = (sampled - full).abs() / full.max(1.0);
        assert!(
            relative <= MAX_RELATIVE_ERROR,
            "{label}/{name}: full {full:.3} vs sampled {sampled:.3} MPKI \
             (relative error {relative:.3} > {MAX_RELATIVE_ERROR})"
        );
    }
}

#[test]
fn sampled_mpki_tracks_full_simulation_on_mobile_server_phases() {
    let records = phase_workload(
        &ProgramParams::mobile(),
        &ProgramParams::server(),
        7,
        20,
        10_000,
    );
    assert_workload_within_bound(&records, 10_000, 4, "mobile/server");
}

#[test]
fn sampled_mpki_tracks_full_simulation_on_media_int_phases() {
    let records = phase_workload(
        &ProgramParams::media(),
        &ProgramParams::int_speed(),
        11,
        20,
        10_000,
    );
    assert_workload_within_bound(&records, 10_000, 4, "media/int");
}

#[test]
fn extraction_is_deterministic_across_runs() {
    let records = phase_workload(
        &ProgramParams::mobile(),
        &ProgramParams::server(),
        7,
        10,
        10_000,
    );
    let a = extract_phases(&records, 10_000, 4);
    let b = extract_phases(&records, 10_000, 4);
    assert_eq!(
        a.to_json().to_pretty_string(),
        b.to_json().to_pretty_string(),
        "extract_phases must be bit-stable run to run"
    );
    assert_eq!(a.doc_hash(), b.doc_hash());
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/simpoint_phases_golden.json")
}

#[test]
fn phases_document_matches_golden_fixture() {
    let records = phase_workload(
        &ProgramParams::mobile(),
        &ProgramParams::server(),
        7,
        10,
        10_000,
    );
    let plan = extract_phases(&records, 10_000, 4);
    let doc = plan.to_json();
    assert_eq!(
        doc["schema_version"].as_u64(),
        Some(PHASES_SCHEMA_VERSION),
        "phases documents carry the pinned schema version"
    );
    let rendered = format!("{doc:#}\n");
    let path = golden_path();
    if std::env::var_os("MBP_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "phases document drifted from the golden fixture; if intentional, \
         regenerate with MBP_GOLDEN_REGEN=1"
    );

    // The committed document must also survive the parse/verify path,
    // which recomputes the hash — a tampered fixture fails here.
    let parsed: mbp::json::Value = golden.parse().expect("fixture parses");
    let reloaded = mbp::sim::PhasesDoc::from_json(&parsed).expect("fixture verifies");
    assert_eq!(reloaded.doc_hash(), plan.doc_hash());
}
