//! Listing 1: the simulator's JSON output schema.

use mbp::examples::Gshare;
use mbp::json::Value;
use mbp::sim::{simulate, SimConfig, SliceSource};
use mbp::workloads::{ProgramParams, TraceGenerator};

fn run_output() -> Value {
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 3).take_instructions(200_000);
    let mut source = SliceSource::named(&records, "traces/SHORT_SERVER-1.sbbt.mzst");
    let mut predictor = Gshare::new(25, 18);
    let config = SimConfig {
        warmup_instructions: 10_000,
        most_failed_limit: 10,
        ..SimConfig::default()
    };
    simulate(&mut source, &mut predictor, &config)
        .expect("in-memory simulation")
        .to_json()
}

#[test]
fn toplevel_sections_in_listing1_order() {
    let doc = run_output();
    let keys: Vec<_> = doc.as_object().expect("object").keys().collect();
    assert_eq!(
        keys,
        ["metadata", "metrics", "predictor_statistics", "most_failed"]
    );
}

#[test]
fn metadata_fields_match_listing1() {
    let doc = run_output();
    let meta = doc["metadata"].as_object().expect("object");
    assert_eq!(
        meta.get("simulator").unwrap().as_str(),
        Some("MBPlib std simulator")
    );
    assert!(meta
        .get("version")
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with('v'));
    assert_eq!(
        meta.get("trace").unwrap().as_str(),
        Some("traces/SHORT_SERVER-1.sbbt.mzst")
    );
    assert_eq!(meta.get("warmup_instr").unwrap().as_u64(), Some(10_000));
    assert!(meta.get("simulation_instr").unwrap().as_u64().unwrap() > 0);
    assert_eq!(meta.get("exhausted_trace").unwrap().as_bool(), Some(true));
    assert!(
        meta.get("num_conditional_branches")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        meta.get("num_branch_instructions")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // The predictor section carries name + configuration (the paper: "we
    // can tell that this is a 64 kB version of GShare").
    let pred = &doc["metadata"]["predictor"];
    assert_eq!(pred["name"].as_str(), Some("MBPlib GShare"));
    assert_eq!(pred["history_length"].as_u64(), Some(25));
    assert_eq!(pred["log_table_size"].as_u64(), Some(18));
}

#[test]
fn metrics_fields_match_listing1() {
    let doc = run_output();
    let metrics = doc["metrics"].as_object().expect("object");
    for key in [
        "mpki",
        "mispredictions",
        "accuracy",
        "num_most_failed_branches",
        "simulation_time",
    ] {
        assert!(metrics.contains_key(key), "missing metrics.{key}");
    }
    let mpki = metrics.get("mpki").unwrap().as_f64().unwrap();
    let acc = metrics.get("accuracy").unwrap().as_f64().unwrap();
    assert!((0.0..1000.0).contains(&mpki));
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn most_failed_entries_have_per_branch_stats() {
    let doc = run_output();
    let list = doc["most_failed"].as_array().expect("array");
    assert!(!list.is_empty());
    assert!(list.len() <= 10, "most_failed_limit respected");
    let mut last = u64::MAX;
    for entry in list {
        for key in ["ip", "occurrences", "mispredictions", "mpki", "accuracy"] {
            assert!(entry.get(key).is_some(), "missing most_failed[].{key}");
        }
        let m = entry["mispredictions"].as_u64().unwrap();
        assert!(m <= last, "most_failed must be sorted by mispredictions");
        last = m;
    }
}

#[test]
fn document_roundtrips_through_parser() {
    let doc = run_output();
    let pretty = doc.to_pretty_string();
    let compact = doc.to_compact_string();
    assert_eq!(pretty.parse::<Value>().unwrap(), doc);
    assert_eq!(compact.parse::<Value>().unwrap(), doc);
}

#[test]
fn user_statistics_are_embedded() {
    use mbp::examples::{Tage, TageConfig};
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 5).take_instructions(120_000);
    let mut source = SliceSource::new(&records);
    let mut tage = Tage::new(TageConfig::small());
    let doc = simulate(&mut source, &mut tage, &SimConfig::default())
        .unwrap()
        .to_json();
    // TAGE reports allocations under predictor_statistics (the paper's
    // "execution statistics that … gather information unique to our design").
    assert!(doc["predictor_statistics"]["allocations"].as_u64().unwrap() > 0);
}
