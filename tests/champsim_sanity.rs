//! champsim-lite behavioural sanity: the cycle model must reward better
//! branch prediction and expose the cache hierarchy, and both §VII-A
//! predictor pairings must run.

use mbp::baselines::champsim::{ChampsimConfig, Cpu, TargetPredictorChoice};
use mbp::examples::{AlwaysTaken, Batage, BatageConfig, Gshare};
use mbp::sim::Predictor;
use mbp::trace::champsim::ChampsimWriter;
use mbp::workloads::{ProgramParams, TraceGenerator};

fn champsim_trace(seed: u64, instructions: u64) -> Vec<u8> {
    let records = TraceGenerator::from_params(&ProgramParams::int_speed(), seed)
        .take_instructions(instructions);
    let mut w = ChampsimWriter::new(Vec::new());
    for r in &records {
        w.write_branch_record(r).unwrap();
    }
    w.finish().unwrap()
}

fn run(
    predictor: Box<dyn Predictor>,
    targets: TargetPredictorChoice,
    trace: &[u8],
) -> mbp::baselines::champsim::ChampsimStats {
    let mut cpu = Cpu::new(ChampsimConfig::ice_lake_like(), predictor, targets);
    cpu.run_bytes(trace).unwrap()
}

#[test]
fn gshare_pairing_beats_static_prediction() {
    let trace = champsim_trace(1, 150_000);
    let naive = run(
        Box::new(AlwaysTaken),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    let gshare = run(
        Box::new(Gshare::new(17, 14)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    assert!(gshare.mispredictions < naive.mispredictions);
    assert!(
        gshare.ipc > naive.ipc,
        "gshare IPC {:.3} !> always-taken IPC {:.3}",
        gshare.ipc,
        naive.ipc
    );
}

#[test]
fn batage_ittage_pairing_runs_and_is_competitive() {
    let trace = champsim_trace(2, 150_000);
    let gshare = run(
        Box::new(Gshare::new(17, 14)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    let batage = run(
        Box::new(Batage::new(BatageConfig::small())),
        TargetPredictorChoice::btb_with_ittage(),
        &trace,
    );
    assert!(
        batage.mpki <= gshare.mpki * 1.1,
        "BATAGE {:.3} MPKI should be near/below GShare {:.3}",
        batage.mpki,
        gshare.mpki
    );
    assert!(batage.ipc > 0.0);
}

#[test]
fn ipc_stays_within_machine_width() {
    let trace = champsim_trace(3, 100_000);
    let stats = run(
        Box::new(Gshare::new(15, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    let width = ChampsimConfig::ice_lake_like().fetch_width as f64;
    assert!(
        stats.ipc <= width,
        "IPC {:.3} exceeds fetch width {width}",
        stats.ipc
    );
    assert!(stats.ipc > 0.05, "IPC {:.3} implausibly low", stats.ipc);
}

#[test]
fn caches_show_locality() {
    let trace = champsim_trace(4, 150_000);
    let stats = run(
        Box::new(Gshare::new(15, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    let (l1i_acc, l1i_miss) = stats.cache[0];
    let (l1d_acc, l1d_miss) = stats.cache[1];
    assert!(l1i_acc > 0 && l1d_acc > 0);
    assert!(
        (l1i_miss as f64) < 0.5 * l1i_acc as f64,
        "instruction stream should show locality: {l1i_miss}/{l1i_acc}"
    );
    assert!(
        (l1d_miss as f64) < 0.9 * l1d_acc as f64,
        "data stream should not be all misses: {l1d_miss}/{l1d_acc}"
    );
}

#[test]
fn deterministic_across_runs() {
    let trace = champsim_trace(5, 80_000);
    let a = run(
        Box::new(Gshare::new(15, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    let b = run(
        Box::new(Gshare::new(15, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.cache, b.cache);
}

#[test]
fn mpki_matches_mbplib_on_same_stream() {
    // The cycle simulator and the trace simulator must agree on *what* the
    // predictor does, even though they disagree on how long it takes —
    // §VII-C's point about ChampSim (up to boundary effects, which the
    // shared lookahead convention removes here for conditionals).
    use mbp::sim::{simulate, SimConfig, SliceSource};

    let records =
        TraceGenerator::from_params(&ProgramParams::int_speed(), 6).take_instructions(100_000);
    let mut w = ChampsimWriter::new(Vec::new());
    for r in &records {
        w.write_branch_record(r).unwrap();
    }
    let trace = w.finish().unwrap();

    let champ = run(
        Box::new(Gshare::new(15, 13)),
        TargetPredictorChoice::btb_with_gshare_indirect(),
        &trace,
    );

    let mut src = SliceSource::new(&records);
    let lib = simulate(&mut src, &mut Gshare::new(15, 13), &SimConfig::default()).unwrap();

    assert_eq!(
        champ.conditional_branches,
        lib.metadata.num_conditional_branches
    );
    assert_eq!(champ.mispredictions, lib.metrics.mispredictions);
}
