//! End-to-end tests of the sweep resilience layer through the `mbpsim`
//! binary: checkpoint/resume determinism (including a torn checkpoint
//! tail and a real SIGTERM mid-sweep), the deadline watchdog, and the
//! memory-budget admission gate.
//!
//! The determinism tests compare *canonicalized* sweep documents: every
//! field derived from wall-clock time is zeroed, everything else —
//! leaderboard order, metrics, metadata, failure lists — must match to
//! the byte.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use mbp::json::Value;

fn mbpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mbpsim"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mbplib-resilience-tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Generates the smoke suite into `dir` and returns the mobile trace path.
fn gen_smoke(dir: &Path) -> PathBuf {
    let status = mbpsim()
        .args(["gen", "--suite", "smoke", "--out"])
        .arg(dir)
        .status()
        .expect("spawn gen");
    assert!(status.success(), "gen failed");
    dir.join("SMOKE-mobile.sbbt.mzst")
}

fn zero_field(object: &mut Value, key: &str) {
    if let Some(slot) = object.as_object_mut().and_then(|o| o.get_mut(key)) {
        *slot = Value::from(0.0);
    }
}

/// Parses a sweep document and zeroes every wall-clock-derived field, so
/// two runs of the same work are comparable byte for byte.
fn canonical_sweep_json(stdout: &[u8]) -> String {
    let mut doc: Value = String::from_utf8(stdout.to_vec())
        .expect("utf8")
        .parse()
        .expect("sweep output is valid JSON");
    let root = doc.as_object_mut().expect("sweep doc is an object");
    let meta = root.get_mut("metadata").expect("metadata");
    for key in [
        "decode_time",
        "wall_time",
        "cumulative_simulation_time",
        "parallel_speedup",
    ] {
        zero_field(meta, key);
    }
    if let Some(Value::Array(rows)) = root.get_mut("leaderboard").map(|v| &mut *v) {
        for row in rows {
            zero_field(row, "simulation_time");
        }
    }
    if let Some(Value::Array(results)) = root.get_mut("results").map(|v| &mut *v) {
        for result in results {
            if let Some(metrics) = result.as_object_mut().and_then(|o| o.get_mut("metrics")) {
                zero_field(metrics, "simulation_time");
            }
        }
    }
    doc.to_pretty_string()
}

fn read_doc(stdout: &[u8]) -> Value {
    String::from_utf8(stdout.to_vec())
        .expect("utf8")
        .parse()
        .expect("valid JSON")
}

const PREDICTORS: &str =
    "bimodal,two-level,gshare,gselect,tournament,2bc-gskew,hashed-perceptron,tage,batage";

fn sweep_cmd(trace: &Path) -> Command {
    let mut cmd = mbpsim();
    cmd.args(["sweep", "--predictors", PREDICTORS, "--trace"])
        .arg(trace)
        .args(["--jobs", "1", "--max", "200000", "--quiet"]);
    cmd
}

#[test]
fn truncated_checkpoint_resume_reproduces_the_clean_run() {
    let dir = temp_dir("truncated-resume");
    let trace = gen_smoke(&dir);

    // The reference: one uninterrupted sweep, no checkpoint.
    let clean = sweep_cmd(&trace).output().expect("spawn clean sweep");
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let reference = canonical_sweep_json(&clean.stdout);

    // A checkpointed sweep records one JSONL line per settled predictor.
    let ckpt = dir.join("sweep.ckpt.jsonl");
    let full = sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("spawn checkpointed sweep");
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    assert_eq!(canonical_sweep_json(&full.stdout), reference);
    let lines: Vec<String> = std::fs::read_to_string(&ckpt)
        .expect("checkpoint exists")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), PREDICTORS.split(',').count());

    // Simulate a crash mid-write: keep two whole records plus a torn third
    // line (half of record 3, no trailing newline).
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 2]
    );
    std::fs::write(&ckpt, torn).expect("write torn checkpoint");

    // Resume must ignore the torn tail, re-run the unsettled predictors and
    // print a document identical to the clean run.
    let resumed = sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .expect("spawn resumed sweep");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(canonical_sweep_json(&resumed.stdout), reference);
}

#[cfg(unix)]
#[test]
fn sigterm_mid_sweep_drains_checkpoints_and_resumes_identically() {
    let dir = temp_dir("sigterm-resume");
    let trace = gen_smoke(&dir);

    let clean = sweep_cmd(&trace).output().expect("spawn clean sweep");
    assert!(
        clean.status.success(),
        "{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let reference = canonical_sweep_json(&clean.stdout);

    // Start a checkpointed sweep, wait for the first record to be fsync'd,
    // then deliver SIGTERM — the drain keeps the in-flight predictor and
    // parks the rest.
    let ckpt = dir.join("sweep.ckpt.jsonl");
    let child = sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    while std::fs::read_to_string(&ckpt)
        .map(|s| !s.contains('\n'))
        .unwrap_or(true)
    {
        assert!(
            Instant::now() < deadline,
            "no checkpoint record appeared in time"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let kill = Command::new("kill")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill");
    assert!(kill.success(), "kill failed");
    let out = child.wait_with_output().expect("wait for sweep");

    // Dedicated exit code 6, a well-formed partial document, and complete
    // accounting: every predictor is settled, failed or listed as not run.
    assert_eq!(
        out.status.code(),
        Some(6),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = read_doc(&out.stdout);
    assert_eq!(doc["metadata"]["interrupted"].as_bool(), Some(true));
    let n = PREDICTORS.split(',').count() as u64;
    assert_eq!(doc["metadata"]["num_predictors"].as_u64(), Some(n));
    let not_run = match &doc["not_run"] {
        Value::Array(names) => names.len(),
        other => panic!("not_run is not an array: {other:?}"),
    };
    assert!(
        not_run > 0,
        "drain left nothing unstarted — raced to the end"
    );

    // Resume finishes the remainder and reconstructs the clean document.
    let resumed = sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .expect("spawn resumed sweep");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(canonical_sweep_json(&resumed.stdout), reference);
    let doc = read_doc(&resumed.stdout);
    assert_eq!(doc["metadata"]["interrupted"].as_bool(), Some(false));
}

#[test]
fn deadline_flags_wedged_predictor_with_typed_failure() {
    let dir = temp_dir("deadline");
    let trace = gen_smoke(&dir);

    // `stalled` is the hidden test predictor that wedges after a few
    // predictions. Without the watchdog this sweep would sit for its full
    // self-bounded nap; with it, the config becomes a typed failure.
    let started = Instant::now();
    let out = mbpsim()
        .args(["sweep", "--predictors", "stalled,bimodal", "--trace"])
        .arg(&trace)
        .args(["--jobs", "2", "--deadline-secs", "0.4", "--quiet"])
        .output()
        .expect("spawn sweep");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "watchdog did not keep the sweep bounded"
    );
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = read_doc(&out.stdout);
    assert_eq!(doc["failures"][0]["predictor"].as_str(), Some("stalled"));
    assert_eq!(doc["failures"][0]["kind"].as_str(), Some("deadline"));
    let message = doc["failures"][0]["message"].as_str().expect("message");
    assert!(message.contains("deadline of"), "{message}");
    assert_eq!(doc["leaderboard"][0]["predictor"].as_str(), Some("bimodal"));
}

#[test]
fn zero_memory_budget_rejects_table_predictors_typed() {
    let dir = temp_dir("mem-budget");
    let trace = gen_smoke(&dir);

    // Budget 0: every predictor with a non-zero size hint must be rejected
    // up front; `always-taken` hints 0 bytes and still runs.
    let out = mbpsim()
        .args([
            "sweep",
            "--predictors",
            "always-taken,gshare,tage",
            "--trace",
        ])
        .arg(&trace)
        .args(["--mem-budget-mb", "0", "--quiet"])
        .output()
        .expect("spawn sweep");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = read_doc(&out.stdout);
    assert_eq!(doc["metadata"]["num_failures"].as_u64(), Some(2));
    for i in 0..2 {
        assert_eq!(doc["failures"][i]["kind"].as_str(), Some("mem_budget"));
    }
    assert_eq!(
        doc["leaderboard"][0]["predictor"].as_str(),
        Some("always-taken")
    );
}

/// Builds a phases document for `trace` with `mbpsim simpoint` and returns
/// its path.
fn gen_phases(dir: &Path, trace: &Path, window: &str, clusters: &str) -> PathBuf {
    let path = dir.join(format!("phases-{window}-{clusters}.json"));
    let out = mbpsim()
        .args(["simpoint", "--trace"])
        .arg(trace)
        .args(["--window", window, "--clusters", clusters, "--out"])
        .arg(&path)
        .output()
        .expect("spawn simpoint");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

/// A sweep command without `--max` (which is incompatible with `--phases`).
fn unsliced_sweep_cmd(trace: &Path) -> Command {
    let mut cmd = mbpsim();
    cmd.args(["sweep", "--predictors", "bimodal,gshare", "--trace"])
        .arg(trace)
        .args(["--jobs", "1", "--quiet"]);
    cmd
}

#[test]
fn resume_refuses_checkpoints_across_sampling_plans() {
    let dir = temp_dir("sampling-mismatch");
    let trace = gen_smoke(&dir);
    let phases = gen_phases(&dir, &trace, "2000", "4");

    // Direction 1: a full-sweep checkpoint must not be resumed sampled.
    let ckpt = dir.join("full.ckpt.jsonl");
    let full = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .output()
        .expect("spawn full sweep");
    assert!(
        full.status.success(),
        "{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let mixed = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .arg("--phases")
        .arg(&phases)
        .output()
        .expect("spawn sampled resume");
    assert_eq!(
        mixed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&mixed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&mixed.stderr).contains("refusing to resume"),
        "{}",
        String::from_utf8_lossy(&mixed.stderr)
    );

    // Direction 2: a sampled checkpoint must not be resumed full.
    let ckpt = dir.join("sampled.ckpt.jsonl");
    let sampled = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--phases")
        .arg(&phases)
        .output()
        .expect("spawn sampled sweep");
    assert!(
        sampled.status.success(),
        "{}",
        String::from_utf8_lossy(&sampled.stderr)
    );
    let mixed = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .output()
        .expect("spawn full resume");
    assert_eq!(
        mixed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&mixed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&mixed.stderr).contains("refusing to resume"),
        "{}",
        String::from_utf8_lossy(&mixed.stderr)
    );

    // A different plan (other window size) is also a mismatch.
    let other = gen_phases(&dir, &trace, "4000", "4");
    let mixed = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .arg("--phases")
        .arg(&other)
        .output()
        .expect("spawn mismatched-plan resume");
    assert_eq!(
        mixed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&mixed.stderr)
    );

    // The matching plan resumes cleanly.
    let resumed = unsliced_sweep_cmd(&trace)
        .arg("--checkpoint")
        .arg(&ckpt)
        .arg("--resume")
        .arg("--phases")
        .arg(&phases)
        .output()
        .expect("spawn matching resume");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
}

#[test]
fn phases_rejects_flags_that_reslice_the_trace() {
    for conflicting in [
        ["--max", "1000"],
        ["--warmup", "1000"],
        ["--window", "1000"],
        ["--timeseries-out", "/dev/null"],
    ] {
        let out = mbpsim()
            .args([
                "sweep",
                "--predictors",
                "bimodal",
                "--trace",
                "/does/not/matter",
                "--phases",
                "/also/does/not/matter",
            ])
            .args(conflicting)
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{:?}", conflicting[0]);
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("cannot be combined with --phases"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn resume_without_checkpoint_is_a_usage_error() {
    let out = mbpsim()
        .args([
            "sweep",
            "--predictors",
            "bimodal",
            "--trace",
            "/does/not/matter",
            "--resume",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
