//! Cross-predictor MPKI sanity on the synthetic suites: the orderings that
//! decades of literature establish (and that Table II's pedagogical
//! progression implies) must hold on our workloads.

use mbp::examples::{
    AlwaysTaken, Batage, BatageConfig, Bimodal, Gshare, HashedPerceptron, Tage, TageConfig,
    Tournament, TwoBcGskew, TwoLevel,
};
use mbp::sim::{simulate, Predictor, SimConfig, SliceSource};
use mbp::trace::BranchRecord;
use mbp::workloads::{ProgramParams, TraceGenerator};

fn records() -> Vec<BranchRecord> {
    // A server-flavoured mix: correlated, phased and biased branches with a
    // sizeable footprint.
    TraceGenerator::from_params(&ProgramParams::server(), 0xbeef).take_instructions(600_000)
}

fn mpki_of(predictor: &mut dyn Predictor, records: &[BranchRecord]) -> f64 {
    let mut source = SliceSource::new(records);
    simulate(&mut source, predictor, &SimConfig::default())
        .expect("in-memory simulation")
        .metrics
        .mpki
}

#[test]
fn static_predictors_are_worst() {
    let recs = records();
    let statics = mpki_of(&mut AlwaysTaken, &recs);
    let bimodal = mpki_of(&mut Bimodal::new(14), &recs);
    assert!(
        bimodal < statics,
        "bimodal {bimodal:.2} must beat always-taken {statics:.2}"
    );
}

#[test]
fn history_beats_bimodal() {
    let recs = records();
    let bimodal = mpki_of(&mut Bimodal::new(14), &recs);
    let gshare = mpki_of(&mut Gshare::new(17, 14), &recs);
    let twolevel = mpki_of(&mut TwoLevel::pap(10, 8, 8), &recs);
    assert!(
        gshare < bimodal,
        "gshare {gshare:.2} !< bimodal {bimodal:.2}"
    );
    assert!(
        twolevel < bimodal * 1.1,
        "two-level {twolevel:.2} should be competitive with bimodal {bimodal:.2}"
    );
}

#[test]
fn hybrids_beat_their_components() {
    let recs = records();
    let bimodal = mpki_of(&mut Bimodal::new(13), &recs);
    let tournament = mpki_of(&mut Tournament::classic(13), &recs);
    assert!(
        tournament < bimodal,
        "tournament {tournament:.2} !< bimodal {bimodal:.2}"
    );
    let gskew = mpki_of(&mut TwoBcGskew::new(16, 13), &recs);
    assert!(
        gskew < bimodal,
        "2bc-gskew {gskew:.2} !< bimodal {bimodal:.2}"
    );
}

#[test]
fn state_of_the_art_beats_gshare() {
    let recs = records();
    let gshare = mpki_of(&mut Gshare::new(17, 14), &recs);
    let perceptron = mpki_of(&mut HashedPerceptron::default_config(), &recs);
    let tage = mpki_of(&mut Tage::new(TageConfig::default_64kb()), &recs);
    let batage = mpki_of(&mut Batage::new(BatageConfig::default_64kb()), &recs);
    assert!(tage < gshare, "TAGE {tage:.2} !< GShare {gshare:.2}");
    assert!(batage < gshare, "BATAGE {batage:.2} !< GShare {gshare:.2}");
    assert!(
        perceptron < gshare * 1.15,
        "perceptron {perceptron:.2} should be near/below gshare {gshare:.2}"
    );
}

#[test]
fn bigger_tables_do_not_hurt() {
    let recs = records();
    let small = mpki_of(&mut Gshare::new(13, 10), &recs);
    let large = mpki_of(&mut Gshare::new(17, 16), &recs);
    assert!(
        large <= small * 1.02,
        "larger gshare {large:.2} should not lose to smaller {small:.2}"
    );
}

#[test]
fn mobile_is_more_predictable_than_server() {
    let mobile =
        TraceGenerator::from_params(&ProgramParams::mobile(), 0x1).take_instructions(400_000);
    let server = records();
    let m = mpki_of(&mut Gshare::new(15, 14), &mobile);
    let s = mpki_of(&mut Gshare::new(15, 14), &server);
    assert!(m < s, "mobile {m:.2} should be easier than server {s:.2}");
}

#[test]
fn warmup_reduces_measured_mpki() {
    let recs = records();
    let mut cold = Gshare::new(15, 14);
    let mut warm = Gshare::new(15, 14);
    let full = {
        let mut src = SliceSource::new(&recs);
        simulate(&mut src, &mut cold, &SimConfig::default()).unwrap()
    };
    let warmed = {
        let mut src = SliceSource::new(&recs);
        let cfg = SimConfig {
            warmup_instructions: 200_000,
            ..SimConfig::default()
        };
        simulate(&mut src, &mut warm, &cfg).unwrap()
    };
    assert!(
        warmed.metrics.mpki <= full.metrics.mpki,
        "training excluded from measurement should not raise MPKI: {} vs {}",
        warmed.metrics.mpki,
        full.metrics.mpki
    );
}
