//! Companion to §VI-A: the cost of one sweep point, i.e. how fast
//! "prototyping in real time" is. The paper's goal was results within
//! seconds; each bench iteration is one full simulation of one trace.
//!
//! Run: `cargo bench -p mbp-bench --bench param_sweep`

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_core::{simulate, SimConfig, SliceSource};
use mbp_predictors::Gshare;
use mbp_workloads::{ProgramParams, TraceGenerator};

fn main() {
    let records =
        TraceGenerator::from_params(&ProgramParams::mobile(), 0x5eeb).take_instructions(1_000_000);
    let instructions: u64 = records.iter().map(|r| r.instructions()).sum();

    let mut group = BenchGroup::new("gshare_history_sweep");
    group.throughput(Throughput::Elements(instructions));
    for h in [6u32, 12, 18, 24, 30] {
        group.bench_function(&format!("history-{h}"), || {
            let mut predictor = Gshare::new(h, 18);
            let mut source = SliceSource::new(&records);
            simulate(&mut source, &mut predictor, &SimConfig::default()).expect("sim")
        });
    }
    group.finish();
}
