//! Companion to Table III: steady-state simulation throughput of the three
//! simulators on a fixed workload, per predictor.
//!
//! Run: `cargo bench -p mbp-bench --bench sim_speed`

use cbp5_sim::{run_framework_text, McbpAdapter};
use champsim_lite::{ChampsimConfig, Cpu, TargetPredictorChoice};
use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_bench::table3_predictors;
use mbp_core::{simulate, Predictor, SimConfig, SliceSource};
use mbp_predictors::{Batage, BatageConfig, Gshare};
use mbp_trace::translate;
use mbp_workloads::{ProgramParams, TraceGenerator};

struct Dyn(Box<dyn Predictor + Send>);

impl Predictor for Dyn {
    fn predict(&mut self, ip: u64) -> bool {
        self.0.predict(ip)
    }
    fn train(&mut self, b: &mbp_core::Branch) {
        self.0.train(b)
    }
    fn track(&mut self, b: &mbp_core::Branch) {
        self.0.track(b)
    }
}

fn main() {
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 0xbe_ec).take_instructions(400_000);
    let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
    let bt9 = translate::records_to_bt9(&records);

    // MBPlib simulator per predictor (the top half of Table III).
    let mut group = BenchGroup::new("mbplib_simulator");
    group.throughput(Throughput::Elements(instructions));
    for (name, build) in table3_predictors() {
        group.bench_function(name, || {
            let mut predictor = build();
            let mut source = SliceSource::new(&records);
            simulate(&mut source, &mut *predictor, &SimConfig::default()).expect("sim")
        });
    }
    group.finish();

    // CBP5 framework on the same stream (text parse + graph indirection).
    let mut group = BenchGroup::new("cbp5_framework");
    group
        .sample_size(5)
        .throughput(Throughput::Elements(instructions));
    for (name, build) in table3_predictors() {
        group.bench_function(name, || {
            let mut predictor = McbpAdapter::new(Dyn(build()));
            run_framework_text(&bt9, &mut predictor).expect("framework")
        });
    }
    group.finish();

    // ChampSim-like cycle model: only GShare and BATAGE, like the paper —
    // and their runtimes should be nearly identical, because the predictor
    // is a rounding error inside a cycle simulator.
    let champ = translate::records_to_champsim(&records).expect("in-memory");
    let mut group = BenchGroup::new("champsim_lite");
    group
        .sample_size(5)
        .throughput(Throughput::Elements(instructions));
    group.bench_function("GShare", || {
        let mut cpu = Cpu::new(
            ChampsimConfig::ice_lake_like(),
            Box::new(Gshare::new(25, 18)),
            TargetPredictorChoice::btb_with_gshare_indirect(),
        );
        cpu.run_bytes(&champ).expect("run")
    });
    group.bench_function("BATAGE", || {
        let mut cpu = Cpu::new(
            ChampsimConfig::ice_lake_like(),
            Box::new(Batage::new(BatageConfig::default_64kb())),
            TargetPredictorChoice::btb_with_ittage(),
        );
        cpu.run_bytes(&champ).expect("run")
    });
    group.finish();
}
