//! Companion to Table IV and §IV: codec decode throughput.
//!
//! Two claims are measured: the zstd-like codec decodes much faster than
//! the gzip-like one on SBBT data, and its decode speed does not degrade
//! at higher compression levels ("a bigger compression factor did not make
//! the decompression slower").
//!
//! Run: `cargo bench -p mbp-bench --bench decompress`

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_compress::{compress, decompress, Codec};
use mbp_trace::translate;
use mbp_workloads::{ProgramParams, TraceGenerator};

fn main() {
    let records = TraceGenerator::from_params(&ProgramParams::int_speed(), 0xdec0)
        .take_instructions(2_000_000);
    let sbbt = translate::records_to_sbbt(&records).expect("encode");
    let bt9 = translate::records_to_bt9(&records).into_bytes();

    let mut group = BenchGroup::new("decompress_sbbt");
    group.throughput(Throughput::Bytes(sbbt.len() as u64));
    for (label, codec, level) in [
        ("mgz-6", Codec::Mgz, 6),
        ("mgz-9", Codec::Mgz, 9),
        ("mzst-3", Codec::Mzst, 3),
        ("mzst-19", Codec::Mzst, 19),
        ("mzst-22", Codec::Mzst, 22),
    ] {
        let packed = compress(&sbbt, codec, level).expect("compress");
        group.bench_function(label, || decompress(&packed).expect("decompress"));
    }
    group.finish();

    let mut group = BenchGroup::new("decompress_bt9");
    group.throughput(Throughput::Bytes(bt9.len() as u64));
    for (label, codec) in [("mgz-6", Codec::Mgz), ("mzst-19", Codec::Mzst)] {
        let level = if codec == Codec::Mgz { 6 } else { 19 };
        let packed = compress(&bt9, codec, level).expect("compress");
        group.bench_function(label, || decompress(&packed).expect("decompress"));
    }
    group.finish();
}
