//! Companion to the decode-once batch pipeline: the same simulation driven
//! through the per-record path (`simulate_scalar`), the block path
//! (`simulate` over `fill_batch`), and the parallel sweep
//! (`simulate_many`), all behind the same `&mut dyn TraceSource` boundary
//! the CLI and sweep workers use.
//!
//! Run: `cargo bench -p mbp-bench --bench sim_batch`

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_bench::table3_predictors;
use mbp_core::{
    simulate, simulate_many, simulate_scalar, SimConfig, SliceSource, SweepConfig, TraceSource,
};
use mbp_predictors::Gshare;
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::translate;
use mbp_workloads::Suite;

fn main() {
    let suite = Suite::smoke();
    let config = SimConfig::default();

    // One trace at a time: batched vs scalar on the identical byte stream.
    let mut speedups = Vec::new();
    let (mut scalar_total, mut batched_total) = (0.0f64, 0.0f64);
    for spec in &suite.traces {
        let records = spec.records();
        let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
        let sbbt = translate::records_to_sbbt(&records).expect("generated records encode");

        let mut group = BenchGroup::new(format!("sim_batch/{}", spec.name));
        group
            .sample_size(50)
            .throughput(Throughput::Elements(instructions));

        let mut reader = SbbtReader::from_decompressed(sbbt).expect("generated trace decodes");
        let scalar = group.bench_function("scalar_next_record", || {
            reader.rewind();
            let source: &mut dyn TraceSource = &mut reader;
            let mut predictor = Gshare::new(25, 18);
            simulate_scalar(source, &mut predictor, &config).expect("sim")
        });
        let batched = group.bench_function("batched_fill_batch", || {
            reader.rewind();
            let source: &mut dyn TraceSource = &mut reader;
            let mut predictor = Gshare::new(25, 18);
            simulate(source, &mut predictor, &config).expect("sim")
        });
        group.finish();

        // Fastest-sample ratio: the minimum is the robust estimator on a
        // shared machine, where the mean absorbs scheduler outliers.
        let speedup = scalar.fastest / batched.fastest;
        println!("{}: batched speedup over scalar = {speedup:.2}x", spec.name);
        speedups.push((spec.name.clone(), speedup));
        scalar_total += scalar.fastest;
        batched_total += batched.fastest;
    }

    // The sweep: all Table III predictors over one trace, sequential
    // (decode + simulate per predictor, as N `mbpsim run` invocations
    // would) versus one decode fanned across the worker pool.
    let spec = &suite.traces[1]; // SMOKE-server, the branchier trace
    let records = spec.records();
    let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
    let predictors = table3_predictors();
    let jobs = std::thread::available_parallelism().map_or(1, usize::from);

    let mut group = BenchGroup::new(format!("sweep/{}", spec.name));
    group
        .sample_size(10)
        .throughput(Throughput::Elements(instructions * predictors.len() as u64));

    let sequential = group.bench_function("sequential_runs", || {
        let mut results = Vec::new();
        for (_, build) in &predictors {
            let mut predictor = build();
            let mut source = SliceSource::new(&records);
            results.push(simulate(&mut source, &mut *predictor, &config).expect("sim"));
        }
        results
    });
    let parallel = group.bench_function("simulate_many", || {
        let many: Vec<_> = predictors
            .iter()
            .map(|(name, build)| (name.to_string(), build()))
            .collect();
        let mut source = SliceSource::new(&records);
        let sweep_config = SweepConfig {
            sim: config.clone(),
            jobs: 0,
            ..SweepConfig::default()
        };
        simulate_many(&mut source, many, &sweep_config).expect("sweep")
    });
    group.finish();

    let sweep_speedup = sequential.fastest / parallel.fastest;
    println!(
        "{}: simulate_many speedup over sequential = {sweep_speedup:.2}x \
         ({} predictors, {jobs} cores)",
        spec.name,
        predictors.len(),
    );

    println!("\n== summary ==");
    for (name, speedup) in &speedups {
        println!("batched vs scalar, {name}: {speedup:.2}x");
    }
    println!(
        "batched vs scalar, smoke suite aggregate: {:.2}x",
        scalar_total / batched_total
    );
    println!(
        "parallel sweep vs sequential, {}: {sweep_speedup:.2}x",
        spec.name
    );
}
