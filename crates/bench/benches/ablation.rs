//! Ablation benches for the design decisions the paper credits MBPlib's
//! speed to (§VII-D), isolated one at a time:
//!
//! * **graph indirection** — reading a trace through BT9's id-keyed hashed
//!   node/edge tables versus SBBT's self-contained packet stream;
//! * **per-branch bookkeeping** — the cost of the most-failed statistics
//!   the simulator maintains for Listing 1's report;
//! * **packet validation** — what enforcing the §IV-C validity rules on
//!   every packet costs relative to raw decoding.
//!
//! Run: `cargo bench -p mbp-bench --bench ablation`

use std::collections::HashMap;

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_core::{simulate, Predictor, SimConfig, SliceSource};
use mbp_predictors::Bimodal;
use mbp_trace::sbbt::{decode_packet, SbbtReader, PACKET_BYTES};
use mbp_trace::{translate, Branch, BranchKind, Opcode};
use mbp_workloads::{ProgramParams, TraceGenerator};

fn bench_graph_indirection() {
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 0xab1a).take_instructions(1_000_000);
    let bt9 = mbp_trace::bt9::parse_text(&translate::records_to_bt9(&records)).expect("bt9");
    let sbbt = translate::records_to_sbbt(&records).expect("sbbt");
    let n = records.len() as u64;

    let mut group = BenchGroup::new("trace_walk");
    group.throughput(Throughput::Elements(n));

    // SBBT: a straight packet walk.
    group.bench_function("sbbt_stream", || {
        let mut reader = SbbtReader::from_bytes(sbbt.clone()).expect("open");
        let mut taken = 0u64;
        while let Some(rec) = reader.next_record().expect("packet") {
            taken += rec.branch.is_taken() as u64;
        }
        taken
    });

    // BT9 with vector-indexed graph (an idealized framework reader).
    group.bench_function("bt9_graph_vec", || {
        let mut taken = 0u64;
        for i in 0..bt9.sequence.len() {
            taken += bt9.record(i).branch.is_taken() as u64;
        }
        taken
    });

    // BT9 with hash-keyed graph, as the original framework stores it —
    // the "big hashed structure" of §VII-D.
    let edges: HashMap<u32, (u32, bool, u64, u32)> = bt9
        .edges
        .iter()
        .enumerate()
        .map(|(id, &e)| (id as u32, e))
        .collect();
    let nodes: HashMap<u32, (u64, Opcode)> = bt9
        .nodes
        .iter()
        .enumerate()
        .map(|(id, &n)| (id as u32, n))
        .collect();
    group.bench_function("bt9_graph_hashed", || {
        let mut taken = 0u64;
        for &e in &bt9.sequence {
            let &(node, t, _, _) = edges.get(&e).expect("edge");
            let &(ip, _) = nodes.get(&node).expect("node");
            taken += (t && ip != 0) as u64;
        }
        taken
    });
    group.finish();
}

/// A stats-free replica of the simulator loop, to isolate the cost of the
/// per-branch most-failed bookkeeping.
fn bare_simulate<P: Predictor>(records: &[mbp_trace::BranchRecord], p: &mut P) -> u64 {
    let mut mis = 0;
    for r in records {
        let b = r.branch;
        if b.is_conditional() {
            mis += (p.predict(b.ip()) != b.is_taken()) as u64;
            p.train(&b);
        }
        p.track(&b);
    }
    mis
}

fn bench_bookkeeping() {
    let records =
        TraceGenerator::from_params(&ProgramParams::server(), 0xab1b).take_instructions(1_000_000);
    let instr: u64 = records.iter().map(|r| r.instructions()).sum();

    let mut group = BenchGroup::new("simulator_bookkeeping");
    group.throughput(Throughput::Elements(instr));
    group.bench_function("with_most_failed_stats", || {
        let mut p = Bimodal::new(18);
        let mut src = SliceSource::new(&records);
        simulate(&mut src, &mut p, &SimConfig::default()).expect("sim")
    });
    group.bench_function("bare_loop", || {
        let mut p = Bimodal::new(18);
        bare_simulate(&records, &mut p)
    });
    group.finish();
}

fn bench_packet_validation() {
    let rec = mbp_trace::BranchRecord::new(
        Branch::new(
            0x40_1000,
            0x40_2000,
            Opcode::new(true, false, BranchKind::Jump),
            true,
        ),
        7,
    );
    let bytes = mbp_trace::sbbt::encode_packet(&rec).expect("encode");
    // Per-packet decode is nanoseconds; run it over a big batch per sample
    // so the harness clock resolution doesn't dominate.
    const REPS: u64 = 1_000_000;

    let mut group = BenchGroup::new("packet_decode");
    group.throughput(Throughput::Elements(REPS));
    group.bench_function("validated", || {
        let mut acc = 0u64;
        for _ in 0..REPS {
            let r = decode_packet(&bytes, 0).expect("valid");
            acc = acc.wrapping_add(r.branch.ip());
        }
        acc
    });
    group.bench_function("raw_fields_only", || {
        let mut acc = 0u64;
        for _ in 0..REPS {
            let block1 = u64::from_le_bytes(bytes[..8].try_into().expect("len"));
            let block2 = u64::from_le_bytes(bytes[8..PACKET_BYTES].try_into().expect("len"));
            acc = acc
                .wrapping_add(((block1 as i64) >> 12) as u64)
                .wrapping_add(((block2 as i64) >> 12) as u64)
                .wrapping_add(block1 & 0xFFF)
                .wrapping_add(block2 & 0xFFF);
        }
        acc
    });
    group.finish();
}

fn bench_cache_replacement() {
    use champsim_lite::{Cache, CacheConfig, Replacement};
    use mbp_utils::mix64;

    // A working set slightly bigger than the cache, with both streaming
    // and scattered components — where replacement policy actually matters.
    let accesses: Vec<u64> = (0..200_000u64)
        .map(|i| {
            if i % 4 == 0 {
                mix64(i / 4) % 3000 // scattered over ~3000 blocks
            } else {
                (i / 3) % 2048 // streaming window
            }
        })
        .collect();

    let mut group = BenchGroup::new("cache_replacement");
    group.throughput(Throughput::Elements(accesses.len() as u64));
    for (label, policy) in [
        ("lru", Replacement::Lru),
        ("tree_plru", Replacement::TreePlru),
    ] {
        group.bench_function(label, || {
            let mut cache =
                Cache::new(CacheConfig::new("L2", 128, 16, 10).with_replacement(policy));
            let mut hits = 0u64;
            for &a in &accesses {
                hits += cache.access(a) as u64;
            }
            hits
        });
    }
    group.finish();
}

fn main() {
    bench_graph_indirection();
    bench_bookkeeping();
    bench_packet_validation();
    bench_cache_replacement();
}
