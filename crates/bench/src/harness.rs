//! A `std`-only micro-benchmark harness with a criterion-like surface.
//!
//! The `[[bench]]` targets under `benches/` are plain `harness = false`
//! binaries driven by this module: named groups, per-function throughput
//! annotations, and fastest/mean/slowest reporting via [`crate::Summary`].
//! Keeping the harness in-tree means `cargo bench` needs nothing from
//! crates.io, so it works in the same offline environment as the tier-1
//! build.

use std::time::Instant;

pub use std::hint::black_box;

use crate::{fmt_time, Summary};

/// Work performed per benchmark iteration, used to derive a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Records/instructions processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmark functions sharing a sample count and
/// throughput annotation.
pub struct BenchGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchGroup {
    /// Starts a group and prints its header.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== {name} ==");
        Self {
            name,
            samples: 10,
            throughput: None,
        }
    }

    /// Sets how many timed iterations each function runs (default 10).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Annotates the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` once as warm-up and then `samples` timed iterations,
    /// printing the timing summary, and returns the summary for callers
    /// that derive their own statistics (e.g. speedup ratios).
    pub fn bench_function<T>(&mut self, id: &str, mut f: impl FnMut() -> T) -> Summary {
        black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed().as_secs_f64());
        }
        let summary = Summary::of(&times);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>8.1} Minstr/s", n as f64 / summary.average / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>8.1} MB/s",
                    n as f64 / summary.average / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{id:<28} fastest {:>10}  mean {:>10}  slowest {:>10}{rate}",
            self.name,
            fmt_time(summary.fastest),
            fmt_time(summary.average),
            fmt_time(summary.slowest),
        );
        summary
    }

    /// Ends the group (kept for symmetry with the criterion API).
    pub fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_requested_samples() {
        let mut group = BenchGroup::new("harness_selftest");
        group.sample_size(3).throughput(Throughput::Elements(1000));
        let mut calls = 0u32;
        let summary = group.bench_function("counting", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4, "one warm-up plus three samples");
        assert!(summary.fastest <= summary.average);
        assert!(summary.average <= summary.slowest);
    }
}
