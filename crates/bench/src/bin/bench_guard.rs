//! CI regression guard for the decode-once batch pipeline.
//!
//! The observability layer (`mbp-stats`) instruments the simulator's hot
//! path; this guard pins the cost of that instrumentation against the
//! numbers recorded in `bench_tables.txt` when the batch pipeline landed:
//!
//! * the batched driver's absolute throughput on each smoke trace must stay
//!   within 5% of the recorded baseline (760 / 345 Minstr/s), and
//! * the batched driver must still clearly beat the scalar reference
//!   (aggregate speedup floor), since instrumentation leaking into the
//!   per-record loop would erase exactly that gap.
//!
//! The speedup floor is deliberately below the recorded 1.63x aggregate:
//! the ratio moves whenever *either* driver shifts (both carry the same
//! per-run instrumentation), so the ratio check is a coarse tripwire while
//! the absolute-throughput check carries the 5% budget.
//!
//! Throughput is estimated from the fastest of 30 samples — the minimum is
//! the robust estimator on a shared machine. On a machine slower than the
//! one the baselines were recorded on, scale the floors with
//! `MBP_BENCH_GUARD_SCALE=<factor>` (e.g. `0.5`), or set it to `0` to turn
//! the absolute checks into reports only.
//!
//! Run: `cargo run --release -p mbp-bench --bin bench_guard`

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_core::{simulate, simulate_scalar, SimConfig, TraceSource};
use mbp_predictors::Gshare;
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::translate;
use mbp_workloads::Suite;

/// Batched-path throughput recorded in `bench_tables.txt` when the batch
/// pipeline landed, in instructions per second, keyed by smoke-trace name.
const BASELINE_INSTR_PER_S: [(&str, f64); 2] = [("SMOKE-mobile", 760e6), ("SMOKE-server", 345e6)];

/// Allowed regression on absolute batched throughput: within 5%.
const TOLERANCE: f64 = 0.95;

/// Coarse floor on the aggregate batched/scalar speedup (recorded: 1.63x).
const SPEEDUP_FLOOR: f64 = 1.15;

fn main() {
    let scale = std::env::var("MBP_BENCH_GUARD_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);

    let suite = Suite::smoke();
    let config = SimConfig::default();
    let (mut scalar_total, mut batched_total) = (0.0f64, 0.0f64);
    let mut failures = Vec::new();

    for spec in &suite.traces {
        let records = spec.records();
        let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
        let sbbt = translate::records_to_sbbt(&records).expect("generated records encode");

        let mut group = BenchGroup::new(format!("bench_guard/{}", spec.name));
        group
            .sample_size(30)
            .throughput(Throughput::Elements(instructions));

        let mut reader = SbbtReader::from_decompressed(sbbt).expect("generated trace decodes");
        let scalar = group.bench_function("scalar_next_record", || {
            reader.rewind();
            let source: &mut dyn TraceSource = &mut reader;
            let mut predictor = Gshare::new(25, 18);
            simulate_scalar(source, &mut predictor, &config).expect("sim")
        });
        let batched = group.bench_function("batched_fill_batch", || {
            reader.rewind();
            let source: &mut dyn TraceSource = &mut reader;
            let mut predictor = Gshare::new(25, 18);
            simulate(source, &mut predictor, &config).expect("sim")
        });
        group.finish();

        scalar_total += scalar.fastest;
        batched_total += batched.fastest;

        let throughput = instructions as f64 / batched.fastest;
        let baseline = BASELINE_INSTR_PER_S
            .iter()
            .find(|(name, _)| *name == spec.name)
            .map(|(_, t)| *t);
        match baseline {
            Some(base) => {
                let floor = base * TOLERANCE * scale;
                let verdict = if throughput >= floor { "ok" } else { "FAIL" };
                println!(
                    "{}: batched {:.0} Minstr/s (baseline {:.0}, floor {:.0}) {verdict}, \
                     speedup over scalar {:.2}x",
                    spec.name,
                    throughput / 1e6,
                    base / 1e6,
                    floor / 1e6,
                    scalar.fastest / batched.fastest,
                );
                if throughput < floor {
                    failures.push(format!(
                        "{}: batched throughput {:.0} Minstr/s below the {:.0} Minstr/s floor",
                        spec.name,
                        throughput / 1e6,
                        floor / 1e6
                    ));
                }
            }
            None => println!(
                "{}: batched {:.0} Minstr/s (no recorded baseline)",
                spec.name,
                throughput / 1e6
            ),
        }
    }

    let aggregate = scalar_total / batched_total;
    println!("aggregate batched/scalar speedup: {aggregate:.2}x (floor {SPEEDUP_FLOOR:.2}x)");
    if aggregate < SPEEDUP_FLOOR {
        failures.push(format!(
            "aggregate batched/scalar speedup {aggregate:.2}x below the {SPEEDUP_FLOOR:.2}x floor \
             (instrumentation leaking into the record loop?)"
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_guard: FAIL — {f}");
        }
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
