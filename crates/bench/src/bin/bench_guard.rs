//! CI regression guard for the decode-once batch pipeline.
//!
//! The observability layer (`mbp-stats`) instruments the simulator's hot
//! path; this guard pins the cost of that instrumentation against the
//! numbers recorded in `bench_tables.txt` when the batch pipeline landed:
//!
//! * the batched driver's absolute throughput on each smoke trace must stay
//!   within 5% of the recorded baseline (760 / 345 Minstr/s), and
//! * the batched driver must still clearly beat the scalar reference
//!   (aggregate speedup floor), since instrumentation leaking into the
//!   per-record loop would erase exactly that gap.
//!
//! The speedup floor is deliberately far below the recorded 1.63x
//! aggregate: the ratio moves whenever *either* driver shifts, and the
//! scalar reference's per-record dispatch loop is sensitive to code layout
//! — the same sources have measured anywhere from ~1.1x to ~1.9x across
//! builds on one host. The ratio check therefore only asserts the batched
//! driver still genuinely beats the scalar reference, while the
//! absolute-throughput check carries the 5% budget.
//!
//! Throughput is estimated best-of-3: each trace is measured in three
//! independent repetitions of 10 samples, the verdict uses the fastest
//! sample overall (the minimum is the robust estimator on a shared
//! machine), and the spread between the best and worst repetition is
//! printed so a noisy host is visible in the log rather than silently
//! folded into the estimate. On a machine slower than the one the
//! baselines were recorded on, scale the floors with
//! `MBP_BENCH_GUARD_SCALE=<factor>` (e.g. `0.5`), or set it to `0` to turn
//! the absolute checks into reports only.
//!
//! Run: `cargo run --release -p mbp-bench --bin bench_guard`

use mbp_bench::harness::{BenchGroup, Throughput};
use mbp_core::{simulate, simulate_scalar, SimConfig, TraceSource};
use mbp_predictors::Gshare;
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::translate;
use mbp_workloads::Suite;

/// Batched-path throughput recorded in `bench_tables.txt` when the batch
/// pipeline landed, in instructions per second, keyed by smoke-trace name.
const BASELINE_INSTR_PER_S: [(&str, f64); 2] = [("SMOKE-mobile", 760e6), ("SMOKE-server", 345e6)];

/// Allowed regression on absolute batched throughput: within 5%.
const TOLERANCE: f64 = 0.95;

/// Coarse floor on the aggregate batched/scalar speedup (recorded: 1.63x,
/// but layout-sensitive — see the module docs): batched must beat scalar.
const SPEEDUP_FLOOR: f64 = 1.05;

/// Timed repetitions per trace; the verdict uses the best, the log shows
/// the spread across them.
const REPS: usize = 3;

/// Timed samples within one repetition (3 × 10 keeps the total at the 30
/// samples the single-repetition guard used).
const SAMPLES_PER_REP: usize = 10;

/// Relative spread of a set of per-repetition times: `(worst - best) /
/// best`, as a percentage. Zero for fewer than two repetitions.
fn spread_pct(times: &[f64]) -> f64 {
    let best = times.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = times.iter().copied().fold(0.0f64, f64::max);
    if !best.is_finite() || best <= 0.0 {
        return 0.0;
    }
    (worst - best) / best * 100.0
}

fn main() {
    let scale = std::env::var("MBP_BENCH_GUARD_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);

    let suite = Suite::smoke();
    let config = SimConfig::default();
    let (mut scalar_total, mut batched_total) = (0.0f64, 0.0f64);
    let mut failures = Vec::new();

    for spec in &suite.traces {
        let records = spec.records();
        let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
        let sbbt = translate::records_to_sbbt(&records).expect("generated records encode");

        let mut reader = SbbtReader::from_decompressed(sbbt).expect("generated trace decodes");
        let mut rep_scalar = Vec::with_capacity(REPS);
        let mut rep_batched = Vec::with_capacity(REPS);
        for rep in 1..=REPS {
            let mut group = BenchGroup::new(format!("bench_guard/{}/rep{rep}", spec.name));
            group
                .sample_size(SAMPLES_PER_REP)
                .throughput(Throughput::Elements(instructions));
            let scalar = group.bench_function("scalar_next_record", || {
                reader.rewind();
                let source: &mut dyn TraceSource = &mut reader;
                let mut predictor = Gshare::new(25, 18);
                simulate_scalar(source, &mut predictor, &config).expect("sim")
            });
            let batched = group.bench_function("batched_fill_batch", || {
                reader.rewind();
                let source: &mut dyn TraceSource = &mut reader;
                let mut predictor = Gshare::new(25, 18);
                simulate(source, &mut predictor, &config).expect("sim")
            });
            group.finish();
            rep_scalar.push(scalar.fastest);
            rep_batched.push(batched.fastest);
        }
        let scalar_best = rep_scalar.iter().copied().fold(f64::INFINITY, f64::min);
        let batched_best = rep_batched.iter().copied().fold(f64::INFINITY, f64::min);
        let spread = spread_pct(&rep_batched);

        scalar_total += scalar_best;
        batched_total += batched_best;

        let throughput = instructions as f64 / batched_best;
        let baseline = BASELINE_INSTR_PER_S
            .iter()
            .find(|(name, _)| *name == spec.name)
            .map(|(_, t)| *t);
        match baseline {
            Some(base) => {
                let floor = base * TOLERANCE * scale;
                let verdict = if throughput >= floor { "ok" } else { "FAIL" };
                println!(
                    "{}: batched {:.0} Minstr/s best-of-{REPS} (baseline {:.0}, floor {:.0}) \
                     {verdict}, spread {spread:.1}%, speedup over scalar {:.2}x",
                    spec.name,
                    throughput / 1e6,
                    base / 1e6,
                    floor / 1e6,
                    scalar_best / batched_best,
                );
                if throughput < floor {
                    failures.push(format!(
                        "{}: batched throughput {:.0} Minstr/s below the {:.0} Minstr/s floor",
                        spec.name,
                        throughput / 1e6,
                        floor / 1e6
                    ));
                }
            }
            None => println!(
                "{}: batched {:.0} Minstr/s best-of-{REPS}, spread {spread:.1}% \
                 (no recorded baseline)",
                spec.name,
                throughput / 1e6
            ),
        }
    }

    let aggregate = scalar_total / batched_total;
    println!("aggregate batched/scalar speedup: {aggregate:.2}x (floor {SPEEDUP_FLOOR:.2}x)");
    if aggregate < SPEEDUP_FLOOR {
        failures.push(format!(
            "aggregate batched/scalar speedup {aggregate:.2}x below the {SPEEDUP_FLOOR:.2}x floor \
             (instrumentation leaking into the record loop?)"
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_guard: FAIL — {f}");
        }
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
