//! CI regression guard for the decode-once batch pipeline.
//!
//! Two layers of protection for the struct-of-arrays hot path:
//!
//! * **Driver guard** — the batched driver's absolute throughput on each
//!   smoke trace must stay within 5% of the baselines recorded in
//!   `bench_tables.txt` when the SoA kernels landed, and the batched driver
//!   must still clearly beat the scalar reference (aggregate speedup
//!   floor), since instrumentation or abstraction leaking into the
//!   per-record loop would erase exactly that gap.
//! * **Kernel rows** — for every predictor with a hand-written
//!   [`Predictor::predict_batch`] kernel, the kernel is raced against the
//!   trait's default per-record loop over the same prebuilt batch. These
//!   rows are report-only (the reference side is a devirtualized scalar
//!   loop whose speed is layout-sensitive), but they are the source of the
//!   kernel-vs-scalar column in `bench_tables.txt` and make a silently
//!   disabled kernel (speedup ~1.0x) visible in every CI log.
//!
//! The speedup floor is deliberately far below the recorded aggregate: the
//! ratio moves whenever *either* driver shifts, and the scalar reference's
//! per-record dispatch loop is sensitive to code layout — the same sources
//! have measured anywhere from ~1.1x to ~1.9x across builds on one host.
//! The ratio check therefore only asserts the batched driver still
//! genuinely beats the scalar reference, while the absolute-throughput
//! check carries the 5% budget.
//!
//! Throughput is estimated best-of-3: each trace is measured in three
//! independent repetitions of 10 samples, the verdict uses the fastest
//! sample overall (the minimum is the robust estimator on a shared
//! machine), and the spread between the best and worst repetition is
//! printed so a noisy host is visible in the log rather than silently
//! folded into the estimate. On a machine slower than the one the
//! baselines were recorded on, scale the floors with
//! `MBP_BENCH_GUARD_SCALE=<factor>` (e.g. `0.5`), or set it to `0` to turn
//! the absolute checks into reports only.
//!
//! Run: `cargo run --release -p mbp-bench --bin bench_guard`

use mbp_bench::harness::{black_box, BenchGroup, Throughput};
use mbp_core::{
    simulate, simulate_scalar, Branch, PredictionBits, Predictor, SimConfig, TraceSource,
};
use mbp_json::{json, Value};
use mbp_predictors::{Bimodal, GSelect, Gshare, TwoLevel};
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::{translate, BranchBatch};
use mbp_workloads::Suite;

/// Batched-path throughput recorded in `bench_tables.txt` when the
/// struct-of-arrays kernels landed, in instructions per second, keyed by
/// smoke-trace name.
const BASELINE_INSTR_PER_S: [(&str, f64); 2] = [("SMOKE-mobile", 763e6), ("SMOKE-server", 360e6)];

/// Allowed regression on absolute batched throughput: within 5%.
const TOLERANCE: f64 = 0.95;

/// Coarse floor on the aggregate batched/scalar speedup (layout-sensitive —
/// see the module docs): batched must beat scalar.
const SPEEDUP_FLOOR: f64 = 1.05;

/// Timed repetitions per trace; the verdict uses the best, the log shows
/// the spread across them.
const REPS: usize = 3;

/// Timed samples within one repetition (3 × 10 keeps the total at the 30
/// samples the single-repetition guard used).
const SAMPLES_PER_REP: usize = 10;

/// Relative spread of a set of per-repetition times: `(worst - best) /
/// best`, as a percentage. Zero for fewer than two repetitions.
fn spread_pct(times: &[f64]) -> f64 {
    let best = times.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = times.iter().copied().fold(0.0f64, f64::max);
    if !best.is_finite() || best <= 0.0 {
        return 0.0;
    }
    (worst - best) / best * 100.0
}

/// Forwards `P`'s scalar calls while hiding its `predict_batch` override,
/// so the trait's default per-record loop runs — the reference side of the
/// kernel-vs-scalar rows.
struct NoKernel<P>(P);

impl<P: Predictor> Predictor for NoKernel<P> {
    fn predict(&mut self, ip: u64) -> bool {
        self.0.predict(ip)
    }

    fn train(&mut self, branch: &Branch) {
        self.0.train(branch)
    }

    fn track(&mut self, branch: &Branch) {
        self.0.track(branch)
    }
}

/// Races `make()`'s `predict_batch` kernel against the default per-record
/// loop over one prebuilt batch and returns `(kernel_best_s,
/// scalar_loop_best_s)` in seconds. Each sample constructs a fresh
/// predictor so both sides pay the identical table-allocation cost and
/// neither carries trained state between samples.
fn kernel_race<P: Predictor>(
    name: &str,
    make: impl Fn() -> P,
    batch: &BranchBatch,
    instructions: u64,
) -> (f64, f64) {
    let mut group = BenchGroup::new(format!("bench_guard/kernel/{name}"));
    group
        .sample_size(SAMPLES_PER_REP)
        .throughput(Throughput::Elements(instructions));
    let kernel = group.bench_function("predict_batch_kernel", || {
        let mut p = make();
        let mut out = PredictionBits::new();
        p.predict_batch(batch, false, &mut out);
        black_box(out.len())
    });
    let scalar = group.bench_function("scalar_call_loop", || {
        let mut p = NoKernel(make());
        let mut out = PredictionBits::new();
        p.predict_batch(batch, false, &mut out);
        black_box(out.len())
    });
    group.finish();
    (kernel.fastest, scalar.fastest)
}

fn main() {
    let scale = std::env::var("MBP_BENCH_GUARD_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);

    // With MBP_BENCH_TELEMETRY=1 the whole guard runs next to a live but
    // unscraped telemetry listener, so the 5% absolute-throughput envelope
    // also covers the listener's standing cost (an accept poll every 20ms —
    // the hot path itself is never locked or signalled).
    let _telemetry = std::env::var("MBP_BENCH_TELEMETRY")
        .ok()
        .filter(|v| v == "1")
        .map(|_| {
            let server = mbp::telemetry::TelemetryServer::start(
                "127.0.0.1:0",
                mbp::telemetry::TelemetryState {
                    kind: "bench",
                    ..Default::default()
                },
            )
            .expect("bind telemetry listener");
            println!(
                "telemetry listener enabled on {} (unscraped)",
                server.local_addr()
            );
            server
        });

    let suite = Suite::smoke();
    let config = SimConfig::default();
    let (mut scalar_total, mut batched_total) = (0.0f64, 0.0f64);
    let mut failures = Vec::new();
    // Every row printed below is also collected here and written out as
    // machine-readable `BENCH_10.json`, so fleet drivers can track the
    // guard's numbers without scraping the log.
    let mut rows: Vec<Value> = Vec::new();

    for spec in &suite.traces {
        let records = spec.records();
        let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
        let sbbt = translate::records_to_sbbt(&records).expect("generated records encode");

        let mut reader = SbbtReader::from_decompressed(sbbt).expect("generated trace decodes");
        let mut rep_scalar = Vec::with_capacity(REPS);
        let mut rep_batched = Vec::with_capacity(REPS);
        for rep in 1..=REPS {
            let mut group = BenchGroup::new(format!("bench_guard/{}/rep{rep}", spec.name));
            group
                .sample_size(SAMPLES_PER_REP)
                .throughput(Throughput::Elements(instructions));
            let scalar = group.bench_function("scalar_next_record", || {
                reader.rewind();
                let source: &mut dyn TraceSource = &mut reader;
                let mut predictor = Gshare::new(25, 18);
                simulate_scalar(source, &mut predictor, &config).expect("sim")
            });
            let batched = group.bench_function("batched_fill_batch", || {
                reader.rewind();
                let source: &mut dyn TraceSource = &mut reader;
                let mut predictor = Gshare::new(25, 18);
                simulate(source, &mut predictor, &config).expect("sim")
            });
            group.finish();
            rep_scalar.push(scalar.fastest);
            rep_batched.push(batched.fastest);
        }
        let scalar_best = rep_scalar.iter().copied().fold(f64::INFINITY, f64::min);
        let batched_best = rep_batched.iter().copied().fold(f64::INFINITY, f64::min);
        let spread = spread_pct(&rep_batched);

        scalar_total += scalar_best;
        batched_total += batched_best;

        let throughput = instructions as f64 / batched_best;
        let baseline = BASELINE_INSTR_PER_S
            .iter()
            .find(|(name, _)| *name == spec.name)
            .map(|(_, t)| *t);
        let baseline_value = baseline.map_or(Value::Null, Value::from);
        let pass = baseline.is_none_or(|base| throughput >= base * TOLERANCE * scale);
        rows.push(json!({
            "kind": "driver",
            "trace": spec.name.clone(),
            "instr_per_s": throughput,
            "baseline_instr_per_s": baseline_value,
            "speedup_over_scalar": scalar_best / batched_best,
            "spread_pct": spread,
            "pass": pass,
        }));
        match baseline {
            Some(base) => {
                let floor = base * TOLERANCE * scale;
                let verdict = if throughput >= floor { "ok" } else { "FAIL" };
                println!(
                    "{}: batched {:.0} Minstr/s best-of-{REPS} (baseline {:.0}, floor {:.0}) \
                     {verdict}, spread {spread:.1}%, speedup over scalar {:.2}x",
                    spec.name,
                    throughput / 1e6,
                    base / 1e6,
                    floor / 1e6,
                    scalar_best / batched_best,
                );
                if throughput < floor {
                    failures.push(format!(
                        "{}: batched throughput {:.0} Minstr/s below the {:.0} Minstr/s floor",
                        spec.name,
                        throughput / 1e6,
                        floor / 1e6
                    ));
                }
            }
            None => println!(
                "{}: batched {:.0} Minstr/s best-of-{REPS}, spread {spread:.1}% \
                 (no recorded baseline)",
                spec.name,
                throughput / 1e6
            ),
        }
    }

    let aggregate = scalar_total / batched_total;
    println!("aggregate batched/scalar speedup: {aggregate:.2}x (floor {SPEEDUP_FLOOR:.2}x)");
    if aggregate < SPEEDUP_FLOOR {
        failures.push(format!(
            "aggregate batched/scalar speedup {aggregate:.2}x below the {SPEEDUP_FLOOR:.2}x floor \
             (instrumentation leaking into the record loop?)"
        ));
    }
    rows.push(json!({
        "kind": "aggregate",
        "speedup_over_scalar": aggregate,
        "floor": SPEEDUP_FLOOR,
        "pass": aggregate >= SPEEDUP_FLOOR,
    }));

    // Kernel rows: every hand-written kernel raced against the default
    // per-record loop on the first smoke trace (report-only; see module
    // docs). The batch spans the whole trace so table pressure matches the
    // driver benchmarks above.
    let records = suite.traces[0].records();
    let instructions: u64 = records.iter().map(|r| r.instructions()).sum();
    let batch = BranchBatch::from_records(&records);
    type MakePredictor = fn() -> Box<dyn Predictor>;
    let kernel_rows: [(&str, MakePredictor); 4] = [
        ("bimodal", || Box::new(Bimodal::new(18))),
        ("gshare", || Box::new(Gshare::new(25, 18))),
        ("gselect", || Box::new(GSelect::new(6, 12))),
        ("twolevel-pap", || Box::new(TwoLevel::pap(8, 10, 10))),
    ];
    println!("kernel vs scalar-call loop ({}):", suite.traces[0].name);
    for (name, make) in kernel_rows {
        let (kernel, scalar) = kernel_race(name, make, &batch, instructions);
        println!(
            "  {name:<13} kernel {:>6.0} Minstr/s  scalar-loop {:>6.0} Minstr/s  speedup {:.2}x",
            instructions as f64 / kernel / 1e6,
            instructions as f64 / scalar / 1e6,
            scalar / kernel,
        );
        rows.push(json!({
            "kind": "kernel",
            "predictor": name,
            "trace": suite.traces[0].name.clone(),
            "kernel_instr_per_s": instructions as f64 / kernel,
            "scalar_loop_instr_per_s": instructions as f64 / scalar,
            "speedup": scalar / kernel,
        }));
    }

    let doc = json!({
        "schema_version": 1,
        "bench": "bench_guard",
        "scale": scale,
        "tolerance": TOLERANCE,
        "speedup_floor": SPEEDUP_FLOOR,
        "pass": failures.is_empty(),
        "rows": Value::Array(rows),
    });
    let json_out = std::env::var("MBP_BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_10.json".into());
    match std::fs::write(&json_out, format!("{doc:#}\n")) {
        Ok(()) => println!("bench rows written to {json_out}"),
        Err(e) => eprintln!("bench_guard: cannot write {json_out}: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_guard: FAIL — {f}");
        }
        std::process::exit(1);
    }
    println!("bench_guard: OK");
}
