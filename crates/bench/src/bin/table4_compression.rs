//! Regenerates **Table IV**: how much of MBPlib's speedup is explained by
//! the compression method alone.
//!
//! The paper modified the CBP5 framework to read zstd-compressed BT9
//! traces and re-ran everything: the speedup was only 1.02–1.12×, proving
//! the codec is not where the 18.4× comes from. Here the same framework
//! runs the same BT9 traces compressed with MGZ (gzip-like) and with MZST
//! (zstd-like).
//!
//! Run: `cargo run --release -p mbp-bench --bin table4_compression [--scale N]`

use cbp5_sim::{run_framework, McbpAdapter};
use mbp_bench::{fmt_time, scale_from_args, table3_predictors, timed, Summary, TraceBundle};
use mbp_core::Predictor;
use mbp_workloads::Suite;

struct Dyn(Box<dyn Predictor>);

impl Predictor for Dyn {
    fn predict(&mut self, ip: u64) -> bool {
        self.0.predict(ip)
    }
    fn train(&mut self, b: &mbp_core::Branch) {
        self.0.train(b)
    }
    fn track(&mut self, b: &mbp_core::Branch) {
        self.0.track(b)
    }
}

fn main() {
    let scale = scale_from_args();
    println!("Table IV — CBP5 framework speedup from the zstd-like codec (scale {scale})\n");
    let bundles = TraceBundle::build_suite(&Suite::cbp5_training(scale));
    println!(
        "{:<14} {:>14} {:>14} {:>9}",
        "(Averages)", "CBP5 MGZ", "CBP5 MZST", "Speedup"
    );
    for (name, build) in table3_predictors() {
        let mut gz_times = Vec::new();
        let mut zst_times = Vec::new();
        for bundle in &bundles {
            let mut p = McbpAdapter::new(Dyn(build()));
            let (t, _) =
                timed(|| run_framework(&bundle.bt9_mgz[..], &mut p).expect("framework run"));
            gz_times.push(t);

            let mut p = McbpAdapter::new(Dyn(build()));
            let (t, _) =
                timed(|| run_framework(&bundle.bt9_mzst[..], &mut p).expect("framework run"));
            zst_times.push(t);
        }
        let gz = Summary::of(&gz_times);
        let zst = Summary::of(&zst_times);
        println!(
            "{:<14} {:>14} {:>14} {:>8.2}x",
            name,
            fmt_time(gz.average),
            fmt_time(zst.average),
            gz.average / zst.average
        );
    }
    println!(
        "\npaper reference: 1.02x–1.12x — \"the most significant part of the\n\
         speedup is not thanks to the compression method\" (§VII-D); the text\n\
         parsing and graph indirection dominate the framework's runtime."
    );
}
