//! Regenerates **Table II**: the predictors included in the examples
//! library — and, beyond the paper's static list, demonstrates each one
//! running (MPKI on a reference trace), which is the table's pedagogical
//! point: from bimodal to BATAGE, newer predictors predict better.
//!
//! Run: `cargo run --release -p mbp-bench --bin table2_predictors`

use mbp_bench::{table3_predictors, timed};
use mbp_core::{simulate, SimConfig, SliceSource};
use mbp_workloads::{ProgramParams, TraceGenerator};

fn main() {
    println!("Table II — branch predictors included in the examples library\n");
    let records = TraceGenerator::from_params(&ProgramParams::server(), 0x7ab1e2)
        .take_instructions(2_000_000);
    println!(
        "reference trace: SERVER-like, {} branches / {} instructions\n",
        records.len(),
        2_000_000
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12}  reference",
        "Predictor", "MPKI", "accuracy", "sim time"
    );
    for (name, build) in table3_predictors() {
        let mut predictor = build();
        let mut source = SliceSource::new(&records);
        let (seconds, result) = timed(|| {
            simulate(&mut source, &mut *predictor, &SimConfig::default()).expect("in-memory")
        });
        let reference = match name {
            "Bimodal" => "Lee & Smith 1983",
            "Two-Level" => "Yeh & Patt 1992",
            "GShare" => "McFarling 1993",
            "Tournament" => "Evers et al. 1996",
            "2bc-gskew" => "Seznec & Michaud 1999",
            "Hashed Perc" => "Tarjan & Skadron 2005",
            "TAGE" => "Seznec & Michaud 2006",
            "BATAGE" => "Michaud 2018",
            _ => "",
        };
        println!(
            "{:<16} {:>10.4} {:>11.2}% {:>11.0}ms  {}",
            name,
            result.metrics.mpki,
            100.0 * result.metrics.accuracy,
            seconds * 1e3,
            reference
        );
    }
    println!("\n(plus: always-taken / never-taken / BTFN statics, the loop");
    println!("predictor, the bias filter, and BTB / GShare-indirect / ITTAGE");
    println!("target predictors — see `mbp_predictors` docs)");
}
