//! Regenerates **Table III**: simulation time of MBPlib versus the CBP5
//! framework (top half) and versus ChampSim (bottom half).
//!
//! For every predictor and every trace of the CBP5-like suite, both
//! simulators run the same work: open the compressed trace in its native
//! format (SBBT+MZST for MBPlib, BT9+MGZ for the framework), decode it and
//! simulate. Predictors are compiled statically into both hot loops, as
//! both tools do in the paper (§VI-A's per-configuration executables). The
//! summary rows are Slowest / Average / Fastest over the traces, as in the
//! paper. The ChampSim half runs the per-instruction cycle model over the
//! DPC3-like suite with an instruction cap.
//!
//! Run: `cargo run --release -p mbp-bench --bin table3_speed [--scale N]`

use cbp5_sim::{run_framework, McbpAdapter};
use champsim_lite::{ChampsimConfig, Cpu, TargetPredictorChoice};
use mbp_bench::{fmt_time, scale_from_args, timed, Summary, TraceBundle};
use mbp_compress::decompress;
use mbp_core::{simulate, Predictor, SimConfig};
use mbp_predictors::{
    Batage, BatageConfig, Bimodal, Gshare, HashedPerceptron, Tage, TageConfig, Tournament,
    TwoBcGskew, TwoLevel,
};
use mbp_trace::champsim::ChampsimReader;
use mbp_trace::sbbt::SbbtReader;
use mbp_workloads::Suite;

/// Runs one predictor configuration through both simulators over the whole
/// suite, monomorphized so the predictor inlines into the hot loops.
fn compare<P: Predictor>(name: &str, bundles: &[TraceBundle], make: impl Fn() -> P) {
    let mut cbp5_times = Vec::new();
    let mut mbp_times = Vec::new();
    let mut cbp5_mis = 0u64;
    let mut mbp_mis = 0u64;
    for bundle in bundles {
        // CBP5 framework: decompress + parse text + graph walk + simulate.
        let mut fw_pred = McbpAdapter::new(make());
        let (t, result) =
            timed(|| run_framework(&bundle.bt9_mgz[..], &mut fw_pred).expect("framework run"));
        cbp5_times.push(t);
        cbp5_mis += result.mispredictions;

        // MBPlib: decompress + packet walk + simulate.
        let mut lib_pred = make();
        let (t, result) = timed(|| {
            let mut reader = SbbtReader::from_bytes(bundle.sbbt_mzst.clone()).expect("sbbt open");
            simulate(&mut reader, &mut lib_pred, &SimConfig::default()).expect("sim run")
        });
        mbp_times.push(t);
        mbp_mis += result.metrics.mispredictions;
    }
    assert_eq!(
        cbp5_mis, mbp_mis,
        "§VII-C violated: results must be identical across simulators"
    );
    let cbp5 = Summary::of(&cbp5_times);
    let mbp = Summary::of(&mbp_times);
    println!("{name:<13}");
    for (label, c, m) in [
        ("Slowest", cbp5.slowest, mbp.slowest),
        ("Average", cbp5.average, mbp.average),
        ("Fastest", cbp5.fastest, mbp.fastest),
    ] {
        println!(
            "  {label:<11} {:>12} {:>12} {:>8.2}x",
            fmt_time(c),
            fmt_time(m),
            c / m
        );
    }
}

fn main() {
    let scale = scale_from_args();
    let champsim_cap: u64 = 1_000_000 * scale;

    println!("Table III — simulation time, MBPlib vs CBP5 framework (scale {scale})\n");
    let bundles = TraceBundle::build_suite(&Suite::cbp5_training(scale));
    let total_instr: u64 = bundles.iter().map(|b| b.instructions).sum();
    println!(
        "{} traces, {} total instructions\n",
        bundles.len(),
        total_instr
    );
    println!(
        "{:<13} {:>9} {:>12} {:>12} {:>9}",
        "Predictor", "", "CBP5", "MBPlib", "Speedup"
    );

    compare("Bimodal", &bundles, || Bimodal::new(18));
    compare("Two-Level", &bundles, || TwoLevel::gas(12, 6, 0));
    compare("GShare", &bundles, || Gshare::new(25, 18));
    compare("Tournament", &bundles, || Tournament::classic(16));
    compare("2bc-gskew", &bundles, || TwoBcGskew::new(16, 16));
    compare("Hashed Perc", &bundles, HashedPerceptron::default_config);
    compare("TAGE", &bundles, || Tage::new(TageConfig::default_64kb()));
    compare("BATAGE", &bundles, || {
        Batage::new(BatageConfig::default_64kb())
    });

    println!(
        "\nTable III (bottom) — ChampSim-like cycle simulation, {champsim_cap} instructions\n"
    );
    let dpc3 = TraceBundle::build_suite_full(&Suite::dpc3(scale));
    for (name, direction, targets) in [
        (
            "GShare",
            Box::new(|| Box::new(Gshare::new(25, 18)) as Box<dyn Predictor>)
                as Box<dyn Fn() -> Box<dyn Predictor>>,
            TargetPredictorChoice::btb_with_gshare_indirect as fn() -> TargetPredictorChoice,
        ),
        (
            "BATAGE",
            Box::new(|| Box::new(Batage::new(BatageConfig::default_64kb())) as Box<dyn Predictor>),
            TargetPredictorChoice::btb_with_ittage,
        ),
    ] {
        let mut champ_times = Vec::new();
        let mut mbp_times = Vec::new();
        for bundle in &dpc3 {
            let (t, _) = timed(|| {
                let champ = bundle.champsim_mgz.as_ref().expect("built full");
                let bytes = decompress(champ).expect("decompress");
                let reader = ChampsimReader::from_reader(&bytes[..]).expect("open");
                let mut cpu = Cpu::new(ChampsimConfig::ice_lake_like(), direction(), targets());
                cpu.run(reader, Some(champsim_cap))
            });
            champ_times.push(t);

            let mut predictor = direction();
            let (t, _) = timed(|| {
                let mut reader =
                    SbbtReader::from_bytes(bundle.sbbt_mzst.clone()).expect("sbbt open");
                let cfg = SimConfig {
                    max_instructions: Some(champsim_cap),
                    ..SimConfig::default()
                };
                simulate(&mut reader, &mut *predictor, &cfg).expect("sim run")
            });
            mbp_times.push(t);
        }
        let champ = Summary::of(&champ_times);
        let mbp = Summary::of(&mbp_times);
        println!(
            "{name:<13} {:>10} {:>12} {:>12} {:>9}",
            "", "ChampSim", "MBPlib", "Speedup"
        );
        for (label, c, m) in [
            ("Slowest", champ.slowest, mbp.slowest),
            ("Average", champ.average, mbp.average),
            ("Fastest", champ.fastest, mbp.fastest),
        ] {
            println!(
                "  {label:<11} {:>10} {:>12} {:>12} {:>8.0}x",
                "",
                fmt_time(c),
                fmt_time(m),
                c / m
            );
        }
    }
    println!(
        "\npaper reference: 18.4x (bimodal) declining to 3.25x (BATAGE) against\n\
         the CBP5 framework; ~923x (GShare) and ~134x (BATAGE) against ChampSim.\n\
         Simple predictors gain most — the simulator overhead dominates them."
    );
}
