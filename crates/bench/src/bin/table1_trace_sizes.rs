//! Regenerates **Table I**: size reduction of the translated trace sets.
//!
//! Paper: CBP5-Training 5.4 GB → 760 MB (7.3×), CBP5-Evaluation 4.0 GB →
//! 727 MB (5.0×), DPC3 30 GB → 727 MB (42×). "Original" means the format
//! the set was distributed in — gzip-compressed BT9 text for CBP5,
//! gzip-compressed per-instruction traces for DPC3 — and "translated"
//! means SBBT compressed with the zstd-like codec at its top level.
//!
//! Run: `cargo run --release -p mbp-bench --bin table1_trace_sizes [--scale N]`

use mbp_bench::{fmt_bytes, scale_from_args, TraceBundle};
use mbp_workloads::Suite;

struct Row {
    set: &'static str,
    traces: usize,
    original: u64,
    translated: u64,
}

fn measure(
    suite: &Suite,
    full: bool,
    original_of: impl Fn(&TraceBundle) -> u64,
) -> (usize, u64, u64) {
    let bundles = if full {
        TraceBundle::build_suite_full(suite)
    } else {
        TraceBundle::build_suite(suite)
    };
    let original = bundles.iter().map(&original_of).sum();
    let translated = bundles.iter().map(|b| b.sbbt_mzst.len() as u64).sum();
    (bundles.len(), original, translated)
}

fn main() {
    let scale = scale_from_args();
    println!("Table I — size reduction of the translated trace sets (scale {scale})\n");

    let mut rows = Vec::new();

    let (n, orig, trans) = measure(&Suite::cbp5_training(scale), false, |b| {
        b.bt9_mgz.len() as u64
    });
    rows.push(Row {
        set: "CBP5 - Training",
        traces: n,
        original: orig,
        translated: trans,
    });

    let (n, orig, trans) = measure(&Suite::cbp5_evaluation(scale), false, |b| {
        b.bt9_mgz.len() as u64
    });
    rows.push(Row {
        set: "CBP5 - Evaluation",
        traces: n,
        original: orig,
        translated: trans,
    });

    let (n, orig, trans) = measure(&Suite::dpc3(scale), true, |b| {
        b.champsim_mgz.as_ref().expect("built full").len() as u64
    });
    rows.push(Row {
        set: "DPC3",
        traces: n,
        original: orig,
        translated: trans,
    });

    println!(
        "{:<20} {:>7} {:>14} {:>16} {:>10}",
        "Trace Set", "Traces", "Original", "Translated", "Ratio"
    );
    let (mut tot_orig, mut tot_trans) = (0u64, 0u64);
    for r in &rows {
        tot_orig += r.original;
        tot_trans += r.translated;
        println!(
            "{:<20} {:>7} {:>14} {:>16} {:>9.1}x",
            r.set,
            r.traces,
            fmt_bytes(r.original),
            fmt_bytes(r.translated),
            r.original as f64 / r.translated as f64
        );
    }
    println!(
        "{:<20} {:>7} {:>14} {:>16} {:>9.1}x",
        "(total)",
        "",
        fmt_bytes(tot_orig),
        fmt_bytes(tot_trans),
        tot_orig as f64 / tot_trans as f64
    );
    println!(
        "\npaper reference: 7.3x / 5.0x / 42.0x (absolute sizes differ — the\n\
         synthetic sets are laptop-scaled; the DPC3 ratio is driven by the\n\
         64 B-per-instruction format, as in the paper)"
    );
}
