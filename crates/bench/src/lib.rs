//! Shared harness code for the table-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table of the paper's
//! evaluation (see DESIGN.md's per-experiment index); this library holds
//! the pieces they share: materialized trace bundles in every format,
//! wall-clock measurement, and the slowest/average/fastest summaries of
//! Table III.

use std::time::Instant;

use mbp_compress::{compress, Codec};
use mbp_core::Predictor;
use mbp_trace::{translate, BranchRecord};
use mbp_workloads::{Suite, TraceSpec};

pub mod harness;

/// A trace materialized in every on-disk representation the evaluation
/// compares.
pub struct TraceBundle {
    /// Trace display name.
    pub name: String,
    /// The branch records (ground truth).
    pub records: Vec<BranchRecord>,
    /// Instructions covered.
    pub instructions: u64,
    /// SBBT, compressed with MZST at the paper's level 22.
    pub sbbt_mzst: Vec<u8>,
    /// BT9 text, compressed with MGZ (the original distribution format).
    pub bt9_mgz: Vec<u8>,
    /// BT9 text, compressed with MZST (for Table IV).
    pub bt9_mzst: Vec<u8>,
    /// Raw sizes before compression: (sbbt, bt9, champsim-or-0).
    pub raw_sizes: (usize, usize, usize),
    /// ChampSim-format trace, compressed with MGZ (only built on request —
    /// it is 64 bytes *per instruction*).
    pub champsim_mgz: Option<Vec<u8>>,
}

impl TraceBundle {
    /// Materializes a suite spec in the branch-trace formats.
    ///
    /// # Panics
    ///
    /// Panics on encode failures (impossible for generated records).
    pub fn build(spec: &TraceSpec) -> Self {
        Self::build_with(spec, false)
    }

    /// Like [`TraceBundle::build`], also materializing the per-instruction
    /// ChampSim-format trace.
    pub fn build_full(spec: &TraceSpec) -> Self {
        Self::build_with(spec, true)
    }

    fn build_with(spec: &TraceSpec, with_champsim: bool) -> Self {
        let records = spec.records();
        let instructions = records.iter().map(|r| r.instructions()).sum();
        let sbbt = translate::records_to_sbbt(&records).expect("generated records encode");
        let bt9 = translate::records_to_bt9(&records);
        let champsim = with_champsim
            .then(|| translate::records_to_champsim(&records).expect("in-memory write"));
        let raw_sizes = (sbbt.len(), bt9.len(), champsim.as_ref().map_or(0, Vec::len));
        TraceBundle {
            name: spec.name.clone(),
            instructions,
            sbbt_mzst: compress(&sbbt, Codec::Mzst, 22).expect("level valid"),
            bt9_mgz: compress(bt9.as_bytes(), Codec::Mgz, 6).expect("level valid"),
            bt9_mzst: compress(bt9.as_bytes(), Codec::Mzst, 22).expect("level valid"),
            champsim_mgz: champsim.map(|c| compress(&c, Codec::Mgz, 6).expect("level valid")),
            records,
            raw_sizes,
        }
    }

    /// Materializes a whole suite (branch formats only).
    pub fn build_suite(suite: &Suite) -> Vec<TraceBundle> {
        suite.traces.iter().map(TraceBundle::build).collect()
    }

    /// Materializes a whole suite including the ChampSim format.
    pub fn build_suite_full(suite: &Suite) -> Vec<TraceBundle> {
        suite.traces.iter().map(TraceBundle::build_full).collect()
    }
}

/// Wall-clock measurement of a closure, returning `(seconds, value)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

/// Slowest / average / fastest of a set of per-trace timings — the summary
/// shape of Table III.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Maximum seconds.
    pub slowest: f64,
    /// Mean seconds.
    pub average: f64,
    /// Minimum seconds.
    pub fastest: f64,
}

impl Summary {
    /// Summarizes timings.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(times: &[f64]) -> Self {
        assert!(!times.is_empty(), "need at least one timing");
        Summary {
            slowest: times.iter().cloned().fold(f64::MIN, f64::max),
            average: times.iter().sum::<f64>() / times.len() as f64,
            fastest: times.iter().cloned().fold(f64::MAX, f64::min),
        }
    }
}

/// Formats a duration with adaptive units (`ms`, `s`, `min`).
pub fn fmt_time(seconds: f64) -> String {
    if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds < 120.0 {
        format!("{seconds:.2} s")
    } else {
        format!("{:.2} min", seconds / 60.0)
    }
}

/// Formats a byte count with adaptive units.
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KB {
        format!("{bytes} B")
    } else if b < KB * KB {
        format!("{:.1} kB", b / KB)
    } else if b < KB * KB * KB {
        format!("{:.1} MB", b / KB / KB)
    } else {
        format!("{:.2} GB", b / KB / KB / KB)
    }
}

/// A factory building one fresh predictor per benchmark iteration. The
/// boxes are `Send` so they can feed `mbp_core::simulate_many` directly.
pub type PredictorFactory = Box<dyn Fn() -> Box<dyn Predictor + Send>>;

/// The eight predictor configurations of Table III, in table order, at
/// their ~64 kB benchmark budgets.
pub fn table3_predictors() -> Vec<(&'static str, PredictorFactory)> {
    use mbp_predictors::*;
    vec![
        (
            "Bimodal",
            Box::new(|| Box::new(Bimodal::new(18)) as Box<dyn Predictor + Send>),
        ),
        (
            "Two-Level",
            Box::new(|| Box::new(TwoLevel::gas(12, 6, 0)) as Box<dyn Predictor + Send>),
        ),
        (
            "GShare",
            Box::new(|| Box::new(Gshare::new(25, 18)) as Box<dyn Predictor + Send>),
        ),
        (
            "Tournament",
            Box::new(|| Box::new(Tournament::classic(16)) as Box<dyn Predictor + Send>),
        ),
        (
            "2bc-gskew",
            Box::new(|| Box::new(TwoBcGskew::new(16, 16)) as Box<dyn Predictor + Send>),
        ),
        (
            "Hashed Perc",
            Box::new(|| Box::new(HashedPerceptron::default_config()) as Box<dyn Predictor + Send>),
        ),
        (
            "TAGE",
            Box::new(|| {
                Box::new(Tage::new(TageConfig::default_64kb())) as Box<dyn Predictor + Send>
            }),
        ),
        (
            "BATAGE",
            Box::new(|| {
                Box::new(Batage::new(BatageConfig::default_64kb())) as Box<dyn Predictor + Send>
            }),
        ),
    ]
}

/// Parses a `--scale N` argument (default 1).
pub fn scale_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_extremes() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.slowest, 3.0);
        assert_eq!(s.fastest, 1.0);
        assert_eq!(s.average, 2.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(0.5), "500.00 ms");
        assert_eq!(fmt_time(5.0), "5.00 s");
        assert_eq!(fmt_time(180.0), "3.00 min");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 kB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MB");
    }

    #[test]
    fn bundle_builds_all_formats() {
        let suite = Suite::smoke();
        let bundle = TraceBundle::build_full(&suite.traces[0]);
        assert!(!bundle.records.is_empty());
        assert!(bundle.sbbt_mzst.len() > 8);
        assert!(bundle.bt9_mgz.len() > 8);
        assert!(bundle.champsim_mgz.as_ref().unwrap().len() > 8);
        assert!(
            bundle.raw_sizes.2 > bundle.raw_sizes.0,
            "champsim raw biggest"
        );
    }

    #[test]
    fn table3_has_eight_predictors() {
        let preds = table3_predictors();
        assert_eq!(preds.len(), 8);
        for (name, build) in preds {
            let p = build();
            assert!(!p.metadata().is_null(), "{name}");
        }
    }
}
