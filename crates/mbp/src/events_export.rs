//! Export layers for the [`mbp_stats::events`] journal: Chrome trace-event
//! JSON (loadable in Perfetto or `chrome://tracing`) and a compact JSONL
//! stream, plus the validator behind `mbpsim validate-trace`.
//!
//! The Chrome trace-event format is the de-facto interchange format for
//! timeline viewers: a JSON object with a `traceEvents` array whose entries
//! carry a name, a phase (`"B"`egin / `"E"`nd / `"i"`nstant / `"C"`ounter),
//! a microsecond timestamp and a process/thread id. Spans from the journal
//! map to `B`/`E` pairs per thread, instants to `i`, and samples to `C`
//! counter tracks, so a `--trace-out` file opens directly as a per-worker
//! swim-lane timeline with throughput curves underneath.

use std::collections::HashMap;

use mbp_json::{json, Map, Value};
use mbp_stats::events::{Event, EventKind};

/// Renders drained journal events as a Chrome trace-event JSON document.
///
/// Timestamps are converted to microseconds and bumped (by 1 ns) where
/// needed so they are **strictly increasing per thread** — viewers sort
/// stably, but downstream diffing tools rely on the order being total.
/// `dropped_events` (from [`mbp_stats::events::dropped_events`]) is recorded
/// under `otherData` so a truncated timeline is detectable.
pub fn chrome_trace_json(events: &[Event], dropped_events: u64) -> Value {
    let mut trace_events = Vec::with_capacity(events.len());
    let mut last_us: HashMap<u64, f64> = HashMap::new();
    for e in events {
        let mut ts = e.ts_ns as f64 / 1000.0;
        if let Some(prev) = last_us.get(&e.tid) {
            if ts <= *prev {
                ts = prev + 0.001;
            }
        }
        last_us.insert(e.tid, ts);
        let mut obj = Map::new();
        obj.insert("name", e.name.as_str());
        obj.insert("cat", "mbp");
        obj.insert("ph", phase(e.kind));
        obj.insert("ts", ts);
        obj.insert("pid", 1u64);
        obj.insert("tid", e.tid);
        match e.kind {
            EventKind::SpanBegin | EventKind::Instant => {
                if e.kind == EventKind::Instant {
                    // Thread-scoped instant marker.
                    obj.insert("s", "t");
                }
                obj.insert("args", json!({ "arg": e.arg }));
            }
            EventKind::Sample => {
                // Counter tracks chart `args` values over time.
                obj.insert("args", json!({ "value": e.arg }));
            }
            EventKind::SpanEnd => {}
        }
        trace_events.push(Value::Object(obj));
    }
    json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "mbpsim",
            "dropped_events": dropped_events,
        },
    })
}

fn phase(kind: EventKind) -> &'static str {
    match kind {
        EventKind::SpanBegin => "B",
        EventKind::SpanEnd => "E",
        EventKind::Instant => "i",
        EventKind::Sample => "C",
    }
}

/// Renders drained journal events as compact JSONL: one event object per
/// line, in drain order (grouped by thread, chronological within each).
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let line = json!({
            "ts_ns": e.ts_ns,
            "tid": e.tid,
            "kind": e.kind.as_str(),
            "name": e.name.as_str(),
            "arg": e.arg,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Summary of a validated Chrome trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Events in the `traceEvents` array.
    pub events: u64,
    /// Distinct thread ids observed.
    pub threads: u64,
    /// Events the producer dropped to ring wrap-around (`otherData`).
    pub dropped: u64,
}

/// Validates a parsed Chrome trace document: `traceEvents` must be an array
/// of objects carrying `name`/`ph`/`ts`/`pid`/`tid`, with a known phase and
/// **strictly increasing** timestamps per thread.
///
/// # Errors
///
/// A one-line description of the first structural violation.
pub fn validate_chrome_trace(doc: &Value) -> Result<TraceCheck, String> {
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("missing traceEvents array")?;
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let obj = e
            .as_object()
            .ok_or(format!("traceEvents[{i}]: not an object"))?;
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if !obj.contains_key(key) {
                return Err(format!("traceEvents[{i}]: missing {key:?}"));
            }
        }
        let ph = e["ph"]
            .as_str()
            .ok_or(format!("traceEvents[{i}]: ph not a string"))?;
        if !matches!(ph, "B" | "E" | "i" | "C") {
            return Err(format!("traceEvents[{i}]: unknown phase {ph:?}"));
        }
        let ts = e["ts"]
            .as_f64()
            .ok_or(format!("traceEvents[{i}]: ts not a number"))?;
        let tid = e["tid"]
            .as_u64()
            .ok_or(format!("traceEvents[{i}]: tid not an integer"))?;
        if let Some(prev) = last_ts.get(&tid) {
            if ts <= *prev {
                return Err(format!(
                    "traceEvents[{i}]: timestamp {ts} not strictly after {prev} on tid {tid}"
                ));
            }
        }
        last_ts.insert(tid, ts);
    }
    Ok(TraceCheck {
        events: events.len() as u64,
        threads: last_ts.len() as u64,
        dropped: doc["otherData"]["dropped_events"].as_u64().unwrap_or(0),
    })
}

/// The end-of-run warning for a journal that wrapped: `None` when nothing
/// was lost, one stderr-ready line otherwise. Pure, so the exact wording
/// (which fleet drivers grep for) is pinned by a test.
pub fn dropped_events_warning(dropped: u64) -> Option<String> {
    (dropped > 0).then(|| {
        format!(
            "mbpsim: warning: event journal overflowed; {dropped} event(s) dropped \
             (raise --sample-every or shorten the run for a complete timeline)"
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_stats::events::EventName;

    fn ev(ts_ns: u64, tid: u64, kind: EventKind, name: EventName, arg: u64) -> Event {
        Event {
            ts_ns,
            tid,
            kind,
            name,
            arg,
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(1_000, 1, EventKind::SpanBegin, EventName::SimSimulate, 0),
            ev(
                2_000,
                1,
                EventKind::Instant,
                EventName::SweepPredictorDone,
                7,
            ),
            ev(3_000, 1, EventKind::SpanEnd, EventName::SimSimulate, 0),
            ev(
                1_500,
                2,
                EventKind::Sample,
                EventName::SampleSimRecords,
                2048,
            ),
        ]
    }

    #[test]
    fn chrome_trace_round_trips_and_validates() {
        let doc = chrome_trace_json(&sample_events(), 3);
        let reparsed: Value = doc.to_pretty_string().parse().unwrap();
        let check = validate_chrome_trace(&reparsed).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.threads, 2);
        assert_eq!(check.dropped, 3);
        assert_eq!(reparsed["traceEvents"][0]["ph"], Value::from("B"));
        assert_eq!(reparsed["traceEvents"][3]["ph"], Value::from("C"));
    }

    #[test]
    fn equal_timestamps_are_bumped_per_thread() {
        let events = vec![
            ev(1_000, 1, EventKind::Instant, EventName::SweepFault, 0),
            ev(1_000, 1, EventKind::Instant, EventName::SweepFault, 1),
            ev(1_000, 2, EventKind::Instant, EventName::SweepFault, 2),
        ];
        let doc = chrome_trace_json(&events, 0);
        validate_chrome_trace(&doc).expect("strictly monotonic after bumping");
        let t0 = doc["traceEvents"][0]["ts"].as_f64().unwrap();
        let t1 = doc["traceEvents"][1]["ts"].as_f64().unwrap();
        let t2 = doc["traceEvents"][2]["ts"].as_f64().unwrap();
        assert!(t1 > t0, "same-thread tie bumped");
        assert_eq!(t0, t2, "different threads may share a timestamp");
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let events = vec![
            ev(2_000, 1, EventKind::Instant, EventName::SweepFault, 0),
            ev(1_000, 1, EventKind::Instant, EventName::SweepFault, 1),
        ];
        // Rewind the second event's clock by hand so the exporter's
        // tie-bumping cannot fix it.
        let mut doc = chrome_trace_json(&events, 0);
        if let Some(Value::Array(arr)) = doc.as_object_mut().and_then(|o| o.get_mut("traceEvents"))
        {
            if let Some(obj) = arr[1].as_object_mut() {
                obj.insert("ts", 0.5);
            }
        }
        assert!(validate_chrome_trace(&doc).is_err());
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let text = events_jsonl(&sample_events());
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            let v: Value = line.parse().expect("valid JSON line");
            assert!(v["ts_ns"].as_u64().is_some());
            assert!(v["kind"].as_str().is_some());
        }
    }

    #[test]
    fn dropped_events_warning_fires_only_on_loss() {
        assert_eq!(dropped_events_warning(0), None);
        let warning = dropped_events_warning(7).expect("loss warns");
        assert!(warning.starts_with("mbpsim: warning:"), "{warning}");
        assert!(warning.contains("7 event(s) dropped"), "{warning}");
    }
}
