//! Minimal SIGINT/SIGTERM latch for graceful sweep shutdown, `std`-only.
//!
//! The handler does the only thing that is async-signal-safe here: it flips
//! a process-global atomic flag. The sweep monitor polls the flag (see
//! [`mbp_core::SweepConfig::shutdown`]) and drains the run — in-flight
//! predictors finish and are checkpointed, unstarted ones are reported as
//! `not_run` — instead of the process dying mid-write.
//!
//! A **second** signal restores the default disposition before re-raising
//! would be needed: the first Ctrl-C asks politely, the second one kills.
//! That matches the behaviour operators expect from well-mannered batch
//! tools.
//!
//! On non-Unix targets [`install`] is a no-op and [`requested`] stays
//! `false` — sweeps simply run to completion.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received. Safe to poll from any
/// thread; this is the function to put in
/// [`mbp_core::SweepConfig::shutdown`].
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    // `signal(2)` from libc, which `std` already links. The handler body
    // only touches an atomic and `signal` itself — both async-signal-safe.
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        if SHUTDOWN.swap(true, Ordering::Relaxed) {
            // Second signal: the operator means it. Restore the default
            // disposition so the next one terminates the process.
            unsafe {
                signal(signum, SIG_DFL);
            }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Invokes the handler the way the kernel would, minus the asynchrony.
    #[cfg(test)]
    pub fn test_fire() {
        on_signal(SIGINT);
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent; later installs simply
/// re-register the same handler). Call once, before starting a sweep that
/// should drain gracefully.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_safe() {
        // The real signal path is exercised end to end by the CLI
        // resilience suite (sending SIGTERM to a child mbpsim); in-process
        // we only pin the safe parts.
        install();
        install();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_latches_the_flag() {
        install();
        super::imp::test_fire();
        assert!(requested());
        SHUTDOWN.store(false, std::sync::atomic::Ordering::Relaxed);
    }
}
