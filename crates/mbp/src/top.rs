//! `mbpsim top <addr>` — a live terminal dashboard over the telemetry
//! plane's `/snapshot` endpoint: the interactive counterpart of the
//! progress line.
//!
//! The dashboard is a pure client: it polls `/snapshot`, keeps a short
//! per-predictor MPKI history for the sparkline column, and repaints a
//! sweep-level header plus a per-predictor table. Rendering is TTY-gated —
//! when stdout is not a terminal (or `--once` is passed) it prints a
//! single plain frame and exits, so it can be scripted and tested.

use std::collections::BTreeMap;
use std::io::{IsTerminal, Write};
use std::time::Duration;

use mbp_json::Value;

use crate::spark::text_sparkline;
use crate::telemetry::http_get;

/// Width of the MPKI trend sparkline column.
const TREND_WIDTH: usize = 16;
/// MPKI history points kept per predictor.
const HISTORY: usize = 64;

/// Dashboard options, parsed from the `top` subcommand's flags.
pub struct TopOptions {
    /// Telemetry address, `host:port`.
    pub addr: String,
    /// Poll interval.
    pub interval: Duration,
    /// Render exactly one frame and exit.
    pub once: bool,
}

/// Null-tolerant nested lookup (indexing a [`Value`] panics on misses).
fn field<'a>(doc: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    Some(cur)
}

/// Renders one dashboard frame from a `/snapshot` document and the
/// accumulated MPKI history. Pure, so frames are unit-testable.
pub fn render_frame(doc: &Value, history: &BTreeMap<String, Vec<f64>>) -> String {
    let mut out = String::new();
    let kind = field(doc, &["kind"]).and_then(Value::as_str).unwrap_or("?");
    let elapsed = field(doc, &["elapsed_s"])
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let shutdown = field(doc, &["shutdown_requested"])
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let dropped = field(doc, &["dropped_events"])
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let instr = field(doc, &["pipeline", "simulate", "instructions"])
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let ips = field(doc, &["pipeline", "simulate", "instructions_per_second"])
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "mbpsim {kind} | elapsed {elapsed:.1}s | {} instr ({}/s)",
        human(instr),
        human(ips as u64),
    ));
    if let Some(fraction) = field(doc, &["sampling", "simulated_fraction"]).and_then(Value::as_f64)
    {
        out.push_str(&format!(" | sampled {:.0}%", fraction * 100.0));
    }
    if shutdown {
        out.push_str(" | SHUTDOWN REQUESTED");
    }
    if dropped > 0 {
        out.push_str(&format!(" | {dropped} events dropped"));
    }
    out.push('\n');

    let predictors = field(doc, &["sweep", "predictors"]).and_then(Value::as_array);
    match predictors {
        Some(preds) if !preds.is_empty() => {
            let width = TREND_WIDTH;
            let name_w = preds
                .iter()
                .filter_map(|p| field(p, &["name"]).and_then(Value::as_str))
                .map(str::len)
                .max()
                .unwrap_or(4)
                .max(4);
            out.push_str(&format!(
                "{:<name_w$}  {:<8}  {:>7}  {:>10}  {:>10}  {:>8}  {:<width$}\n",
                "NAME", "STATE", "EPOCH", "INSTR", "MISPRED", "MPKI", "TREND",
            ));
            for p in preds {
                let name = field(p, &["name"]).and_then(Value::as_str).unwrap_or("?");
                let trend = history
                    .get(name)
                    .map(|h| text_sparkline(h, TREND_WIDTH))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{:<name_w$}  {:<8}  {:>7}  {:>10}  {:>10}  {:>8.3}  {:<width$}\n",
                    name,
                    field(p, &["state"]).and_then(Value::as_str).unwrap_or("?"),
                    field(p, &["epoch"]).and_then(Value::as_u64).unwrap_or(0),
                    human(
                        field(p, &["instructions"])
                            .and_then(Value::as_u64)
                            .unwrap_or(0)
                    ),
                    human(
                        field(p, &["mispredictions"])
                            .and_then(Value::as_u64)
                            .unwrap_or(0)
                    ),
                    field(p, &["mpki"]).and_then(Value::as_f64).unwrap_or(0.0),
                    trend,
                ));
                // Forensic drill-down: the predictor's current worst
                // (most-mispredicted) branch, once one exists (v2 snapshot).
                if let (Some(ip), Some(misses)) = (
                    field(p, &["worst_branch", "ip"]).and_then(Value::as_u64),
                    field(p, &["worst_branch", "mispredictions"]).and_then(Value::as_u64),
                ) {
                    out.push_str(&format!(
                        "{:<name_w$}  └ worst branch {ip:#014x}  {} mispredictions\n",
                        "",
                        human(misses),
                    ));
                }
            }
        }
        _ => out.push_str("(no predictor status published)\n"),
    }
    out
}

/// Appends the latest per-predictor MPKI readings to the trend history.
pub fn update_history(doc: &Value, history: &mut BTreeMap<String, Vec<f64>>) {
    if let Some(preds) = field(doc, &["sweep", "predictors"]).and_then(Value::as_array) {
        for p in preds {
            let (Some(name), Some(mpki)) = (
                field(p, &["name"]).and_then(Value::as_str),
                field(p, &["mpki"]).and_then(Value::as_f64),
            ) else {
                continue;
            };
            let series = history.entry(name.to_string()).or_default();
            series.push(mpki);
            if series.len() > HISTORY {
                series.remove(0);
            }
        }
    }
}

/// Polls `/snapshot` and renders frames until the server goes away or the
/// options ask for a single frame. Returns an error message on failure to
/// reach the server at all.
pub fn run_top(opts: &TopOptions) -> Result<(), String> {
    let timeout = Duration::from_secs(2);
    let live = !opts.once && std::io::stdout().is_terminal();
    let mut history: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut connected = false;
    loop {
        let body = match http_get(&opts.addr, "/snapshot", timeout) {
            Ok(body) => body,
            Err(e) if connected => {
                // The run finished and drained its listener: a clean exit.
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "telemetry endpoint closed ({e}); run finished");
                return Ok(());
            }
            Err(e) => return Err(format!("cannot reach {}: {e}", opts.addr)),
        };
        connected = true;
        let doc: Value = body
            .parse()
            .map_err(|e| format!("malformed snapshot from {}: {e:?}", opts.addr))?;
        let version = field(&doc, &["schema_version"])
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if version != crate::telemetry::SNAPSHOT_SCHEMA_VERSION {
            return Err(format!(
                "snapshot schema version {version} is not the supported {}",
                crate::telemetry::SNAPSHOT_SCHEMA_VERSION
            ));
        }
        update_history(&doc, &mut history);
        let frame = render_frame(&doc, &history);
        {
            let mut out = std::io::stdout().lock();
            if live {
                // Home + repaint + clear the remainder: flicker-free like
                // the progress line's \r ... \x1b[K, extended to a block.
                let _ = write!(out, "\x1b[H{frame}\x1b[J");
            } else {
                let _ = out.write_all(frame.as_bytes());
            }
            let _ = out.flush();
        }
        if !live {
            return Ok(());
        }
        std::thread::sleep(opts.interval);
    }
}

/// `1234567` → `"1.2M"` (table cells stay narrow).
fn human(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n}"),
        10_000..=999_999 => format!("{:.1}k", n as f64 / 1e3),
        _ => format!("{:.1}M", n as f64 / 1e6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;

    fn sample_doc() -> Value {
        json!({
            "schema_version": 2,
            "kind": "sweep",
            "elapsed_s": 2.5,
            "shutdown_requested": false,
            "dropped_events": 0,
            "scrapes": 4,
            "pipeline": {"simulate": {
                "instructions": 1_500_000,
                "instructions_per_second": 600_000.0,
            }},
            "sweep": {"predictors": [
                {"name": "gshare", "state": "running", "epoch": 12,
                 "instructions": 800_000, "conditional_branches": 100_000,
                 "mispredictions": 4_000, "mpki": 5.0,
                 "worst_branch": {"ip": 0x4a0u64, "mispredictions": 1_200}},
                {"name": "tage", "state": "queued", "epoch": 0,
                 "instructions": 0, "conditional_branches": 0,
                 "mispredictions": 0, "mpki": 0.0,
                 "worst_branch": Value::Null},
            ]},
        })
    }

    #[test]
    fn frame_has_header_and_one_row_per_predictor() {
        let doc = sample_doc();
        let mut history = BTreeMap::new();
        update_history(&doc, &mut history);
        let frame = render_frame(&doc, &history);
        assert!(frame.starts_with("mbpsim sweep | elapsed 2.5s"));
        assert!(frame.contains("1.5M instr"));
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(
            lines.len(),
            5,
            "header + column row + 2 predictors + gshare drill-down"
        );
        assert!(lines[2].starts_with("gshare"));
        assert!(lines[2].contains("running"));
        assert!(lines[2].contains("5.000"));
        assert!(
            lines[3].contains("└ worst branch 0x0000000004a0"),
            "drill-down row under gshare: {}",
            lines[3]
        );
        assert!(lines[3].contains("1200 mispredictions"));
        assert!(lines[4].starts_with("tage"));
        assert!(lines[4].contains("queued"));
    }

    #[test]
    fn history_accumulates_and_caps() {
        let doc = sample_doc();
        let mut history = BTreeMap::new();
        for _ in 0..(HISTORY + 10) {
            update_history(&doc, &mut history);
        }
        assert_eq!(history["gshare"].len(), HISTORY);
        assert_eq!(history["gshare"].last(), Some(&5.0));
        // With history present the trend column carries sparkline glyphs.
        let frame = render_frame(&doc, &history);
        assert!(frame.contains('▁'), "{frame}");
    }

    #[test]
    fn sampled_and_shutdown_flags_surface_in_header() {
        let mut doc = sample_doc();
        if let Some(obj) = doc.as_object_mut() {
            obj.insert("sampling", json!({"simulated_fraction": 0.25}));
            obj.insert("shutdown_requested", Value::from(true));
            obj.insert("dropped_events", Value::from(9));
        }
        let frame = render_frame(&doc, &BTreeMap::new());
        assert!(frame.contains("sampled 25%"));
        assert!(frame.contains("SHUTDOWN REQUESTED"));
        assert!(frame.contains("9 events dropped"));
    }

    #[test]
    fn empty_board_renders_placeholder() {
        let doc = json!({
            "schema_version": 1, "kind": "run", "elapsed_s": 0.1,
            "pipeline": {"simulate": {"instructions": 0}},
            "sweep": {"predictors": []},
        });
        let frame = render_frame(&doc, &BTreeMap::new());
        assert!(frame.contains("no predictor status published"));
    }
}
