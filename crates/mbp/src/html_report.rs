//! `mbpsim report`: renders a metrics/run/compare/sweep JSON document into a
//! single self-contained HTML page — inline CSS and inline SVG sparklines,
//! no external assets or scripts — so a run's time-series and table-health
//! probes can be eyeballed without any tooling beyond a browser.
//!
//! The renderer is deliberately permissive about document shape: it accepts
//! the output of `mbpsim run`/`compare`/`sweep` as well as the flat
//! `--metrics-out` schema, looking for a `timeseries` object either at the
//! top level or under `metrics`, and for probe reports under
//! `introspection`.

use mbp_json::Value;

static NULL: Value = Value::Null;

/// Null-tolerant field access: `Value::index` panics on a missing key, but
/// report documents legitimately omit sections.
fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key).unwrap_or(&NULL)
}

/// Escapes text for safe inclusion in HTML body or attribute context.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one numeric series as an inline SVG sparkline polyline. Returns
/// an empty string for series with no points.
fn sparkline(values: &[f64], width: u32, height: u32) -> String {
    if values.is_empty() {
        return String::new();
    }
    let normalized = crate::spark::normalize(values);
    let (w, h) = (width as f64, height as f64);
    let pad = 2.0;
    let step = if values.len() > 1 {
        (w - 2.0 * pad) / (values.len() - 1) as f64
    } else {
        0.0
    };
    let points: Vec<String> = normalized
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let x = pad + i as f64 * step;
            let y = pad + (h - 2.0 * pad) * (1.0 - n);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    format!(
        "<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" height=\"{height}\" \
         role=\"img\"><polyline fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"1.5\" \
         points=\"{}\"/></svg>",
        points.join(" ")
    )
}

/// Formats a JSON scalar for display; objects/arrays render as a count.
fn scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Array(a) => format!("[{} items]", a.len()),
        Value::Object(o) => format!("{{{} keys}}", o.keys().count()),
        other => esc(&other.to_string()),
    }
}

/// A two-column key/value table over an object's entries.
fn kv_table(obj: &Value) -> String {
    let Some(map) = obj.as_object() else {
        return String::new();
    };
    let mut out = String::from("<table>");
    for (key, value) in map.iter() {
        out.push_str(&format!(
            "<tr><th>{}</th><td>{}</td></tr>",
            esc(key),
            scalar(value)
        ));
    }
    out.push_str("</table>");
    out
}

/// Extracts one per-window field as an f64 series.
fn window_series(windows: &[Value], name: &str) -> Vec<f64> {
    windows
        .iter()
        .filter_map(|w| field(w, name).as_f64())
        .collect()
}

/// Renders the `metrics.timeseries` object: a summary line plus one labelled
/// sparkline per headline per-window metric.
fn timeseries_section(ts: &Value) -> String {
    let mut out = String::from("<section><h2>Time series</h2>");
    let warmup = match field(ts, "warmup_end_window").as_u64() {
        Some(w) => format!("window {w}"),
        None => "not detected".to_string(),
    };
    out.push_str(&format!(
        "<p>{} windows of {} instructions — warmup ends at {}, \
         phase-change score {}, {} phase changes.</p>",
        scalar(field(ts, "num_windows")),
        scalar(field(ts, "window_size")),
        esc(&warmup),
        scalar(field(ts, "phase_change_score")),
        scalar(field(ts, "num_phase_changes")),
    ));
    if let Some(windows) = field(ts, "windows").as_array() {
        out.push_str("<table class=\"spark\">");
        for (label, name) in [
            ("MPKI", "mpki"),
            ("Accuracy", "accuracy"),
            ("Taken rate", "taken_rate"),
            ("Unique branches", "unique_branches"),
        ] {
            let series = window_series(windows, name);
            let (lo, hi) = series
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let range = if series.is_empty() {
                "-".to_string()
            } else {
                format!("{lo:.4} … {hi:.4}")
            };
            out.push_str(&format!(
                "<tr><th>{label}</th><td>{}</td><td>{}</td></tr>",
                sparkline(&series, 360, 48),
                esc(&range),
            ));
        }
        out.push_str("</table>");
    }
    out.push_str("</section>");
    out
}

/// Renders one probe array as a table-health report.
fn probes_table(probes: &[Value]) -> String {
    let mut out = String::from(
        "<table><tr><th>table</th><th>entries</th><th>occupied</th>\
         <th>occupancy</th><th>saturated</th><th>useful density</th>\
         <th>histogram</th></tr>",
    );
    for probe in probes {
        let hist = field(probe, "counter_histogram")
            .as_object()
            .map(|m| {
                m.iter()
                    .map(|(k, v)| format!("{k}:{}", scalar(v)))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        let occupancy = field(probe, "occupancy")
            .as_f64()
            .map(|o| format!("{:.1}%", o * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let density = field(probe, "useful_density")
            .as_f64()
            .map(|d| format!("{d:.4}"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td class=\"hist\">{}</td></tr>",
            scalar(field(probe, "name")),
            scalar(field(probe, "entries")),
            scalar(field(probe, "occupied")),
            esc(&occupancy),
            scalar(field(probe, "saturated")),
            esc(&density),
            esc(&hist),
        ));
    }
    out.push_str("</table>");
    out
}

/// Renders the `introspection` section in any of its shapes: a run's
/// `{probes: [...]}`, a comparison's `{predictor_0: {probes}, ...}`, or a
/// bare probe array.
fn introspection_section(intro: &Value) -> String {
    let mut out = String::from("<section><h2>Predictor introspection</h2>");
    if let Some(probes) = field(intro, "probes").as_array() {
        out.push_str(&probes_table(probes));
    } else if let Some(probes) = intro.as_array() {
        out.push_str(&probes_table(probes));
    } else if let Some(map) = intro.as_object() {
        for (key, value) in map.iter() {
            if let Some(probes) = field(value, "probes").as_array() {
                out.push_str(&format!("<h3>{}</h3>", esc(key)));
                out.push_str(&probes_table(probes));
            }
        }
    }
    out.push_str("</section>");
    out
}

/// Renders the scalar leaves of a `metrics` object (the timeseries child,
/// rendered separately, is skipped).
fn metrics_section(metrics: &Value) -> String {
    let Some(map) = metrics.as_object() else {
        return String::new();
    };
    let mut out = String::from("<section><h2>Metrics</h2><table>");
    for (key, value) in map.iter() {
        if key == "timeseries" {
            continue;
        }
        out.push_str(&format!(
            "<tr><th>{}</th><td>{}</td></tr>",
            esc(key),
            scalar(value)
        ));
    }
    out.push_str("</table></section>");
    out
}

/// Renders the `forensics` section: attribution summary, the top-K
/// hard-to-predict branch table and the misprediction coverage curve.
fn forensics_section(f: &Value) -> String {
    let mut out = String::from("<section><h2>Misprediction forensics</h2>");
    out.push_str(&format!(
        "<p>{} conditional branches, {} mispredictions — {} branches \
         tracked (capacity {}, {} evictions), {} classified \
         hard-to-predict.</p>",
        scalar(field(f, "conditional_branches")),
        scalar(field(f, "mispredictions")),
        scalar(field(f, "tracked_branches")),
        scalar(field(f, "capacity")),
        scalar(field(f, "evictions")),
        scalar(field(f, "h2p_branches")),
    ));
    if let Some(top) = field(f, "top").as_array() {
        out.push_str(
            "<table><tr><th>branch</th><th>occurrences</th>\
             <th>mispredictions</th><th>miss rate</th><th>entropy</th>\
             <th>transitions</th><th>MPKI</th><th>H2P</th>\
             <th>attribution</th></tr>",
        );
        for b in top {
            let ip = field(b, "ip")
                .as_u64()
                .map(|ip| format!("{ip:#x}"))
                .unwrap_or_else(|| "-".to_string());
            let rate = field(b, "misprediction_rate")
                .as_f64()
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "-".to_string());
            let attribution = field(b, "attribution")
                .as_object()
                .map(|m| {
                    m.iter()
                        .map(|(k, v)| format!("{k}:{}", scalar(v)))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td class=\"hist\">{}</td></tr>",
                esc(&ip),
                scalar(field(b, "occurrences")),
                scalar(field(b, "mispredictions")),
                esc(&rate),
                scalar(field(b, "entropy_class")),
                scalar(field(b, "transition_class")),
                scalar(field(b, "mpki")),
                scalar(field(b, "h2p")),
                esc(&attribution),
            ));
        }
        out.push_str("</table>");
    }
    if let Some(coverage) = field(f, "coverage").as_array() {
        if let Some(last) = coverage.last() {
            out.push_str(&format!(
                "<p>Coverage: the top {} tracked branches explain {:.1}% of \
                 all mispredictions.</p>",
                scalar(field(last, "top_n")),
                field(last, "fraction").as_f64().unwrap_or(0.0) * 100.0,
            ));
        }
        let fractions: Vec<f64> = coverage
            .iter()
            .filter_map(|c| field(c, "fraction").as_f64())
            .collect();
        out.push_str(&sparkline(&fractions, 360, 48));
    }
    out.push_str("</section>");
    out
}

/// Renders the sections of one run/compare document (or a flat metrics
/// document) into `out`.
fn render_doc_sections(doc: &Value, out: &mut String) {
    let metadata = field(doc, "metadata");
    if !metadata.is_null() {
        out.push_str("<section><h2>Metadata</h2>");
        out.push_str(&kv_table(metadata));
        out.push_str("</section>");
    }
    let metrics = field(doc, "metrics");
    if !metrics.is_null() {
        out.push_str(&metrics_section(metrics));
    }
    let ts = match field(metrics, "timeseries") {
        Value::Null => field(doc, "timeseries"),
        nested => nested,
    };
    if !ts.is_null() {
        out.push_str(&timeseries_section(ts));
    }
    let stats = field(doc, "predictor_statistics");
    if !stats.is_null() {
        out.push_str("<section><h2>Predictor statistics</h2>");
        out.push_str(&kv_table(stats));
        out.push_str("</section>");
    }
    let forensics = field(doc, "forensics");
    if !forensics.is_null() {
        out.push_str(&forensics_section(forensics));
    }
    let intro = field(doc, "introspection");
    if !intro.is_null() {
        out.push_str(&introspection_section(intro));
    }
}

/// The predictor display name of a run document, when it has one.
fn predictor_name(doc: &Value) -> Option<&str> {
    field(field(field(doc, "metadata"), "predictor"), "name").as_str()
}

/// Renders a full mbpsim JSON document as one self-contained HTML page.
pub fn render_html(doc: &Value) -> String {
    let title = predictor_name(doc)
        .map(|n| format!("mbpsim report — {n}"))
        .unwrap_or_else(|| "mbpsim report".to_string());
    let mut out = String::from("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    out.push_str(&format!("<title>{}</title>", esc(&title)));
    out.push_str(
        "<style>\
         body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:64rem;\
         padding:0 1rem;color:#1a1a2e}\
         h1{font-size:1.4rem}h2{font-size:1.1rem;border-bottom:1px solid #ccd;\
         padding-bottom:.2rem;margin-top:2rem}h3{font-size:1rem}\
         table{border-collapse:collapse;margin:.5rem 0}\
         th,td{border:1px solid #ccd;padding:.25rem .6rem;text-align:left;\
         font-variant-numeric:tabular-nums}\
         th{background:#f0f2f8;font-weight:600}\
         .spark td{vertical-align:middle}\
         .hist{font-size:11px;color:#445}\
         </style></head><body>",
    );
    out.push_str(&format!("<h1>{}</h1>", esc(&title)));

    if let Some(results) = field(doc, "results").as_array() {
        // A sweep document: metadata and leaderboard summary, then one
        // block per result.
        let metadata = field(doc, "metadata");
        if !metadata.is_null() {
            out.push_str("<section><h2>Metadata</h2>");
            out.push_str(&kv_table(metadata));
            out.push_str("</section>");
        }
        if let Some(entries) = field(doc, "leaderboard").as_array() {
            out.push_str("<section><h2>Leaderboard</h2>");
            out.push_str(
                "<table><tr><th>rank</th><th>predictor</th><th>mpki</th>\
                 <th>accuracy</th></tr>",
            );
            for e in entries {
                out.push_str(&format!(
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    scalar(field(e, "rank")),
                    scalar(field(e, "predictor")),
                    scalar(field(e, "mpki")),
                    scalar(field(e, "accuracy")),
                ));
            }
            out.push_str("</table></section>");
        }
        for result in results {
            let name = predictor_name(result).unwrap_or("predictor");
            out.push_str(&format!("<h2>{}</h2>", esc(name)));
            render_doc_sections(result, &mut out);
        }
    } else {
        render_doc_sections(doc, &mut out);
    }

    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;

    fn run_doc() -> Value {
        json!({
            "metadata": { "predictor": { "name": "MBPlib GShare" }, "trace": "t.sbbt" },
            "metrics": {
                "mpki": 7.5,
                "accuracy": 0.93,
                "timeseries": {
                    "window_size": 100,
                    "num_windows": 3,
                    "warmup_end_window": 1,
                    "phase_change_score": 0.2,
                    "num_phase_changes": 1,
                    "windows": [
                        { "mpki": 12.0, "accuracy": 0.8, "taken_rate": 0.5, "unique_branches": 4 },
                        { "mpki": 8.0, "accuracy": 0.9, "taken_rate": 0.5, "unique_branches": 4 },
                        { "mpki": 7.0, "accuracy": 0.92, "taken_rate": 0.6, "unique_branches": 5 },
                    ],
                },
            },
            "predictor_statistics": {},
            "introspection": {
                "probes": [{
                    "name": "gshare", "entries": 16, "occupied": 7,
                    "occupancy": 0.4375, "saturated": 2,
                    "counter_histogram": { "-2": 1, "-1": 2, "0": 9, "1": 4 },
                }],
            },
        })
    }

    #[test]
    fn run_report_is_well_formed_and_self_contained() {
        let html = render_html(&run_doc());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.trim_end().ends_with("</html>"));
        assert!(html.contains("<svg"), "sparklines rendered");
        assert!(html.contains("MBPlib GShare"));
        assert!(html.contains("gshare"), "probe table rendered");
        assert!(!html.contains("<script"), "no scripts");
        assert!(
            !html.contains("http://") && !html.contains("https://"),
            "no external assets"
        );
    }

    #[test]
    fn timeseries_found_at_top_level_too() {
        // The flat --metrics-out schema keeps timeseries at the top level.
        let doc = json!({
            "simulate": { "records": 10 },
            "timeseries": field(field(&run_doc(), "metrics"), "timeseries").clone(),
        });
        let html = render_html(&doc);
        assert!(html.contains("<svg"));
        assert!(html.contains("Time series"));
    }

    #[test]
    fn sweep_report_renders_every_result() {
        let doc = json!({
            "leaderboard": [{ "rank": 1, "predictor": "gshare", "mpki": 7.5, "accuracy": 0.93 }],
            "results": [run_doc()],
        });
        let html = render_html(&doc);
        assert!(html.contains("Leaderboard"));
        assert!(html.contains("MBPlib GShare"));
        assert!(html.trim_end().ends_with("</html>"));
    }

    #[test]
    fn forensics_section_renders_top_table_and_coverage() {
        let mut doc = run_doc();
        if let Some(obj) = doc.as_object_mut() {
            obj.insert(
                "forensics",
                json!({
                    "schema_version": 1,
                    "capacity": 4096,
                    "tracked_branches": 2,
                    "evictions": 0,
                    "conditional_branches": 1000,
                    "mispredictions": 100,
                    "h2p_branches": 1,
                    "top": [{
                        "ip": 0x4a0u64, "occurrences": 500, "mispredictions": 80,
                        "misprediction_rate": 0.16, "taken_rate": 0.5,
                        "direction_entropy": 1.0, "entropy_class": "unbiased",
                        "transition_rate": 0.5, "transition_class": "irregular",
                        "max_streak": 9, "max_misprediction_burst": 4,
                        "misprediction_bursts": 12, "mpki": 8.0, "h2p": true,
                        "attribution": { "chooser_wrong": 30, "both_wrong": 50 },
                    }],
                    "coverage": [{ "top_n": 1, "mispredictions": 80, "fraction": 0.8 }],
                }),
            );
        }
        let html = render_html(&doc);
        assert!(html.contains("Misprediction forensics"));
        assert!(html.contains("0x4a0"), "hex branch address");
        assert!(html.contains("16.0%"), "misprediction rate");
        assert!(html.contains("chooser_wrong:30"), "attribution breakdown");
        assert!(
            html.contains("top 1 tracked branches explain 80.0%"),
            "coverage line"
        );
    }

    #[test]
    fn html_is_escaped() {
        let mut doc = run_doc();
        if let Some(meta) = doc
            .as_object_mut()
            .and_then(|o| o.get_mut("metadata"))
            .and_then(Value::as_object_mut)
            .and_then(|m| m.get_mut("predictor"))
            .and_then(Value::as_object_mut)
        {
            meta.insert("name", "<evil>&\"name\"");
        }
        let html = render_html(&doc);
        assert!(!html.contains("<evil>"));
        assert!(html.contains("&lt;evil&gt;"));
    }

    #[test]
    fn sparkline_handles_degenerate_series() {
        assert_eq!(sparkline(&[], 100, 20), "");
        assert!(sparkline(&[1.0], 100, 20).contains("<svg"));
        assert!(sparkline(&[2.0, 2.0, 2.0], 100, 20).contains("polyline"));
    }
}
