//! The live telemetry plane: a std-only HTTP/1.1 server exposing the
//! process's observability surfaces while a run or sweep is in flight.
//!
//! Endpoints:
//!
//! | Path        | Content                                                 |
//! |-------------|---------------------------------------------------------|
//! | `/metrics`  | OpenMetrics text: pipeline domains + global registry    |
//! | `/snapshot` | Versioned JSON: pipeline, per-predictor status, config  |
//! | `/healthz`  | `ok` — liveness only                                    |
//!
//! The server is deliberately minimal: one accept thread, one connection
//! at a time, `Connection: close` on every response, no keep-alive, no
//! TLS, no external dependencies — the same spirit as the checkpoint and
//! shutdown machinery. Scrape cost lands entirely on the serving thread
//! (snapshots of relaxed atomics plus string formatting); the simulation
//! hot path is never locked or signalled. Listening on port 0 picks an
//! ephemeral port; [`TelemetryServer::local_addr`] reports the binding.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mbp_core::SweepStatusBoard;
use mbp_json::{json, Value};

/// Version of the `/snapshot` JSON schema.
///
/// Additive rule: new fields may appear within a version (consumers must
/// ignore unknown keys); the version is bumped only when an existing
/// field changes shape or meaning, or when a new surface is significant
/// enough that consumers should gate on it. v2 added the forensic
/// surfaces: per-predictor `worst_branch` (`null` until the first
/// misprediction, then `{"ip", "mispredictions"}`).
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 2;

/// Everything the snapshot endpoint reports beyond the pipeline statics:
/// what kind of command is running, its resilience configuration, and the
/// live per-predictor board.
#[derive(Clone, Default)]
pub struct TelemetryState {
    /// `"run"` or `"sweep"`.
    pub kind: &'static str,
    /// Per-predictor status board (shared with the sweep workers).
    pub board: Option<Arc<SweepStatusBoard>>,
    /// Per-predictor deadline, seconds.
    pub deadline_secs: Option<f64>,
    /// Checkpoint file path.
    pub checkpoint: Option<String>,
    /// Whether the sweep resumed from its checkpoint.
    pub resume: bool,
    /// Sampling-plan metadata (doc hash, planned fraction, …).
    pub sampling: Option<Value>,
    /// Polled for the `shutdown_requested` field; `None` reports `false`.
    pub shutdown: Option<fn() -> bool>,
}

/// Builds the versioned `/snapshot` document from the live surfaces.
pub fn snapshot_json(state: &TelemetryState, elapsed_s: f64, scrapes: u64) -> Value {
    let pipeline = crate::report::pipeline_json(&mbp_stats::pipeline().snapshot());
    let predictors: Vec<Value> = state
        .board
        .as_ref()
        .map(|board| {
            board
                .snapshot()
                .iter()
                .map(|s| {
                    let worst = match s.worst_branch {
                        Some((ip, mispredictions)) => json!({
                            "ip": ip,
                            "mispredictions": mispredictions,
                        }),
                        None => Value::Null,
                    };
                    json!({
                        "name": s.name.as_str(),
                        "state": s.state.as_str(),
                        "epoch": s.epoch,
                        "instructions": s.instructions,
                        "conditional_branches": s.conditional_branches,
                        "mispredictions": s.mispredictions,
                        "mpki": s.mpki(),
                        "worst_branch": worst,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let mut doc = json!({
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "kind": state.kind,
        "elapsed_s": elapsed_s,
        "shutdown_requested": state.shutdown.map(|probe| probe()).unwrap_or(false),
        "dropped_events": mbp_stats::events::dropped_events(),
        "scrapes": scrapes,
        "pipeline": pipeline,
        "sweep": {
            "deadline_secs": state.deadline_secs,
            "checkpoint": state.checkpoint.clone(),
            "resume": state.resume,
            "predictors": predictors,
        },
    });
    if let Some(sampling) = &state.sampling {
        if let Some(obj) = doc.as_object_mut() {
            obj.insert("sampling", sampling.clone());
        }
    }
    doc
}

/// A running telemetry listener; create with [`TelemetryServer::start`],
/// stop with [`TelemetryServer::finish`].
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept thread.
    pub fn start(addr: &str, state: TelemetryState) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the thread can observe the stop flag
        // promptly without a connection ever arriving.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let state = Arc::new(state);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let scrapes = Arc::new(AtomicU64::new(0));
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Serve each connection on its own short-lived
                        // thread so a slow or stalled client (connection
                        // held open, bytes dribbled in) cannot wedge the
                        // accept loop — `/healthz` stays responsive. The
                        // per-connection read/write deadlines bound each
                        // thread's lifetime, so stragglers self-terminate
                        // even after the server stops accepting.
                        let state = Arc::clone(&state);
                        let scrapes = Arc::clone(&scrapes);
                        std::thread::spawn(move || {
                            let _ = serve_connection(stream, &state, &started, &scrapes);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        });
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains the listener: keeps serving for `hold` (so late scrapers can
    /// observe the final state), then stops the accept thread. A pending
    /// shutdown request cuts the hold short.
    pub fn finish(mut self, hold: Duration, shutdown: Option<fn() -> bool>) {
        let deadline = Instant::now() + hold;
        while Instant::now() < deadline {
            if shutdown.map(|probe| probe()).unwrap_or(false) {
                break;
            }
            std::thread::sleep(Duration::from_millis(20).min(hold));
        }
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Reads one HTTP/1.1 request, routes it, writes one response, closes.
fn serve_connection(
    stream: TcpStream,
    state: &TelemetryState,
    started: &Instant,
    scrapes: &AtomicU64,
) -> std::io::Result<()> {
    // The listener is non-blocking for prompt stop-flag checks; accepted
    // sockets may inherit that on some platforms, so reset it explicitly —
    // the deadlines below are what bound a slow client, not WouldBlock.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; the endpoints take no request body.
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = reader.into_inner();
    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n",
        );
    }
    match path {
        "/metrics" => {
            let n = scrapes.fetch_add(1, Ordering::Relaxed) + 1;
            mbp_stats::events::instant(mbp_stats::events::EventName::TelemetryScrape, n);
            let h2p: Vec<mbp_stats::H2pRow> = state
                .board
                .as_ref()
                .map(|board| {
                    board
                        .snapshot()
                        .iter()
                        .map(|s| {
                            let (worst_ip, worst_mispredictions) = match s.worst_branch {
                                Some((ip, n)) => (Some(ip), n),
                                None => (None, 0),
                            };
                            mbp_stats::H2pRow {
                                predictor: s.name.clone(),
                                worst_ip,
                                worst_mispredictions,
                            }
                        })
                        .collect()
                })
                .unwrap_or_default();
            let body = mbp_stats::render_openmetrics(
                &mbp_stats::registry().snapshot(),
                &mbp_stats::pipeline().snapshot(),
                mbp_stats::events::dropped_events(),
                &h2p,
            );
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        "/snapshot" => {
            let n = scrapes.fetch_add(1, Ordering::Relaxed) + 1;
            mbp_stats::events::instant(mbp_stats::events::EventName::TelemetryScrape, n);
            let body = snapshot_json(state, started.elapsed().as_secs_f64(), n).to_pretty_string();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Minimal HTTP GET against a telemetry endpoint, used by `mbpsim top`
/// (and tests): returns the response body, or an error on non-200.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(std::io::Error::other(format!(
            "unexpected status: {status_line}"
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_all_three_endpoints_then_drains() {
        let state = TelemetryState {
            kind: "run",
            ..TelemetryState::default()
        };
        let server = TelemetryServer::start("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);

        let health = http_get(&addr, "/healthz", t).unwrap();
        assert_eq!(health, "ok\n");

        let metrics = http_get(&addr, "/metrics", t).unwrap();
        assert!(metrics.contains("# TYPE mbp_sim_instructions counter"));
        assert!(metrics.contains("mbp_events_dropped_total"));

        let snapshot = http_get(&addr, "/snapshot", t).unwrap();
        let doc: Value = snapshot.parse().unwrap();
        assert_eq!(doc["schema_version"], Value::from(2));
        assert_eq!(doc["kind"], Value::from("run"));
        assert!(doc["pipeline"]["simulate"].as_object().is_some());

        assert!(
            http_get(&addr, "/nope", t).is_err(),
            "404 surfaces as error"
        );
        server.finish(Duration::ZERO, None);
    }

    #[test]
    fn snapshot_reports_board_states() {
        use mbp_core::{PredictorState, SweepStatusBoard};
        let board = Arc::new(SweepStatusBoard::new(["gshare", "tage"]));
        board.set_state(0, PredictorState::Running);
        board.set_totals(1, 2_000, 4);
        board.set_state(1, PredictorState::Settled);
        board.set_worst_branch(1, 0x400, 3);
        let state = TelemetryState {
            kind: "sweep",
            board: Some(board),
            deadline_secs: Some(30.0),
            checkpoint: Some("sweep.ckpt.jsonl".to_string()),
            resume: true,
            ..TelemetryState::default()
        };
        let doc = snapshot_json(&state, 1.5, 3);
        assert_eq!(doc["sweep"]["resume"], Value::from(true));
        assert_eq!(doc["sweep"]["deadline_secs"], Value::from(30.0));
        let preds = doc["sweep"]["predictors"].as_array().unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0]["state"], Value::from("running"));
        assert!(
            preds[0]["worst_branch"].is_null(),
            "no misprediction yet => null"
        );
        assert_eq!(preds[1]["state"], Value::from("settled"));
        assert_eq!(preds[1]["mpki"], Value::from(2.0));
        assert_eq!(preds[1]["worst_branch"]["ip"], Value::from(0x400u64));
        assert_eq!(
            preds[1]["worst_branch"]["mispredictions"],
            Value::from(3u64)
        );
        assert_eq!(doc["scrapes"], Value::from(3));
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        // Satellite: the /snapshot schema must deserialize and re-serialize
        // to the exact bytes served, so downstream consumers can archive
        // and diff snapshots without a canonicalization step.
        use mbp_core::SweepStatusBoard;
        let board = Arc::new(SweepStatusBoard::new(["bimodal"]));
        board.set_totals(0, 10_000, 25);
        board.set_worst_branch(0, 0x88, 9);
        let state = TelemetryState {
            kind: "sweep",
            board: Some(board),
            ..TelemetryState::default()
        };
        let served = snapshot_json(&state, 0.25, 1).to_pretty_string();
        let reparsed: Value = served.parse().unwrap();
        assert_eq!(
            reparsed.to_pretty_string(),
            served,
            "snapshot JSON must round-trip byte-identically"
        );
    }

    #[test]
    fn dribbling_client_cannot_wedge_healthz() {
        // Satellite: a client that opens a connection and trickles bytes
        // without ever completing a request must not block other scrapers —
        // each connection is served on its own deadline-bounded thread.
        let server = TelemetryServer::start("127.0.0.1:0", TelemetryState::default()).unwrap();
        let addr = server.local_addr();

        // Open the hostile connection first and keep it alive, dribbling.
        let mut dribbler = TcpStream::connect(addr).unwrap();
        dribbler.write_all(b"G").unwrap();
        dribbler.flush().unwrap();
        // Give the accept loop time to pick it up before probing health.
        std::thread::sleep(Duration::from_millis(100));

        let t0 = Instant::now();
        let health = http_get(&addr.to_string(), "/healthz", Duration::from_secs(1)).unwrap();
        assert_eq!(health, "ok\n");
        assert!(
            t0.elapsed() < Duration::from_millis(900),
            "healthz blocked behind a stalled connection: {:?}",
            t0.elapsed()
        );

        drop(dribbler);
        server.finish(Duration::ZERO, None);
    }
}
