//! MBPlib: Modular Branch Prediction Library — Rust reproduction.
//!
//! This umbrella crate re-exports the whole suite under the module layout
//! described in §III of the paper:
//!
//! * [`sim`] — the *simulation library*: the [`Predictor`](sim::Predictor)
//!   interface, the standard and comparison simulators, and JSON results.
//! * [`utils`] — the *utilities library*: saturating counters, history
//!   registers, folded histories, hashes.
//! * [`examples`] — the *examples library*: the predictor collection of
//!   Table II plus target predictors.
//! * [`trace`] — the SBBT/BT9/ChampSim trace formats and translators.
//! * [`compress`] — the MGZ/MZST codecs used to store traces.
//! * [`workloads`] — synthetic trace suites standing in for CBP5/DPC3.
//! * [`baselines`] — the two simulators MBPlib is evaluated against.
//!
//! # Quickstart
//!
//! ```
//! use mbp::examples::Gshare;
//! use mbp::sim::{simulate, SimConfig};
//! use mbp::workloads::{ProgramParams, TraceGenerator};
//!
//! let mut trace = TraceGenerator::from_params(&ProgramParams::mobile(), 1)
//!     .with_name("MOBILE-demo");
//! let mut gshare = Gshare::new(25, 18);
//! let mut cfg = SimConfig::default();
//! cfg.max_instructions = Some(200_000);
//! let result = simulate(&mut trace, &mut gshare, &cfg)?;
//! println!("{:#}", result.to_json());
//! assert!(result.metrics.mpki < 60.0);
//! # Ok::<(), mbp::trace::TraceError>(())
//! ```

/// The simulation library (re-export of `mbp-core`).
pub mod sim {
    pub use mbp_core::*;
}

/// The utilities library (re-export of `mbp-utils`).
pub mod utils {
    pub use mbp_utils::*;
}

/// The examples library (re-export of `mbp-predictors`).
pub mod examples {
    pub use mbp_predictors::*;
}

/// Trace formats and translators (re-export of `mbp-trace`).
pub mod trace {
    pub use mbp_trace::*;
}

/// Compression codecs (re-export of `mbp-compress`).
pub mod compress {
    pub use mbp_compress::*;
}

/// JSON values (re-export of `mbp-json`).
pub mod json {
    pub use mbp_json::*;
}

/// Synthetic workload suites (re-export of `mbp-workloads`).
pub mod workloads {
    pub use mbp_workloads::*;
}

/// Observability primitives and pipeline metrics (re-export of `mbp-stats`).
pub mod stats {
    pub use mbp_stats::*;
}

pub mod diff;
pub mod events_export;
pub mod html_report;
pub mod progress;
pub mod report;
pub mod shutdown;
pub mod spark;
pub mod telemetry;
pub mod top;

/// The baseline simulators used in the paper's evaluation.
pub mod baselines {
    /// The CBP5-framework-style baseline.
    pub mod cbp5 {
        pub use cbp5_sim::*;
    }
    /// The ChampSim-like cycle-level baseline.
    pub mod champsim {
        pub use champsim_lite::*;
    }
}
