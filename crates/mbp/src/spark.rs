//! Shared sparkline math: min/max normalization of a numeric series, used
//! by the HTML report's SVG sparklines and the `mbpsim top` dashboard's
//! text sparklines, so both surfaces scale a series identically.

/// Block glyphs from lowest to highest, the classic eight-level sparkline.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Normalizes each value into `[0, 1]` against the series min/max. A flat
/// (or single-point) series maps to all zeros, matching the SVG baseline
/// behaviour; an empty series returns no points.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if (hi - lo).abs() < 1e-12 {
        1.0
    } else {
        hi - lo
    };
    values.iter().map(|&v| (v - lo) / span).collect()
}

/// Renders a series as a fixed-width run of block glyphs, keeping the most
/// recent `width` points. Returns an empty string for an empty series.
pub fn text_sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let tail = &values[values.len().saturating_sub(width)..];
    normalize(tail)
        .into_iter()
        .map(|n| {
            let idx = (n * (BLOCKS.len() - 1) as f64).round() as usize;
            BLOCKS[idx.min(BLOCKS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_spans_zero_to_one() {
        let n = normalize(&[2.0, 4.0, 3.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn degenerate_series_are_flat_or_empty() {
        assert!(normalize(&[]).is_empty());
        assert_eq!(normalize(&[5.0]), vec![0.0]);
        assert_eq!(normalize(&[2.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn text_sparkline_uses_extreme_glyphs() {
        let s = text_sparkline(&[0.0, 1.0], 8);
        assert_eq!(s.chars().count(), 2);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(text_sparkline(&[], 8), "");
    }

    #[test]
    fn text_sparkline_keeps_the_most_recent_window() {
        let values: Vec<f64> = (0..20).map(f64::from).collect();
        let s = text_sparkline(&values, 5);
        assert_eq!(s.chars().count(), 5);
        // The window [15..20) still normalizes to its own min/max.
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }
}
