//! Live progress line for `mbpsim run`/`sweep`: records/s, ETA and worker
//! busy share on stderr, refreshed at most four times a second.
//!
//! The reporter is a watcher, not a participant: a background thread
//! samples the process-wide [`mbp_stats::pipeline`] aggregates the
//! simulation is already maintaining, so the hot path pays nothing for the
//! display. It stays silent when stderr is not a terminal (fleet drivers,
//! CI) or when `--quiet` is passed, and erases itself before the final JSON
//! is printed.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Minimum interval between repaints (4 Hz ceiling).
const REFRESH: Duration = Duration::from_millis(250);

/// Formats one progress line from rate/completion estimates.
///
/// Pure so the rendering is unit-testable; any component that cannot be
/// estimated yet (no total known, no workers, no sampling plan) is simply
/// omitted. `sampled` carries a phase-sampled sweep's state: the planned
/// simulated fraction and the representative slices finished so far.
pub fn format_progress_line(
    records_per_s: f64,
    done_fraction: Option<f64>,
    eta_s: Option<f64>,
    busy_fraction: Option<f64>,
    sampled: Option<(f64, u64)>,
) -> String {
    let mut parts = vec![format!("{} records/s", rate(records_per_s))];
    if let Some(done) = done_fraction {
        parts.push(format!("{:.0}% done", (done.clamp(0.0, 1.0)) * 100.0));
    }
    if let Some(eta) = eta_s {
        parts.push(format!("eta {}", duration(eta)));
    }
    if let Some(busy) = busy_fraction {
        parts.push(format!(
            "workers {:.0}% busy",
            (busy.clamp(0.0, 1.0)) * 100.0
        ));
    }
    if let Some((fraction, slices)) = sampled {
        parts.push(format!(
            "sampled {:.0}% (slice {slices})",
            (fraction.clamp(0.0, 1.0)) * 100.0
        ));
    }
    parts.join(" | ")
}

/// Prefixes a rendered progress line with its mode label, when one is set.
fn labeled_line(label: Option<&'static str>, line: String) -> String {
    match label {
        Some(label) => format!("{label} | {line}"),
        None => line,
    }
}

fn rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

fn duration(s: f64) -> String {
    if s >= 90.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// A running progress reporter; create with [`Progress::start`], stop with
/// [`Progress::finish`].
pub struct Progress {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    /// Starts the reporter thread.
    ///
    /// `total_instructions` is the expected instruction total of the whole
    /// command (for a sweep: per-predictor instructions × predictors), used
    /// for the completion percentage and ETA; pass `None` when unknown.
    /// `sampled_fraction` is the sampling plan's planned simulated fraction
    /// when `--phases` is active; the slice counter comes from the pipeline
    /// statics. Returns an inert handle — no thread, no output — when
    /// `quiet` is set or stderr is not a terminal.
    pub fn start(
        total_instructions: Option<u64>,
        sampled_fraction: Option<f64>,
        quiet: bool,
    ) -> Self {
        Self::start_labeled(None, total_instructions, sampled_fraction, quiet)
    }

    /// [`Progress::start`] with a leading mode label on every repaint, so a
    /// forensic `explain` pass is distinguishable from a plain run at a
    /// glance.
    pub fn start_labeled(
        label: Option<&'static str>,
        total_instructions: Option<u64>,
        sampled_fraction: Option<f64>,
        quiet: bool,
    ) -> Self {
        if quiet || !std::io::stderr().is_terminal() {
            return Self {
                stop: Arc::new(AtomicBool::new(true)),
                handle: None,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let base = mbp_stats::pipeline().snapshot();
            let mut painted = false;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(REFRESH);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let snap = mbp_stats::pipeline().snapshot();
                let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                let records = snap.sim_records.saturating_sub(base.sim_records);
                let instructions = snap.sim_instructions.saturating_sub(base.sim_instructions);
                let records_per_s = records as f64 / elapsed;
                let (done, eta) = match total_instructions {
                    Some(total) if total > 0 && instructions > 0 => {
                        let done = (instructions as f64 / total as f64).min(1.0);
                        let instr_per_s = instructions as f64 / elapsed;
                        let remaining = total.saturating_sub(instructions) as f64;
                        (Some(done), Some(remaining / instr_per_s))
                    }
                    _ => (None, None),
                };
                let workers = snap.sweep_workers.saturating_sub(base.sweep_workers);
                let busy = (workers > 0).then(|| {
                    let busy_s =
                        snap.sweep_worker_busy.seconds() - base.sweep_worker_busy.seconds();
                    busy_s / (elapsed * workers as f64)
                });
                let sampled = sampled_fraction.map(|fraction| {
                    (
                        fraction,
                        snap.sweep_sampled_slices
                            .saturating_sub(base.sweep_sampled_slices),
                    )
                });
                let line = labeled_line(
                    label,
                    format_progress_line(records_per_s, done, eta, busy, sampled),
                );
                // \r + erase-to-end repaints in place without flicker.
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r{line}\x1b[K");
                let _ = err.flush();
                painted = true;
            }
            if painted {
                let mut err = std::io::stderr().lock();
                let _ = write!(err, "\r\x1b[K");
                let _ = err.flush();
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and erases the line.
    pub fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_contains_every_estimable_component() {
        let line = format_progress_line(8_123_456.0, Some(0.45), Some(3.2), Some(0.93), None);
        assert_eq!(
            line,
            "8.1M records/s | 45% done | eta 3.2s | workers 93% busy"
        );
    }

    #[test]
    fn unknown_components_are_omitted() {
        let line = format_progress_line(512.0, None, None, None, None);
        assert_eq!(line, "512 records/s");
    }

    #[test]
    fn long_etas_use_minutes() {
        let line = format_progress_line(1_000.0, Some(0.01), Some(154.0), None, None);
        assert!(line.contains("eta 2m34s"), "{line}");
    }

    #[test]
    fn fractions_are_clamped() {
        let line = format_progress_line(0.0, Some(1.7), None, Some(-0.2), Some((1.3, 0)));
        assert!(line.contains("100% done"), "{line}");
        assert!(line.contains("workers 0% busy"), "{line}");
        assert!(line.contains("sampled 100%"), "{line}");
    }

    #[test]
    fn sampled_state_appends_fraction_and_slice() {
        let line = format_progress_line(1_000.0, Some(0.5), None, Some(0.8), Some((0.25, 12)));
        assert_eq!(
            line,
            "1.0k records/s | 50% done | workers 80% busy | sampled 25% (slice 12)"
        );
    }

    #[test]
    fn label_prefixes_the_line() {
        assert_eq!(
            labeled_line(Some("explain"), "512 records/s".to_string()),
            "explain | 512 records/s"
        );
        assert_eq!(labeled_line(None, "x".to_string()), "x");
    }

    #[test]
    fn quiet_progress_is_inert() {
        // In a test harness stderr is typically not a TTY either, but the
        // quiet flag must force inertness regardless of environment — with
        // or without sampling state.
        let p = Progress::start(Some(1_000_000), Some(0.3), true);
        assert!(p.handle.is_none());
        p.finish();
    }
}
