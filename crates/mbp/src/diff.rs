//! `mbpsim stats-diff`: section-by-section comparison of two `--metrics-out`
//! files, with regression thresholds so CI can gate on it.
//!
//! The metrics schema (see `DESIGN.md`) has fixed sections — `decode`,
//! `compress`, `simulate`, `sweep`, `generation`, plus the opt-in
//! `timeseries` and `introspection` sections — of numeric leaves. The
//! diff walks both documents in that order, flattens every numeric leaf to a
//! dotted path, and classifies each delta:
//!
//! * **time-like** metrics (`*time_s`, `*_busy_s`, fault counters) regress
//!   when they *grow* beyond the threshold;
//! * **rate-like** metrics (`*_per_second`) regress when they *shrink*
//!   beyond the threshold;
//! * everything else (counts, histogram buckets) is informational — it is
//!   reported as changed but never fails the gate, since a different
//!   workload legitimately moves every counter.
//!
//! A metric (or whole section) present in only one file is reported as
//! `added`/`removed` rather than treated as an error or a regression, so
//! baselines recorded before a schema extension keep diffing cleanly.
//!
//! [`DiffReport::render`] produces the stable text report pinned by the
//! golden-fixture test; [`DiffReport::has_regressions`] drives the nonzero
//! exit code.

use mbp_json::{Map, Value};

/// The fixed section order of the metrics schema.
pub const SECTIONS: [&str; 8] = [
    "decode",
    "compress",
    "simulate",
    "sweep",
    "generation",
    "timeseries",
    "introspection",
    "simpoint",
];

/// Tuning knobs for a diff run.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative change (percent) beyond which a directional metric counts
    /// as a regression or an improvement.
    pub threshold_pct: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self { threshold_pct: 5.0 }
    }
}

/// How a metric moved between the two files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Identical values (or both absent).
    Unchanged,
    /// Moved, but informational or within the threshold.
    Changed,
    /// A directional metric moved the good way beyond the threshold.
    Improvement,
    /// A directional metric moved the bad way beyond the threshold.
    Regression,
    /// Present only in the candidate file (e.g. a new schema section).
    Added,
    /// Present only in the baseline file.
    Removed,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Unchanged => "unchanged",
            Status::Changed => "changed",
            Status::Improvement => "improvement",
            Status::Regression => "REGRESSION",
            Status::Added => "added",
            Status::Removed => "removed",
        }
    }
}

/// Which direction of movement is bad for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Informational,
}

/// Classifies a flattened metric path by its final segment.
fn classify(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf.ends_with("time_s")
        || leaf.ends_with("_busy_s")
        || leaf == "faults"
        || leaf == "trace_errors"
    {
        Direction::LowerIsBetter
    } else if leaf.contains("per_second") {
        Direction::HigherIsBetter
    } else {
        Direction::Informational
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Dotted path, e.g. `simulate.time_s`.
    pub path: String,
    /// Value in the first (baseline) file; `None` if absent there.
    pub a: Option<f64>,
    /// Value in the second (candidate) file; `None` if absent there.
    pub b: Option<f64>,
    /// Verdict for this metric.
    pub status: Status,
}

/// The full outcome of a metrics diff.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Threshold the directional verdicts were computed against.
    pub threshold_pct: f64,
    /// Every compared metric, in schema order.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Whether any metric regressed beyond the threshold (the CI gate).
    pub fn has_regressions(&self) -> bool {
        self.lines.iter().any(|l| l.status == Status::Regression)
    }

    /// Count of lines with the given status.
    pub fn count(&self, status: Status) -> usize {
        self.lines.iter().filter(|l| l.status == status).count()
    }

    /// Renders the stable text report (pinned by the golden-fixture test).
    pub fn render(&self) -> String {
        let mut out = format!(
            "stats-diff (threshold \u{00b1}{:.1}%)\n",
            self.threshold_pct
        );
        for line in &self.lines {
            out.push_str(&format!(
                "{:<12} {:<44} {:>14} -> {:<14} {:>10}\n",
                line.status.label(),
                line.path,
                fmt_value(line.a),
                fmt_value(line.b),
                fmt_delta(line.a, line.b),
            ));
        }
        out.push_str(&format!(
            "summary: {} metrics — {} unchanged, {} changed, {} improved, {} regressed, \
             {} added, {} removed\n",
            self.lines.len(),
            self.count(Status::Unchanged),
            self.count(Status::Changed),
            self.count(Status::Improvement),
            self.count(Status::Regression),
            self.count(Status::Added),
            self.count(Status::Removed),
        ));
        out
    }
}

/// Formats a metric value: integers bare, reals with six decimals.
fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{v:.0}"),
        Some(v) => format!("{v:.6}"),
    }
}

/// Formats the relative change between two values.
fn fmt_delta(a: Option<f64>, b: Option<f64>) -> String {
    match (a, b) {
        (Some(a), Some(b)) if a == b => "0.00%".to_string(),
        (Some(a), Some(b)) if a != 0.0 => format!("{:+.2}%", (b - a) / a.abs() * 100.0),
        (Some(_), Some(_)) => "+inf%".to_string(),
        (None, Some(_)) => "new".to_string(),
        (Some(_), None) => "gone".to_string(),
        (None, None) => "-".to_string(),
    }
}

/// Compares two metrics documents section by section.
///
/// Both documents are expected in the `--metrics-out` schema (top-level
/// `decode`/`compress`/`simulate`/`sweep`/`generation` objects); unknown
/// extra sections are ignored, and a section absent from both is skipped.
pub fn diff_metrics(a: &Value, b: &Value, options: &DiffOptions) -> DiffReport {
    let mut lines = Vec::new();
    for section in SECTIONS {
        flatten_pair(section, a.get(section), b.get(section), options, &mut lines);
    }
    DiffReport {
        threshold_pct: options.threshold_pct,
        lines,
    }
}

/// Recursively walks two subtrees in parallel, emitting a [`DiffLine`] per
/// numeric leaf. Keys are visited in sorted order (union of both sides) so
/// the report is deterministic regardless of document key order.
fn flatten_pair(
    path: &str,
    a: Option<&Value>,
    b: Option<&Value>,
    options: &DiffOptions,
    out: &mut Vec<DiffLine>,
) {
    fn as_map<'v>(v: Option<&'v Value>, empty: &'v Map) -> Option<&'v Map> {
        match v {
            Some(Value::Object(m)) => Some(m),
            None => Some(empty),
            _ => None,
        }
    }
    fn as_arr(v: Option<&Value>) -> Option<&[Value]> {
        match v {
            Some(Value::Array(a)) => Some(a),
            None => Some(&[]),
            _ => None,
        }
    }
    let empty_map = Map::new();
    match (a, b) {
        (None, None) => {}
        // An object (or array) missing on one side still gets walked, with
        // `None` on the absent side, so every leaf shows up as new/gone.
        (a, b)
            if (matches!(a, Some(Value::Object(_))) || matches!(b, Some(Value::Object(_))))
                && as_map(a, &empty_map).is_some()
                && as_map(b, &empty_map).is_some() =>
        {
            let (ma, mb) = (
                as_map(a, &empty_map).unwrap(),
                as_map(b, &empty_map).unwrap(),
            );
            let mut keys: Vec<&str> = ma.keys().chain(mb.keys()).collect();
            keys.sort_unstable();
            keys.dedup();
            for key in keys {
                let child = format!("{path}.{key}");
                flatten_pair(&child, ma.get(key), mb.get(key), options, out);
            }
        }
        (a, b)
            if (matches!(a, Some(Value::Array(_))) || matches!(b, Some(Value::Array(_))))
                && as_arr(a).is_some()
                && as_arr(b).is_some() =>
        {
            let (aa, ab) = (as_arr(a).unwrap(), as_arr(b).unwrap());
            for i in 0..aa.len().max(ab.len()) {
                let child = format!("{path}[{i}]");
                flatten_pair(&child, aa.get(i), ab.get(i), options, out);
            }
        }
        (a, b) => {
            let va = a.and_then(Value::as_f64);
            let vb = b.and_then(Value::as_f64);
            // Objects/arrays paired with scalars, strings, booleans: only
            // numeric leaves participate in the diff.
            if va.is_none() && vb.is_none() {
                return;
            }
            out.push(DiffLine {
                path: path.to_string(),
                a: va,
                b: vb,
                status: judge(path, va, vb, options),
            });
        }
    }
}

/// Applies direction and threshold to one metric pair.
fn judge(path: &str, a: Option<f64>, b: Option<f64>, options: &DiffOptions) -> Status {
    let (Some(a), Some(b)) = (a, b) else {
        // Present on one side only: a schema section (or metric) that one of
        // the two files predates. Informational, never a gate failure.
        return match (a, b) {
            (None, Some(_)) => Status::Added,
            _ => Status::Removed,
        };
    };
    if a == b {
        return Status::Unchanged;
    }
    let direction = classify(path);
    if direction == Direction::Informational {
        return Status::Changed;
    }
    let worse = match direction {
        Direction::LowerIsBetter => b > a,
        Direction::HigherIsBetter => b < a,
        Direction::Informational => unreachable!(),
    };
    let pct = if a != 0.0 {
        ((b - a) / a.abs() * 100.0).abs()
    } else {
        f64::INFINITY
    };
    if pct <= options.threshold_pct {
        Status::Changed
    } else if worse {
        Status::Regression
    } else {
        Status::Improvement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;

    fn metrics(time_s: f64, rate: f64, records: u64) -> Value {
        json!({
            "decode": { "packets_decoded": records, "time_s": 0.5 },
            "simulate": {
                "records": records,
                "time_s": time_s,
                "branches_per_second": rate,
            },
            "sweep": { "faults": 0 },
        })
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let a = metrics(1.0, 1e6, 2048);
        let report = diff_metrics(&a, &a, &DiffOptions::default());
        assert!(!report.has_regressions());
        assert_eq!(report.count(Status::Unchanged), report.lines.len());
    }

    #[test]
    fn slower_time_beyond_threshold_regresses() {
        let a = metrics(1.0, 1e6, 2048);
        let b = metrics(1.5, 1e6, 2048);
        let report = diff_metrics(
            &a,
            &b,
            &DiffOptions {
                threshold_pct: 10.0,
            },
        );
        assert!(report.has_regressions());
        let line = report
            .lines
            .iter()
            .find(|l| l.path == "simulate.time_s")
            .unwrap();
        assert_eq!(line.status, Status::Regression);
    }

    #[test]
    fn faster_rate_is_an_improvement_and_counts_are_informational() {
        let a = metrics(1.0, 1e6, 2048);
        let b = metrics(1.0, 2e6, 4096);
        let report = diff_metrics(
            &a,
            &b,
            &DiffOptions {
                threshold_pct: 10.0,
            },
        );
        assert!(!report.has_regressions());
        let rate = report
            .lines
            .iter()
            .find(|l| l.path == "simulate.branches_per_second")
            .unwrap();
        assert_eq!(rate.status, Status::Improvement);
        let count = report
            .lines
            .iter()
            .find(|l| l.path == "simulate.records")
            .unwrap();
        assert_eq!(count.status, Status::Changed, "counts never gate");
    }

    #[test]
    fn within_threshold_is_just_changed() {
        let a = metrics(1.0, 1e6, 2048);
        let b = metrics(1.04, 1e6, 2048);
        let report = diff_metrics(&a, &b, &DiffOptions { threshold_pct: 5.0 });
        assert!(!report.has_regressions());
    }

    #[test]
    fn fault_increase_from_zero_regresses() {
        let a = metrics(1.0, 1e6, 2048);
        let mut b = metrics(1.0, 1e6, 2048);
        if let Some(sweep) = b.as_object_mut().and_then(|o| o.get_mut("sweep")) {
            if let Some(obj) = sweep.as_object_mut() {
                obj.insert("faults", 2u64);
            }
        }
        let report = diff_metrics(&a, &b, &DiffOptions::default());
        assert!(report.has_regressions(), "zero-baseline fault growth gates");
    }

    #[test]
    fn missing_side_is_reported_not_fatal() {
        let a = metrics(1.0, 1e6, 2048);
        let b = json!({ "decode": { "packets_decoded": 2048, "time_s": 0.5 } });
        let report = diff_metrics(&a, &b, &DiffOptions::default());
        assert!(!report.has_regressions());
        let gone = report
            .lines
            .iter()
            .find(|l| l.path == "simulate.time_s")
            .unwrap();
        assert!(gone.b.is_none());
        assert_eq!(gone.status, Status::Removed);
    }

    #[test]
    fn new_sections_are_added_not_regressions() {
        // A candidate recorded after the timeseries/introspection schema
        // extension must diff cleanly against an older baseline.
        let a = metrics(1.0, 1e6, 2048);
        let mut b = metrics(1.0, 1e6, 2048);
        if let Some(obj) = b.as_object_mut() {
            obj.insert(
                "timeseries",
                json!({ "num_windows": 4, "phase_change_score": 0.25 }),
            );
            obj.insert("introspection", json!({ "probes": [{ "entries": 64 }] }));
        }
        let report = diff_metrics(&a, &b, &DiffOptions::default());
        assert!(!report.has_regressions());
        let added: Vec<&str> = report
            .lines
            .iter()
            .filter(|l| l.status == Status::Added)
            .map(|l| l.path.as_str())
            .collect();
        assert!(added.contains(&"timeseries.num_windows"), "{added:?}");
        assert!(
            added.contains(&"introspection.probes[0].entries"),
            "{added:?}"
        );
    }

    #[test]
    fn simpoint_section_diffs_numerically_and_skips_the_hash() {
        // Phase-sampling summaries carry a string `doc_hash` next to the
        // numeric fields; the diff reports the numbers and ignores the hash.
        let sampled = |fraction: f64| {
            let mut m = metrics(1.0, 1e6, 2048);
            if let Some(obj) = m.as_object_mut() {
                obj.insert(
                    "simpoint",
                    json!({
                        "doc_hash": "fnv1a64:0123456789abcdef",
                        "simulated_fraction": fraction,
                        "max_error_estimate": 0.01,
                    }),
                );
            }
            m
        };
        let report = diff_metrics(&sampled(0.3), &sampled(0.4), &DiffOptions::default());
        let paths: Vec<&str> = report.lines.iter().map(|l| l.path.as_str()).collect();
        assert!(paths.contains(&"simpoint.simulated_fraction"), "{paths:?}");
        assert!(
            !paths.iter().any(|p| p.contains("doc_hash")),
            "string leaves stay out of the numeric diff: {paths:?}"
        );
    }
}
