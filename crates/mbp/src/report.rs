//! Rendering of [`mbp_stats`] pipeline snapshots: a JSON `"metrics"`
//! object for machines, a one-screen summary for stderr.
//!
//! The schema (documented field-by-field in `DESIGN.md`) has five fixed
//! sections — `decode`, `compress`, `simulate`, `sweep`, `generation` —
//! mirroring the [`mbp_stats::PipelineSnapshot`] domains. Sections for
//! stages that did not run are still present with zero counts, so consumers
//! can index unconditionally.

use mbp_json::{json, Value};
use mbp_stats::{HistogramSnapshot, PipelineSnapshot};

/// Renders a histogram as `{bounds, counts, overflow, count, mean}`.
fn histogram_json(h: &HistogramSnapshot) -> Value {
    json!({
        "bounds": h.bounds.clone(),
        "counts": h.counts.clone(),
        "overflow": h.overflow,
        "count": h.count,
        "mean": h.mean(),
    })
}

/// Renders a pipeline snapshot as the `"metrics"` JSON object emitted by
/// `mbpsim --metrics`.
pub fn pipeline_json(snap: &PipelineSnapshot) -> Value {
    json!({
        "decode": {
            "bytes_read": snap.trace_bytes_read,
            "packets_decoded": snap.trace_packets_decoded,
            "batches": snap.trace_batches,
            "time_s": snap.trace_decode.seconds(),
            "packets_per_second": snap.packets_per_second(),
        },
        "compress": {
            "blocks_inflated": snap.compress_blocks,
            "compressed_bytes": snap.compress_bytes_in,
            "inflated_bytes": snap.compress_bytes_out,
            "inflate_ratio": snap.inflate_ratio(),
            "time_s": snap.compress_inflate.seconds(),
            "block_ratio_pct": histogram_json(&snap.compress_block_ratio_pct),
        },
        "simulate": {
            "runs": snap.sim_runs,
            "records": snap.sim_records,
            "instructions": snap.sim_instructions,
            "kernel_branches": snap.sim_kernel_branches,
            "scalar_fallback_branches": snap.sim_scalar_fallback_branches,
            "fill_batch_time_s": snap.sim_fill_batch.seconds(),
            "time_s": snap.sim_simulate.seconds(),
            "branches_per_second": snap.branches_per_second(),
            "instructions_per_second": snap.instructions_per_second(),
        },
        "sweep": {
            "workers": snap.sweep_workers,
            "predictors": snap.sweep_predictors,
            "faults": snap.sweep_faults,
            "trace_errors": snap.sweep_trace_errors,
            "worker_busy_s": snap.sweep_worker_busy.seconds(),
            "predictor_time_us": histogram_json(&snap.sweep_predictor_us),
            "checkpoint_writes": snap.sweep_checkpoint_writes,
            "resume_skips": snap.sweep_resume_skips,
            "deadline_fired": snap.sweep_deadline_fired,
            "deadline_extensions": snap.sweep_deadline_extensions,
            "admission_waits": snap.sweep_admission_waits,
            "shutdown_drains": snap.sweep_shutdown_drains,
            "sampled_slices": snap.sweep_sampled_slices,
            "sampled_instructions": snap.sweep_sampled_instructions,
            "replayed_instructions": snap.sweep_replayed_instructions,
        },
        "generation": {
            "records_generated": snap.workload_records,
            "refills": snap.workload_refills,
            "time_s": snap.workload_generate.seconds(),
        },
    })
}

/// `1234567` → `"1.2M"`; keeps the summary lines one screen wide.
fn count(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n}"),
        10_000..=999_999 => format!("{:.1}k", n as f64 / 1e3),
        _ => format!("{:.1}M", n as f64 / 1e6),
    }
}

/// `1234567` bytes → `"1.2 MB"`.
fn bytes(n: u64) -> String {
    match n {
        0..=9_999 => format!("{n} B"),
        10_000..=999_999 => format!("{:.1} kB", n as f64 / 1e3),
        _ => format!("{:.1} MB", n as f64 / 1e6),
    }
}

/// Events per second → `"3.9M/s"`.
fn rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M/s", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k/s", r / 1e3)
    } else {
        format!("{r:.0}/s")
    }
}

/// Renders the one-screen human summary printed to stderr by
/// `mbpsim --metrics`. Stages that never ran are shown as `(idle)`.
pub fn human_summary(snap: &PipelineSnapshot) -> String {
    let mut out = String::from("── pipeline metrics ──────────────────────────────\n");
    if snap.trace_packets_decoded > 0 {
        out.push_str(&format!(
            "decode:    {} packets, {} in {:.3} s ({})\n",
            count(snap.trace_packets_decoded),
            bytes(snap.trace_bytes_read),
            snap.trace_decode.seconds(),
            rate(snap.packets_per_second()),
        ));
    } else {
        out.push_str("decode:    (idle)\n");
    }
    if snap.compress_blocks > 0 {
        out.push_str(&format!(
            "compress:  {} blocks, {} -> {} ({:.2}x) in {:.3} s\n",
            count(snap.compress_blocks),
            bytes(snap.compress_bytes_in),
            bytes(snap.compress_bytes_out),
            snap.inflate_ratio(),
            snap.compress_inflate.seconds(),
        ));
    } else {
        out.push_str("compress:  (idle)\n");
    }
    if snap.sim_runs > 0 {
        out.push_str(&format!(
            "simulate:  {} run(s), {} branches ({} kernel / {} scalar), {} instr in {:.3} s ({} branches)\n",
            snap.sim_runs,
            count(snap.sim_records),
            count(snap.sim_kernel_branches),
            count(snap.sim_scalar_fallback_branches),
            count(snap.sim_instructions),
            snap.sim_simulate.seconds(),
            rate(snap.branches_per_second()),
        ));
    } else {
        out.push_str("simulate:  (idle)\n");
    }
    if snap.sweep_predictors > 0 {
        out.push_str(&format!(
            "sweep:     {} predictor(s) on {} worker(s), busy {:.3} s, {} fault(s), {} trace error(s)\n",
            snap.sweep_predictors,
            snap.sweep_workers,
            snap.sweep_worker_busy.seconds(),
            snap.sweep_faults,
            snap.sweep_trace_errors,
        ));
    } else {
        out.push_str("sweep:     (idle)\n");
    }
    if snap.workload_records > 0 {
        out.push_str(&format!(
            "generate:  {} records in {} refill(s), {:.3} s\n",
            count(snap.workload_records),
            snap.workload_refills,
            snap.workload_generate.seconds(),
        ));
    } else {
        out.push_str("generate:  (idle)\n");
    }
    out.push_str("──────────────────────────────────────────────────");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineSnapshot {
        let stats = mbp_stats::PipelineStats::new();
        stats.trace.bytes_read.add(32 * 2048);
        stats.trace.packets_decoded.add(2048);
        stats.trace.batches.inc();
        stats.trace.decode.record_ns(1_000_000);
        stats.sim.runs.inc();
        stats.sim.records.add(2048);
        stats.sim.instructions.add(10_240);
        stats.sim.kernel_branches.add(2000);
        stats.sim.scalar_fallback_branches.add(48);
        stats.sim.simulate.record_ns(2_000_000);
        stats.snapshot()
    }

    #[test]
    fn json_has_all_five_sections() {
        let doc = pipeline_json(&sample());
        let keys: Vec<&str> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            ["decode", "compress", "simulate", "sweep", "generation"]
        );
        assert_eq!(doc["decode"]["packets_decoded"], Value::from(2048));
        assert_eq!(doc["simulate"]["runs"], Value::from(1));
        assert_eq!(doc["simulate"]["kernel_branches"], Value::from(2000));
        assert_eq!(doc["simulate"]["scalar_fallback_branches"], Value::from(48));
        assert_eq!(doc["sweep"]["predictors"], Value::from(0));
        // The document parses back.
        let reparsed: Value = doc.to_pretty_string().parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn summary_is_one_screen_and_marks_idle_stages() {
        let text = human_summary(&sample());
        assert!(text.lines().count() <= 10, "one screen");
        assert!(text.contains("decode:"));
        assert!(text.contains("sweep:     (idle)"));
        assert!(text.contains("generate:  (idle)"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(count(999), "999");
        assert_eq!(count(1_234_567), "1.2M");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2_500_000), "2.5 MB");
        assert_eq!(rate(3_900_000.0), "3.9M/s");
    }
}
