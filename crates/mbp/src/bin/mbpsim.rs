//! `mbpsim` — command-line front end to the MBPlib suite.
//!
//! Because MBPlib is a library, this binary is just one *user* of it — but
//! it packages the common workflows:
//!
//! ```text
//! mbpsim run --predictor tage --trace t.sbbt.mzst [--warmup N] [--max N]
//! mbpsim explain t.sbbt.mzst tage [--top K] [--capacity N]
//! mbpsim compare --predictors gshare,tage --trace t.sbbt.mzst
//! mbpsim sweep --predictors gshare,tage,batage --trace t.sbbt.mzst [--jobs N]
//! mbpsim simpoint --trace t.sbbt.mzst [--window N] [--clusters K] [--out phases.json]
//! mbpsim sweep --predictors ... --trace t.sbbt.mzst --phases phases.json
//! mbpsim gen --suite cbp5-training [--scale N] --out traces/
//! mbpsim translate --from t.bt9 --to t.sbbt.mzst
//! mbpsim info --trace t.sbbt.mzst
//! mbpsim stats-diff baseline.json candidate.json [--threshold PCT]
//! mbpsim validate-trace run.trace.json
//! mbpsim report metrics.json [--out report.html]
//! mbpsim list
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mbp::compress::Codec;
use mbp::examples::{by_name, PREDICTOR_NAMES};
use mbp::sim::{simulate, simulate_comparison, simulate_many, SimConfig, SweepConfig};
use mbp::trace::sbbt::{SbbtReader, SbbtWriter};
use mbp::trace::{bt9, translate};
use mbp::workloads::Suite;

/// Exit codes, so scripts driving fleets of `mbpsim` runs can triage
/// without parsing stderr:
///
/// * `0` — success.
/// * `1` — unexpected internal error (I/O while writing output, …).
/// * `2` — usage error: bad flags, unknown command/predictor/suite.
/// * `3` — trace error: the input could not be opened, decoded or decompressed.
/// * `4` — partial sweep failure: the sweep completed and printed its JSON,
///   but at least one predictor failed (see the `failures` array).
/// * `5` — metrics regression: `stats-diff` found at least one metric past
///   its regression threshold (the report itself printed fine).
/// * `6` — interrupted sweep: SIGINT/SIGTERM arrived mid-sweep, in-flight
///   predictors were drained and the partial JSON printed with
///   `"interrupted": true` (resume with `--checkpoint`/`--resume`).
const EXIT_INTERNAL: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_TRACE: u8 = 3;
const EXIT_PARTIAL_SWEEP: u8 = 4;
const EXIT_REGRESSION: u8 = 5;
const EXIT_INTERRUPTED: u8 = 6;

/// A command failure carrying the exit code it should map to.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_USAGE,
            message: message.into(),
        }
    }

    fn trace(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_TRACE,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        Self {
            code: EXIT_INTERNAL,
            message: message.into(),
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     mbpsim run --predictor <name> --trace <file> [--warmup N] [--max N] [--track-only-conditional]\n  \
     mbpsim explain <trace> <predictor> [--top K] [--capacity N] [--warmup N] [--max N]\n               \
     [--out <report.json>] — misprediction forensics: per-branch\n               \
     attribution, H2P classification and coverage curve\n  \
     mbpsim compare --predictors <a>,<b> --trace <file> [--warmup N] [--max N]\n  \
     mbpsim sweep --predictors <a>,<b>,... --trace <file> [--jobs N] [--warmup N] [--max N]\n               \
     [--checkpoint <file.jsonl>] [--resume] [--deadline-secs S] [--mem-budget-mb N]\n               \
     [--phases <phases.json>]\n  \
     mbpsim simpoint --trace <file> [--window N] [--clusters K] [--out <phases.json>]\n  \
     mbpsim gen --suite <cbp5-training|cbp5-evaluation|dpc3|smoke> [--scale N] --out <dir>\n  \
     mbpsim translate --from <file.bt9[.mgz]> --to <file.sbbt[.mzst|.mgz]>\n  \
     mbpsim info --trace <file>\n  \
     mbpsim stats-diff <baseline.json> <candidate.json> [--threshold PCT]\n  \
     mbpsim validate-trace <run.trace.json>\n  \
     mbpsim report <metrics.json> [--out <report.html>]\n  \
     mbpsim top <host:port> [--interval-ms N] [--once]\n  \
     mbpsim list\n\
     \n\
     run, compare, sweep and gen also accept:\n  \
     --metrics              add pipeline metrics to the JSON output and print\n                         \
     a one-screen summary on stderr\n  \
     --metrics-out <file>   also write the metrics object to <file>\n  \
     --trace-out <file>     write a Chrome trace-event timeline (open in\n                         \
     Perfetto or chrome://tracing)\n  \
     --events-out <file>    write the raw event journal as JSONL\n  \
     --sample-every <N>     sample throughput gauges every N batches\n                         \
     (default 64, 0 disables)\n  \
     --introspect           collect end-of-run table-health probes into an\n                         \
     `introspection` output section (run, compare, sweep)\n  \
     --timeseries-out <f>   write per-window time-series rows as CSV and add\n                         \
     `metrics.timeseries` to the JSON (run, sweep)\n  \
     --window <N>           time-series window size in instructions\n                         \
     (default 100000; implies `metrics.timeseries`)\n  \
     --quiet                suppress the live progress line on stderr\n\
     \n\
     live telemetry (run, sweep):\n  \
     --telemetry-listen <a> serve /metrics (OpenMetrics), /snapshot (JSON)\n                         \
     and /healthz on <a> (e.g. 127.0.0.1:0 for an\n                         \
     ephemeral port) while the command runs; the bound\n                         \
     address is printed on stderr\n  \
     --telemetry-hold-ms <N> keep serving the final state for N ms after the\n                         \
     work finishes, so late scrapers see it (default 0)\n  \
     mbpsim top <host:port>  attach a live dashboard to a serving run/sweep;\n                         \
     renders once and exits when stdout is not a TTY\n                         \
     or with --once (--interval-ms default 500)\n\
     \n\
     sweep resilience flags:\n  \
     --checkpoint <file>    append each settled predictor to a JSONL\n                         \
     checkpoint (fsync'd per record)\n  \
     --resume               skip predictors already recorded in --checkpoint\n                         \
     and splice their results into the leaderboard\n  \
     --deadline-secs <S>    per-predictor watchdog deadline; stuck configs\n                         \
     become typed `deadline` failures instead of hangs\n  \
     --mem-budget-mb <N>    admission gate: predictors whose size hints would\n                         \
     exceed the budget wait (or fail if alone too large)\n\
     \n\
     phase sampling:\n  \
     mbpsim simpoint        cluster the trace's basic-block vectors into\n                         \
     phases and emit a versioned phases document\n  \
     --window <N>           (simpoint) BBV window size in instructions\n                         \
     (default 100000)\n  \
     --clusters <K>         (simpoint) maximum k-means clusters (default 8)\n  \
     --warmup-windows <N>   (simpoint) windows of warmup replay before each\n                         \
     representative slice (default 1; long-history\n                         \
     predictors want more)\n  \
     --out <phases.json>    (simpoint) write the document here instead of\n                         \
     stdout\n  \
     --phases <file>        (sweep) simulate only the plan's weighted\n                         \
     representative slices (with warm-up replay) and\n                         \
     reconstruct whole-trace MPKI; incompatible with\n                         \
     --max/--warmup/--window/--timeseries-out, and\n                         \
     --resume refuses checkpoints from other plans"
}

/// Minimal flag parser: `--key value` pairs plus boolean flags.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    fn flag(&self, key: &str) -> bool {
        self.items.iter().any(|a| a == key)
    }

    /// Leading positional operands (everything before the first `--flag`).
    fn positional(&self) -> Vec<&str> {
        self.items
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect()
    }

    fn required(&self, key: &str) -> Result<&str, Failure> {
        self.get(key)
            .ok_or_else(|| Failure::usage(format!("missing {key}\n{}", usage())))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, Failure> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Failure::usage(format!("invalid value for {key}: {v}"))),
        }
    }
}

fn sim_config(args: &Args) -> Result<SimConfig, Failure> {
    // `--window N` tunes the window size and by itself enables the time
    // series; `--timeseries-out` enables it at the default window size.
    let timeseries_window = match args.get("--window") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| Failure::usage(format!("invalid value for --window: {v}")))?,
        ),
        None if args.get("--timeseries-out").is_some() => {
            Some(mbp::sim::DEFAULT_WINDOW_INSTRUCTIONS)
        }
        None => None,
    };
    Ok(SimConfig {
        warmup_instructions: args.parsed("--warmup", 0)?,
        max_instructions: args
            .get("--max")
            .map(|v| v.parse())
            .transpose()
            .map_err(|_| Failure::usage("invalid value for --max"))?,
        track_only_conditional: args.flag("--track-only-conditional"),
        timeseries_window,
        collect_probes: args.flag("--introspect"),
        ..SimConfig::default()
    })
}

/// Writes the `--timeseries-out` CSV when requested. Each `(label, series)`
/// pair contributes its windows as rows; with more than one predictor the
/// rows carry a leading `predictor` column and share one header.
fn emit_timeseries_csv(
    args: &Args,
    series: &[(Option<&str>, Option<&mbp::sim::TimeSeries>)],
) -> Result<(), Failure> {
    let Some(path) = args.get("--timeseries-out") else {
        return Ok(());
    };
    let mut csv = String::new();
    for (label, ts) in series {
        let Some(ts) = ts else { continue };
        let chunk = ts.to_csv(*label);
        if csv.is_empty() {
            csv.push_str(&chunk);
        } else {
            // Subsequent predictors repeat the header line; keep only one.
            csv.push_str(chunk.split_once('\n').map_or("", |(_, rows)| rows));
        }
    }
    std::fs::write(path, csv).map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))
}

/// Whether this invocation asked for pipeline metrics.
fn wants_metrics(args: &Args) -> bool {
    args.flag("--metrics") || args.get("--metrics-out").is_some()
}

/// Whether this invocation asked for an event timeline.
fn wants_events(args: &Args) -> bool {
    args.get("--trace-out").is_some() || args.get("--events-out").is_some()
}

/// Arms the event journal when `--trace-out`/`--events-out` was requested;
/// call before the simulation work. Also applies `--sample-every`.
fn setup_events(args: &Args) -> Result<(), Failure> {
    if !wants_events(args) {
        return Ok(());
    }
    mbp::stats::events::set_sample_every(
        args.parsed("--sample-every", mbp::stats::events::DEFAULT_SAMPLE_EVERY)?,
    );
    mbp::stats::events::clear();
    mbp::stats::events::set_events_enabled(true);
    Ok(())
}

/// Drains the journal and writes the requested export files; call after the
/// simulation work. A final pipeline sample closes every counter track at
/// the run's end value before the drain.
fn emit_events(args: &Args) -> Result<(), Failure> {
    if !wants_events(args) {
        return Ok(());
    }
    mbp::stats::events::sample_pipeline();
    mbp::stats::events::set_events_enabled(false);
    let events = mbp::stats::events::drain();
    let dropped = mbp::stats::events::dropped_events();
    if let Some(warning) = mbp::events_export::dropped_events_warning(dropped) {
        eprintln!("{warning}");
    }
    if let Some(path) = args.get("--trace-out") {
        let doc = mbp::events_export::chrome_trace_json(&events, dropped);
        std::fs::write(path, format!("{doc:#}\n"))
            .map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))?;
        eprintln!(
            "mbpsim: wrote {} events ({} dropped) to {path}",
            events.len(),
            dropped
        );
    }
    if let Some(path) = args.get("--events-out") {
        std::fs::write(path, mbp::events_export::events_jsonl(&events))
            .map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

/// Emits the pipeline-metrics object: merges its sections into `doc`'s
/// `metrics` object (creating one for documents without it), writes it to
/// `--metrics-out` when requested, and prints the one-screen summary on
/// stderr. Call after the simulation work, so the snapshot covers it.
fn emit_metrics(args: &Args, doc: Option<&mut mbp::json::Value>) -> Result<(), Failure> {
    if !wants_metrics(args) {
        return Ok(());
    }
    let snap = mbp::stats::pipeline().snapshot();
    let mut pipeline = mbp::report::pipeline_json(&snap);
    // The journal's drop counter belongs next to the pipeline sections:
    // a metrics file whose event exports are incomplete says so itself.
    if let Some(out) = pipeline.as_object_mut() {
        out.insert("dropped_events", mbp::stats::events::dropped_events());
    }
    if let Some(doc) = doc {
        if let Some(obj) = doc.as_object_mut() {
            if !obj.contains_key("metrics") {
                obj.insert("metrics", mbp::json::json!({}));
            }
            if let Some(metrics) = obj.get_mut("metrics").and_then(|m| m.as_object_mut()) {
                if let Some(sections) = pipeline.as_object() {
                    for (key, value) in sections.iter() {
                        metrics.insert(key, value.clone());
                    }
                }
            }
        }
        // Lift the run's opt-in observability sections into the metrics
        // file, so `mbpsim report` and `stats-diff` see them there too.
        if let Some(out) = pipeline.as_object_mut() {
            if let Some(ts) = doc.get("metrics").and_then(|m| m.get("timeseries")) {
                out.insert("timeseries", ts.clone());
            }
            if let Some(intro) = doc.get("introspection") {
                out.insert("introspection", intro.clone());
            }
            // The forensic report, so `mbpsim report` renders its section
            // from the flat metrics file too.
            if let Some(forensics) = doc.get("forensics") {
                out.insert("forensics", forensics.clone());
            }
            // Phase-sampling summaries: single runs carry a top-level
            // `simpoint` section, sweeps a `metadata.sampling` object.
            if let Some(sp) = doc.get("simpoint") {
                out.insert("simpoint", sp.clone());
            } else if let Some(sp) = doc.get("metadata").and_then(|m| m.get("sampling")) {
                out.insert("simpoint", sp.clone());
            }
        }
    }
    if let Some(path) = args.get("--metrics-out") {
        std::fs::write(path, format!("{pipeline:#}\n"))
            .map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))?;
    }
    eprintln!("{}", mbp::report::human_summary(&snap));
    Ok(())
}

/// Starts the telemetry listener when `--telemetry-listen` was passed.
/// Returns the running server paired with the `--telemetry-hold-ms` drain
/// window; call [`mbp::telemetry::TelemetryServer::finish`] on it after the
/// work so late scrapers can still observe the final state.
fn start_telemetry(
    args: &Args,
    state: mbp::telemetry::TelemetryState,
) -> Result<Option<(mbp::telemetry::TelemetryServer, std::time::Duration)>, Failure> {
    let Some(addr) = args.get("--telemetry-listen") else {
        return Ok(None);
    };
    let hold = std::time::Duration::from_millis(args.parsed("--telemetry-hold-ms", 0u64)?);
    let server = mbp::telemetry::TelemetryServer::start(addr, state)
        .map_err(|e| Failure::internal(format!("cannot bind telemetry listener on {addr}: {e}")))?;
    // Greppable by drivers: with port 0 this is the only place the
    // ephemeral binding is reported.
    eprintln!(
        "mbpsim: telemetry listening on http://{}",
        server.local_addr()
    );
    Ok(Some((server, hold)))
}

/// The instruction total a command is expected to simulate per predictor:
/// the trace header's count, clamped by `--max`. `None` when the header
/// does not know (streamed/translated traces).
fn expected_instructions(header_count: u64, config: &SimConfig) -> Option<u64> {
    let total = match config.max_instructions {
        Some(max) => header_count.min(max),
        None => header_count,
    };
    (total > 0).then_some(total)
}

fn codec_for(path: &Path) -> Option<(Codec, u32)> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("mzst") => Some((Codec::Mzst, 22)),
        Some("mgz") => Some((Codec::Mgz, 6)),
        _ => None,
    }
}

fn cmd_run(args: &Args) -> Result<ExitCode, Failure> {
    let name = args.required("--predictor")?;
    let predictor = by_name(name)
        .ok_or_else(|| Failure::usage(format!("unknown predictor {name:?}; try `mbpsim list`")))?;
    let trace_path = args.required("--trace")?;
    let mut trace = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    let config = sim_config(args)?;
    setup_events(args)?;
    // Telemetry wants a (single-slot) status board so /snapshot carries a
    // predictor row; without the flag the run pays for neither board nor
    // wrapper.
    let board = args
        .get("--telemetry-listen")
        .map(|_| std::sync::Arc::new(mbp::sim::SweepStatusBoard::new([name])));
    let telemetry = start_telemetry(
        args,
        mbp::telemetry::TelemetryState {
            kind: "run",
            board: board.clone(),
            ..Default::default()
        },
    )?;
    let mut predictor: Box<dyn mbp::sim::Predictor + Send> = match &board {
        Some(b) => {
            b.set_state(0, mbp::sim::PredictorState::Running);
            Box::new(mbp::sim::StatusPredictor::new(
                predictor,
                std::sync::Arc::clone(b),
                0,
            ))
        }
        None => predictor,
    };
    let total = expected_instructions(trace.header().instruction_count, &config);
    let progress = mbp::progress::Progress::start(total, None, args.flag("--quiet"));
    let result = simulate(&mut trace, &mut predictor, &config);
    progress.finish();
    if let Some(b) = &board {
        match &result {
            Ok(r) => {
                b.set_totals(0, r.metadata.simulation_instr, r.metrics.mispredictions);
                b.set_state(0, mbp::sim::PredictorState::Settled);
            }
            Err(_) => b.set_state(0, mbp::sim::PredictorState::Failed),
        }
    }
    if let Some((server, hold)) = telemetry {
        server.finish(hold, None);
    }
    emit_events(args)?;
    let result = result.map_err(|e| Failure::trace(format!("simulation failed: {e}")))?;
    emit_timeseries_csv(args, &[(None, result.timeseries.as_ref())])?;
    let mut doc = result.to_json();
    if let Some(meta) = doc
        .as_object_mut()
        .and_then(|o| o.get_mut("metadata"))
        .and_then(|m| m.as_object_mut())
    {
        meta.insert("trace", trace_path);
    }
    emit_metrics(args, Some(&mut doc))?;
    println!("{doc:#}");
    Ok(ExitCode::SUCCESS)
}

/// `mbpsim explain <trace> <predictor>` — a run with the forensics engine
/// armed: the printed document carries a versioned `forensics` section
/// (top-K hard-to-predict branches with component attribution and the
/// misprediction coverage curve) alongside the usual run output.
fn cmd_explain(args: &Args) -> Result<ExitCode, Failure> {
    let positional = args.positional();
    let (trace_path, name) = match positional.as_slice() {
        [trace, predictor] => (*trace, *predictor),
        // Flag spelling, for symmetry with `run`.
        [] => (args.required("--trace")?, args.required("--predictor")?),
        _ => {
            return Err(Failure::usage(
                "expected: mbpsim explain <trace> <predictor> [--top K] [--capacity N]",
            ))
        }
    };
    let mut predictor = by_name(name)
        .ok_or_else(|| Failure::usage(format!("unknown predictor {name:?}; try `mbpsim list`")))?;
    let mut trace = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    let defaults = mbp::sim::ForensicsConfig::default();
    let top_limit: usize = args.parsed("--top", defaults.top_limit)?;
    if top_limit == 0 {
        return Err(Failure::usage("--top must be at least 1"));
    }
    let capacity: usize = args.parsed("--capacity", defaults.capacity)?;
    if capacity == 0 {
        return Err(Failure::usage("--capacity must be at least 1"));
    }
    let mut config = sim_config(args)?;
    config.forensics = Some(mbp::sim::ForensicsConfig {
        capacity,
        top_limit,
    });
    setup_events(args)?;
    let total = expected_instructions(trace.header().instruction_count, &config);
    let progress =
        mbp::progress::Progress::start_labeled(Some("explain"), total, None, args.flag("--quiet"));
    let result = simulate(&mut trace, &mut predictor, &config);
    progress.finish();
    emit_events(args)?;
    let result = result.map_err(|e| Failure::trace(format!("simulation failed: {e}")))?;
    let mut doc = result.to_json();
    if let Some(meta) = doc
        .as_object_mut()
        .and_then(|o| o.get_mut("metadata"))
        .and_then(|m| m.as_object_mut())
    {
        meta.insert("trace", trace_path);
    }
    emit_metrics(args, Some(&mut doc))?;
    match args.get("--out") {
        Some(path) => {
            std::fs::write(path, format!("{doc:#}\n"))
                .map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))?;
            eprintln!("mbpsim: wrote forensic report to {path}");
        }
        None => println!("{doc:#}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &Args) -> Result<ExitCode, Failure> {
    let names = args.required("--predictors")?;
    let (a, b) = names
        .split_once(',')
        .ok_or_else(|| Failure::usage("expected --predictors <a>,<b>"))?;
    let mut pa =
        by_name(a.trim()).ok_or_else(|| Failure::usage(format!("unknown predictor {a:?}")))?;
    let mut pb =
        by_name(b.trim()).ok_or_else(|| Failure::usage(format!("unknown predictor {b:?}")))?;
    let trace_path = args.required("--trace")?;
    let mut trace = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    setup_events(args)?;
    let result = simulate_comparison(&mut trace, &mut pa, &mut pb, &sim_config(args)?);
    emit_events(args)?;
    let result = result.map_err(|e| Failure::trace(format!("simulation failed: {e}")))?;
    let mut doc = result.to_json();
    emit_metrics(args, Some(&mut doc))?;
    println!("{doc:#}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(args: &Args) -> Result<ExitCode, Failure> {
    let names = args.required("--predictors")?;
    let mut predictors = Vec::new();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let p = by_name(name).ok_or_else(|| {
            Failure::usage(format!("unknown predictor {name:?}; try `mbpsim list`"))
        })?;
        predictors.push((name.to_string(), p));
    }
    if predictors.is_empty() {
        return Err(Failure::usage("expected --predictors <a>,<b>,..."));
    }
    let predictor_count = predictors.len();
    let trace_path = args.required("--trace")?;
    let deadline = match args.get("--deadline-secs") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .map_err(|e| Failure::usage(format!("bad --deadline-secs {raw:?}: {e}")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(Failure::usage(format!(
                    "--deadline-secs must be a positive number, got {raw:?}"
                )));
            }
            Some(std::time::Duration::from_secs_f64(secs))
        }
    };
    let mem_budget = args
        .get("--mem-budget-mb")
        .map(|raw| {
            raw.parse::<u64>()
                .map_err(|e| Failure::usage(format!("bad --mem-budget-mb {raw:?}: {e}")))
        })
        .transpose()?
        .map(|mb| mb.saturating_mul(1024 * 1024));
    let checkpoint = args.get("--checkpoint").map(PathBuf::from);
    let resume = args.flag("--resume");
    if resume && checkpoint.is_none() {
        return Err(Failure::usage("--resume requires --checkpoint <file>"));
    }
    let phases = match args.get("--phases") {
        None => None,
        Some(path) => {
            // The plan already fixes which instructions are simulated and
            // how each slice is warmed; flags that re-slice the trace would
            // silently invalidate its weights.
            for conflicting in ["--max", "--warmup", "--window", "--timeseries-out"] {
                if args.get(conflicting).is_some() {
                    return Err(Failure::usage(format!(
                        "{conflicting} cannot be combined with --phases: the sampling \
                         plan already fixes the simulated slices and their warm-up"
                    )));
                }
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| Failure::trace(format!("cannot read {path}: {e}")))?;
            let doc: mbp::json::Value = text
                .parse()
                .map_err(|e| Failure::trace(format!("cannot parse {path}: {e}")))?;
            let plan = mbp::sim::PhasesDoc::from_json(&doc)
                .map_err(|e| Failure::trace(format!("{path}: {e}")))?;
            Some(plan)
        }
    };
    let mut trace = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    mbp::shutdown::install();
    // Telemetry wants the live per-predictor board; without the flag the
    // sweep engine skips all status publishing (config.status = None).
    let board = args.get("--telemetry-listen").map(|_| {
        std::sync::Arc::new(mbp::sim::SweepStatusBoard::new(
            predictors.iter().map(|(name, _)| name.as_str()),
        ))
    });
    let config = SweepConfig {
        sim: sim_config(args)?,
        jobs: args.parsed("--jobs", 0usize)?,
        deadline,
        mem_budget,
        checkpoint,
        resume,
        shutdown: Some(mbp::shutdown::requested),
        phases,
        status: board.clone(),
    };
    setup_events(args)?;
    let sampling = config.phases.as_ref().map(|plan| {
        mbp::json::json!({
            "simulated_fraction": plan.planned_fraction(),
            "phases": plan.phases.len() as u64,
            "window_size": plan.window_size,
        })
    });
    let telemetry = start_telemetry(
        args,
        mbp::telemetry::TelemetryState {
            kind: "sweep",
            board,
            deadline_secs: config.deadline.map(|d| d.as_secs_f64()),
            checkpoint: config.checkpoint.as_ref().map(|p| p.display().to_string()),
            resume,
            sampling,
            shutdown: Some(mbp::shutdown::requested),
        },
    )?;
    let total = expected_instructions(trace.header().instruction_count, &config.sim)
        .map(|per| per.saturating_mul(predictor_count as u64));
    let sampled_fraction = config.phases.as_ref().map(|p| p.planned_fraction());
    let progress = mbp::progress::Progress::start(total, sampled_fraction, args.flag("--quiet"));
    let result = simulate_many(&mut trace, predictors, &config);
    progress.finish();
    if let Some((server, hold)) = telemetry {
        // A pending SIGINT cuts the hold short so Ctrl-C still drains the
        // listener promptly.
        server.finish(hold, Some(mbp::shutdown::requested));
    }
    emit_events(args)?;
    let mut result = result.map_err(|e| Failure::trace(format!("sweep failed: {e}")))?;
    emit_timeseries_csv(
        args,
        &result
            .entries
            .iter()
            .map(|e| (Some(e.name.as_str()), e.result.timeseries.as_ref()))
            .collect::<Vec<_>>(),
    )?;
    result.trace = trace_path.into();
    for entry in &mut result.entries {
        entry.result.metadata.trace = trace_path.into();
    }
    let mut doc = result.to_json();
    emit_metrics(args, Some(&mut doc))?;
    println!("{doc:#}");
    for failure in &result.failures {
        eprintln!(
            "mbpsim: predictor {:?} failed ({}): {}",
            failure.name, failure.kind, failure.message
        );
    }
    if result.interrupted {
        // The JSON above is a valid partial sweep (checkpointed if asked);
        // the dedicated code lets drivers distinguish "operator stopped us"
        // from "a predictor broke".
        eprintln!(
            "mbpsim: sweep interrupted; {} predictor(s) not run",
            result.not_run.len()
        );
        Ok(ExitCode::from(EXIT_INTERRUPTED))
    } else if result.failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        // The JSON above is complete (survivors ranked, failures listed);
        // the exit code tells drivers the sweep was only partially healthy.
        Ok(ExitCode::from(EXIT_PARTIAL_SWEEP))
    }
}

fn cmd_simpoint(args: &Args) -> Result<ExitCode, Failure> {
    let trace_path = args.required("--trace")?;
    let window: u64 = args.parsed("--window", 100_000u64)?;
    if window == 0 {
        return Err(Failure::usage(
            "--window must be a positive instruction count",
        ));
    }
    let clusters: usize = args.parsed("--clusters", 8usize)?;
    if clusters == 0 {
        return Err(Failure::usage("--clusters must be at least 1"));
    }
    let warmup_windows: usize = args.parsed("--warmup-windows", 1usize)?;
    let mut trace = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    setup_events(args)?;
    let records = trace
        .read_all()
        .map_err(|e| Failure::trace(format!("cannot read {trace_path}: {e}")))?;
    let plan = mbp::sim::extract_phases_with_warmup(&records, window, clusters, warmup_windows);
    emit_events(args)?;
    emit_metrics(args, None)?;
    let doc = plan.to_json();
    match args.get("--out") {
        Some(path) => {
            std::fs::write(path, format!("{doc:#}\n"))
                .map_err(|e| Failure::internal(format!("cannot write {path}: {e}")))?;
            eprintln!(
                "mbpsim: {} windows -> {} phases ({:.1}% of instructions planned), wrote {path}",
                plan.num_windows,
                plan.phases.len(),
                100.0 * plan.planned_fraction()
            );
        }
        None => println!("{doc:#}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen(args: &Args) -> Result<ExitCode, Failure> {
    let scale = args.parsed("--scale", 1u64)?;
    let suite = match args.required("--suite")? {
        "cbp5-training" => Suite::cbp5_training(scale),
        "cbp5-evaluation" => Suite::cbp5_evaluation(scale),
        "dpc3" => Suite::dpc3(scale),
        "smoke" => Suite::smoke(),
        other => return Err(Failure::usage(format!("unknown suite {other:?}"))),
    };
    let out = PathBuf::from(args.required("--out")?);
    std::fs::create_dir_all(&out)
        .map_err(|e| Failure::internal(format!("cannot create {}: {e}", out.display())))?;
    setup_events(args)?;
    for spec in &suite.traces {
        let path = out.join(format!("{}.sbbt.mzst", spec.name));
        let mut writer = SbbtWriter::create_compressed(&path, Codec::Mzst, 22)
            .map_err(|e| Failure::internal(format!("cannot create {}: {e}", path.display())))?;
        for record in spec.records() {
            writer
                .write_record(&record)
                .map_err(|e| Failure::internal(format!("write failed: {e}")))?;
        }
        let branches = writer.branch_count();
        let instructions = writer.instruction_count();
        writer
            .finish_compressed()
            .map_err(|e| Failure::internal(format!("finish failed: {e}")))?;
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "{}: {} branches, {} instructions, {} bytes",
            path.display(),
            branches,
            instructions,
            size
        );
    }
    println!(
        "wrote {} traces from suite {}",
        suite.traces.len(),
        suite.name
    );
    emit_events(args)?;
    emit_metrics(args, None)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats_diff(args: &Args) -> Result<ExitCode, Failure> {
    let paths = args.positional();
    let [baseline, candidate] = paths.as_slice() else {
        return Err(Failure::usage(
            "expected: mbpsim stats-diff <baseline.json> <candidate.json> [--threshold PCT]",
        ));
    };
    let threshold_pct: f64 = args.parsed("--threshold", 5.0)?;
    if !threshold_pct.is_finite() || threshold_pct < 0.0 {
        return Err(Failure::usage("--threshold must be a non-negative percent"));
    }
    let load = |path: &str| -> Result<mbp::json::Value, Failure> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Failure::internal(format!("cannot read {path}: {e}")))?;
        text.parse()
            .map_err(|e| Failure::internal(format!("cannot parse {path}: {e}")))
    };
    let a = load(baseline)?;
    let b = load(candidate)?;
    let report = mbp::diff::diff_metrics(&a, &b, &mbp::diff::DiffOptions { threshold_pct });
    print!("{}", report.render());
    if report.has_regressions() {
        Ok(ExitCode::from(EXIT_REGRESSION))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_report(args: &Args) -> Result<ExitCode, Failure> {
    let paths = args.positional();
    let [path] = paths.as_slice() else {
        return Err(Failure::usage(
            "expected: mbpsim report <metrics.json> [--out <report.html>]",
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::internal(format!("cannot read {path}: {e}")))?;
    let doc: mbp::json::Value = text
        .parse()
        .map_err(|e| Failure::internal(format!("cannot parse {path}: {e}")))?;
    let html = mbp::html_report::render_html(&doc);
    match args.get("--out") {
        Some(out) => {
            std::fs::write(out, &html)
                .map_err(|e| Failure::internal(format!("cannot write {out}: {e}")))?;
            eprintln!("mbpsim: wrote {} bytes to {out}", html.len());
        }
        None => print!("{html}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate_trace(args: &Args) -> Result<ExitCode, Failure> {
    let paths = args.positional();
    let [path] = paths.as_slice() else {
        return Err(Failure::usage(
            "expected: mbpsim validate-trace <run.trace.json>",
        ));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::internal(format!("cannot read {path}: {e}")))?;
    let doc: mbp::json::Value = text
        .parse()
        .map_err(|e| Failure::internal(format!("cannot parse {path}: {e}")))?;
    let check = mbp::events_export::validate_chrome_trace(&doc)
        .map_err(|e| Failure::internal(format!("{path}: {e}")))?;
    println!(
        "{path}: ok — {} events across {} threads ({} dropped by producer)",
        check.events, check.threads, check.dropped
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_translate(args: &Args) -> Result<ExitCode, Failure> {
    let from = PathBuf::from(args.required("--from")?);
    let to = PathBuf::from(args.required("--to")?);
    let from_name = from.to_string_lossy();
    let records = if from_name.contains(".bt9") {
        let trace = bt9::open(&from)
            .map_err(|e| Failure::trace(format!("cannot parse {from_name}: {e}")))?;
        trace.records().collect::<Vec<_>>()
    } else {
        let mut reader = SbbtReader::open(&from)
            .map_err(|e| Failure::trace(format!("cannot open {from_name}: {e}")))?;
        reader
            .read_all()
            .map_err(|e| Failure::trace(format!("cannot read {from_name}: {e}")))?
    };

    let to_name = to.to_string_lossy().to_string();
    if to_name.contains(".bt9") {
        let text = translate::records_to_bt9(&records);
        let bytes = match codec_for(&to) {
            Some((codec, level)) => mbp::compress::compress(text.as_bytes(), codec, level)
                .map_err(|e| Failure::internal(format!("compress failed: {e}")))?,
            None => text.into_bytes(),
        };
        std::fs::write(&to, bytes)
            .map_err(|e| Failure::internal(format!("cannot write {to_name}: {e}")))?;
    } else {
        match codec_for(&to) {
            Some((codec, level)) => {
                let mut w = SbbtWriter::create_compressed(&to, codec, level)
                    .map_err(|e| Failure::internal(format!("cannot create {to_name}: {e}")))?;
                for r in &records {
                    w.write_record(r)
                        .map_err(|e| Failure::internal(format!("write failed: {e}")))?;
                }
                w.finish_compressed()
                    .map_err(|e| Failure::internal(format!("finish failed: {e}")))?;
            }
            None => {
                let mut w = SbbtWriter::create(&to)
                    .map_err(|e| Failure::internal(format!("cannot create {to_name}: {e}")))?;
                for r in &records {
                    w.write_record(r)
                        .map_err(|e| Failure::internal(format!("write failed: {e}")))?;
                }
                w.finish()
                    .map_err(|e| Failure::internal(format!("finish failed: {e}")))?;
            }
        }
    }
    println!(
        "translated {} records: {} -> {}",
        records.len(),
        from_name,
        to_name
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_top(args: &Args) -> Result<ExitCode, Failure> {
    let positional = args.positional();
    let [addr] = positional.as_slice() else {
        return Err(Failure::usage(
            "expected: mbpsim top <host:port> [--interval-ms N] [--once]",
        ));
    };
    let interval_ms: u64 = args.parsed("--interval-ms", 500u64)?;
    let opts = mbp::top::TopOptions {
        addr: (*addr).to_string(),
        interval: std::time::Duration::from_millis(interval_ms.max(50)),
        once: args.flag("--once"),
    };
    mbp::top::run_top(&opts).map_err(Failure::internal)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_info(args: &Args) -> Result<ExitCode, Failure> {
    let trace_path = args.required("--trace")?;
    let mut reader = SbbtReader::open(trace_path)
        .map_err(|e| Failure::trace(format!("cannot open {trace_path}: {e}")))?;
    let header = *reader.header();
    let mut conditional = 0u64;
    let mut taken = 0u64;
    let mut calls = 0u64;
    let mut rets = 0u64;
    let mut indirect = 0u64;
    while let Some(rec) = reader
        .next_record()
        .map_err(|e| Failure::trace(format!("bad packet: {e}")))?
    {
        let b = rec.branch;
        conditional += b.is_conditional() as u64;
        taken += b.is_taken() as u64;
        indirect += b.opcode().is_indirect() as u64;
        match b.opcode().kind() {
            mbp::trace::BranchKind::Call => calls += 1,
            mbp::trace::BranchKind::Ret => rets += 1,
            mbp::trace::BranchKind::Jump => {}
        }
    }
    println!("trace:            {trace_path}");
    println!("instructions:     {}", header.instruction_count);
    println!("branches:         {}", header.branch_count);
    println!(
        "branch density:   {:.1}%",
        100.0 * header.branch_count as f64 / header.instruction_count.max(1) as f64
    );
    println!("conditional:      {conditional}");
    println!("taken:            {taken}");
    println!("indirect:         {indirect}");
    println!("calls / returns:  {calls} / {rets}");
    Ok(ExitCode::SUCCESS)
}

/// Replaces the default panic handler (multi-line message plus backtrace
/// pointer) with a one-line structured error, so that even a bug that slips
/// past the typed error paths never dumps a backtrace at a fleet driver
/// scraping stderr.
fn install_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
            s
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.as_str()
        } else {
            "unknown panic"
        };
        let message = message.lines().next().unwrap_or("unknown panic");
        match info.location() {
            Some(loc) => eprintln!("mbpsim: internal error at {loc}: {message}"),
            None => eprintln!("mbpsim: internal error: {message}"),
        }
    }));
}

fn main() -> ExitCode {
    install_panic_hook();
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    }
    let command = argv.remove(0);
    let args = Args { items: argv };
    let result = match command.as_str() {
        "run" => cmd_run(&args),
        "explain" => cmd_explain(&args),
        "compare" => cmd_compare(&args),
        "sweep" => cmd_sweep(&args),
        "simpoint" => cmd_simpoint(&args),
        "gen" => cmd_gen(&args),
        "translate" => cmd_translate(&args),
        "info" => cmd_info(&args),
        "stats-diff" => cmd_stats_diff(&args),
        "validate-trace" => cmd_validate_trace(&args),
        "report" => cmd_report(&args),
        "top" => cmd_top(&args),
        "list" => {
            for name in PREDICTOR_NAMES {
                println!("{name}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(Failure::usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    };
    match result {
        Ok(code) => code,
        Err(Failure { code, message }) => {
            eprintln!("mbpsim: {message}");
            ExitCode::from(code)
        }
    }
}
