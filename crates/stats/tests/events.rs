//! Integration tests for the event journal's ring-buffer semantics.
//!
//! The journal is process-global, so every test takes the same lock, clears
//! the journal while holding it, and filters drained events down to its own
//! thread id — concurrent test threads (which hold the lock before emitting
//! anything themselves) can never pollute an assertion.

use std::sync::{Mutex, MutexGuard, PoisonError};

use mbp_stats::events::{self, Event, EventKind, EventName, SHARD_CAPACITY};

/// Serializes journal tests and arms the journal for the guard's lifetime.
fn journal_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    events::set_events_enabled(true);
    events::clear();
    guard
}

/// Drained events emitted by the calling thread.
fn my_events() -> Vec<Event> {
    let tid = events::current_thread_id();
    events::drain()
        .into_iter()
        .filter(|e| e.tid == tid)
        .collect()
}

#[test]
fn wrap_around_drops_oldest_and_counts_casualties() {
    let _guard = journal_lock();
    const OVERFLOW: u64 = 100;
    let total = SHARD_CAPACITY as u64 + OVERFLOW;
    for i in 0..total {
        events::instant(EventName::SweepPredictorDone, i);
    }

    let mine = my_events();
    assert_eq!(
        mine.len(),
        SHARD_CAPACITY,
        "a full ring retains exactly its capacity"
    );
    // Drop-oldest: the survivors are precisely the newest SHARD_CAPACITY
    // arguments, in emission order.
    let args: Vec<u64> = mine.iter().map(|e| e.arg).collect();
    let expected: Vec<u64> = (OVERFLOW..total).collect();
    assert_eq!(args, expected, "oldest events were overwritten first");
    assert_eq!(
        events::dropped_events(),
        OVERFLOW,
        "every overwritten event is counted"
    );
}

#[test]
fn timestamps_are_strictly_increasing_per_thread() {
    let _guard = journal_lock();
    for _ in 0..64 {
        events::instant(EventName::SweepFault, 0);
    }
    let mine = my_events();
    assert_eq!(mine.len(), 64);
    for pair in mine.windows(2) {
        assert!(
            pair[1].ts_ns > pair[0].ts_ns,
            "ties must be bumped: {} !> {}",
            pair[1].ts_ns,
            pair[0].ts_ns
        );
    }
}

#[test]
fn span_guard_closes_during_panic_unwind() {
    let _guard = journal_lock();
    let result = std::panic::catch_unwind(|| {
        let _span = events::span(EventName::SimSimulate);
        events::instant(EventName::SweepFault, 7);
        panic!("intentional fault for testing");
    });
    assert!(result.is_err(), "the closure really panicked");

    let mine = my_events();
    let begins = mine
        .iter()
        .filter(|e| e.kind == EventKind::SpanBegin && e.name == EventName::SimSimulate)
        .count();
    let ends = mine
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == EventName::SimSimulate)
        .count();
    assert_eq!(begins, 1);
    assert_eq!(ends, 1, "unwind still emits the SpanEnd");
    assert!(mine
        .iter()
        .any(|e| e.kind == EventKind::Instant && e.arg == 7));
}

#[test]
fn disabled_journal_records_nothing() {
    let _guard = journal_lock();
    events::set_events_enabled(false);
    events::instant(EventName::SweepFault, 1);
    {
        let _span = events::span(EventName::SimSimulate);
    }
    events::batch_tick();
    assert!(
        my_events().is_empty(),
        "disabled emits are dropped for free"
    );
    assert_eq!(events::dropped_events(), 0);
    events::set_events_enabled(true);
}

#[test]
fn master_timing_switch_gates_the_journal_too() {
    let _guard = journal_lock();
    mbp_stats::set_enabled(false);
    assert!(
        !events::events_enabled(),
        "journal requires the timing switch"
    );
    events::instant(EventName::SweepFault, 1);
    mbp_stats::set_enabled(true);
    assert!(events::events_enabled());
    assert!(my_events().is_empty());
}

#[test]
fn batch_tick_samples_every_nth_batch() {
    let _guard = journal_lock();
    let before = events::sample_every();
    events::set_sample_every(4);
    for _ in 0..8 {
        events::batch_tick();
    }
    let samples = my_events()
        .into_iter()
        .filter(|e| e.kind == EventKind::Sample)
        .count();
    // Two sampling points, each recording the four pipeline series.
    assert_eq!(samples, 2 * 4);
    events::set_sample_every(before);
}

#[test]
fn clear_resets_events_and_drop_counter() {
    let _guard = journal_lock();
    for i in 0..(SHARD_CAPACITY as u64 + 5) {
        events::instant(EventName::SweepFault, i);
    }
    assert!(events::dropped_events() > 0);
    events::clear();
    assert!(my_events().is_empty());
    assert_eq!(events::dropped_events(), 0);
}
