//! Prometheus/OpenMetrics text exposition of stats snapshots.
//!
//! This is the wire format of the live telemetry plane's `/metrics`
//! endpoint: the static [`crate::pipeline`] domains and the process-wide
//! [`crate::registry`] rendered as `# TYPE`-annotated metric families.
//! The renderer is a pure function over snapshots, so it can be tested
//! byte-for-byte and never touches the hot path — scrape cost is one
//! registry snapshot plus string formatting, entirely on the serving
//! thread.
//!
//! Formatting rules, chosen for diffability:
//!
//! * counters render as monotonic `_total` series, `u64` values printed as
//!   exact integers (never through `f64`, which loses precision past 2^53);
//! * timers render as a `_seconds_total` counter (exact decimal built from
//!   integer nanoseconds) plus a `_spans_total` counter;
//! * histograms render with cumulative `_bucket{le="..."}` semantics, a
//!   trailing `+Inf` bucket, `_sum` and `_count`;
//! * families appear in a fixed order (pipeline domains first, then the
//!   registry sorted by sanitized name), so repeat scrapes of an idle
//!   process are byte-identical.

use std::fmt::Write as _;

use crate::metric::HistogramSnapshot;
use crate::pipeline::{PipelineSnapshot, TimerSnapshot};
use crate::registry::{Snapshot, SnapshotValue};

/// Rewrites `name` into the OpenMetrics metric-name charset
/// `[a-zA-Z0-9_:]` (first character additionally `[a-zA-Z_:]`). Invalid
/// characters become `_`; an empty input becomes a single `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// One predictor's live hard-to-predict summary, rendered as the
/// `mbp_h2p_*` labeled gauge family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct H2pRow {
    /// Value of the `predictor` label.
    pub predictor: String,
    /// Address of the predictor's currently worst (most-mispredicted)
    /// branch; `None` before any misprediction.
    pub worst_ip: Option<u64>,
    /// Misprediction count of that branch (0 when `worst_ip` is `None`).
    pub worst_mispredictions: u64,
}

/// Escapes a label value per the OpenMetrics text format: backslash,
/// double quote and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Emits the `mbp_h2p_*` family: per-predictor worst-branch gauges. Every
/// row renders a misprediction count (so a predictor with no misses yet is
/// still visible as `0`); the address gauge appears once a worst branch
/// exists.
fn h2p_family(out: &mut String, rows: &[H2pRow]) {
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(out, "# TYPE mbp_h2p_worst_branch_mispredictions gauge");
    for r in rows {
        let _ = writeln!(
            out,
            "mbp_h2p_worst_branch_mispredictions{{predictor=\"{}\"}} {}",
            escape_label_value(&r.predictor),
            r.worst_mispredictions
        );
    }
    if rows.iter().any(|r| r.worst_ip.is_some()) {
        let _ = writeln!(out, "# TYPE mbp_h2p_worst_branch_ip gauge");
        for r in rows {
            if let Some(ip) = r.worst_ip {
                let _ = writeln!(
                    out,
                    "mbp_h2p_worst_branch_ip{{predictor=\"{}\"}} {ip}",
                    escape_label_value(&r.predictor)
                );
            }
        }
    }
}

/// Emits one counter family: `# TYPE` line plus a `_total` sample.
fn counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name}_total {value}");
}

/// Emits one gauge sample with its `# TYPE` line.
fn gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Emits a timer as `_seconds_total` (exact decimal seconds from integer
/// nanoseconds) and `_spans_total` counters.
fn timer(out: &mut String, name: &str, total_ns: u64, spans: u64) {
    let _ = writeln!(out, "# TYPE {name}_seconds counter");
    let _ = writeln!(
        out,
        "{name}_seconds_total {}.{:09}",
        total_ns / 1_000_000_000,
        total_ns % 1_000_000_000
    );
    let _ = writeln!(out, "# TYPE {name}_spans counter");
    let _ = writeln!(out, "{name}_spans_total {spans}");
}

/// Emits a histogram family with cumulative buckets, `+Inf`, sum and count.
fn histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let cumulative = h.cumulative_counts();
    for (bound, cum) in h.bounds.iter().zip(&cumulative) {
        let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
    }
    // cumulative_counts always appends the +Inf bucket (== count).
    let inf = cumulative.last().copied().unwrap_or(0);
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {inf}");
    let _ = writeln!(out, "{name}_sum {}", h.sum());
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders the pipeline snapshot, the registry snapshot, the event
/// journal's drop counter and the per-predictor H2P rows as one
/// OpenMetrics text document.
///
/// Pipeline families come first in a fixed order, then the `mbp_h2p_*`
/// family (omitted when `h2p` is empty), then registry entries prefixed
/// `mbp_registry_` and sorted by sanitized name. Rendering the same
/// snapshots twice yields byte-identical output.
pub fn render_openmetrics(
    registry: &Snapshot,
    pipeline: &PipelineSnapshot,
    dropped_events: u64,
    h2p: &[H2pRow],
) -> String {
    let mut out = String::with_capacity(4096);
    let p = pipeline;
    let t = |out: &mut String, name: &str, ts: &TimerSnapshot| {
        timer(out, name, ts.total_ns, ts.spans);
    };

    counter(&mut out, "mbp_trace_bytes_read", p.trace_bytes_read);
    counter(
        &mut out,
        "mbp_trace_packets_decoded",
        p.trace_packets_decoded,
    );
    counter(&mut out, "mbp_trace_batches", p.trace_batches);
    t(&mut out, "mbp_trace_decode", &p.trace_decode);

    counter(&mut out, "mbp_compress_blocks", p.compress_blocks);
    counter(&mut out, "mbp_compress_bytes_in", p.compress_bytes_in);
    counter(&mut out, "mbp_compress_bytes_out", p.compress_bytes_out);
    t(&mut out, "mbp_compress_inflate", &p.compress_inflate);
    histogram(
        &mut out,
        "mbp_compress_block_ratio_pct",
        &p.compress_block_ratio_pct,
    );

    counter(&mut out, "mbp_sim_runs", p.sim_runs);
    counter(&mut out, "mbp_sim_records", p.sim_records);
    counter(&mut out, "mbp_sim_instructions", p.sim_instructions);
    counter(&mut out, "mbp_sim_kernel_branches", p.sim_kernel_branches);
    counter(
        &mut out,
        "mbp_sim_scalar_fallback_branches",
        p.sim_scalar_fallback_branches,
    );
    t(&mut out, "mbp_sim_fill_batch", &p.sim_fill_batch);
    t(&mut out, "mbp_sim_simulate", &p.sim_simulate);

    counter(&mut out, "mbp_sweep_workers", p.sweep_workers);
    counter(&mut out, "mbp_sweep_predictors", p.sweep_predictors);
    counter(&mut out, "mbp_sweep_faults", p.sweep_faults);
    counter(&mut out, "mbp_sweep_trace_errors", p.sweep_trace_errors);
    t(&mut out, "mbp_sweep_worker_busy", &p.sweep_worker_busy);
    histogram(&mut out, "mbp_sweep_predictor_us", &p.sweep_predictor_us);
    counter(
        &mut out,
        "mbp_sweep_checkpoint_writes",
        p.sweep_checkpoint_writes,
    );
    counter(&mut out, "mbp_sweep_resume_skips", p.sweep_resume_skips);
    counter(&mut out, "mbp_sweep_deadline_fired", p.sweep_deadline_fired);
    counter(
        &mut out,
        "mbp_sweep_deadline_extensions",
        p.sweep_deadline_extensions,
    );
    counter(
        &mut out,
        "mbp_sweep_admission_waits",
        p.sweep_admission_waits,
    );
    counter(
        &mut out,
        "mbp_sweep_shutdown_drains",
        p.sweep_shutdown_drains,
    );
    counter(&mut out, "mbp_sweep_sampled_slices", p.sweep_sampled_slices);
    counter(
        &mut out,
        "mbp_sweep_sampled_instructions",
        p.sweep_sampled_instructions,
    );
    counter(
        &mut out,
        "mbp_sweep_replayed_instructions",
        p.sweep_replayed_instructions,
    );

    counter(&mut out, "mbp_workload_records", p.workload_records);
    counter(&mut out, "mbp_workload_refills", p.workload_refills);
    t(&mut out, "mbp_workload_generate", &p.workload_generate);

    counter(&mut out, "mbp_events_dropped", dropped_events);

    h2p_family(&mut out, h2p);

    // Registry entries arrive sorted by raw name; sanitization can reorder
    // (or collide — last writer wins is fine for a scrape surface), so
    // re-sort by the emitted family name to keep the document stable.
    let mut entries: Vec<(String, &SnapshotValue)> = registry
        .entries
        .iter()
        .map(|(name, value)| {
            (
                format!("mbp_registry_{}", sanitize_metric_name(name)),
                value,
            )
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, value) in entries {
        match value {
            SnapshotValue::Counter(v) => counter(&mut out, &name, *v),
            SnapshotValue::Gauge { value, high_water } => {
                gauge(&mut out, &name, *value);
                gauge(&mut out, &format!("{name}_high_water"), *high_water);
            }
            SnapshotValue::Timer { total_ns, spans } => timer(&mut out, &name, *total_ns, *spans),
            SnapshotValue::Histogram(h) => histogram(&mut out, &name, h),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineStats;
    use crate::registry::Registry;

    #[test]
    fn sanitize_replaces_invalid_characters() {
        assert_eq!(sanitize_metric_name("trace.packets"), "trace_packets");
        assert_eq!(sanitize_metric_name("a-b c/d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("x9"), "x9");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn counters_render_exact_u64_beyond_f64_range() {
        let stats = PipelineStats::new();
        // 2^53 + 1 is not representable in f64; the text must round-trip.
        let big = (1u64 << 53) + 1;
        stats.sim.instructions.add(big);
        let text = render_openmetrics(&Snapshot::default(), &stats.snapshot(), 0, &[]);
        assert!(
            text.contains(&format!("mbp_sim_instructions_total {big}\n")),
            "expected exact integer rendering, got:\n{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let stats = PipelineStats::new();
        stats.sweep.predictor_us.record(5);
        stats.sweep.predictor_us.record(1_000_000_000);
        let text = render_openmetrics(&Snapshot::default(), &stats.snapshot(), 0, &[]);
        let inf = text
            .lines()
            .find(|l| l.starts_with("mbp_sweep_predictor_us_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket");
        assert!(inf.ends_with(" 2"), "bad +Inf bucket: {inf}");
        // Cumulative counts never decrease down the bucket list.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("mbp_sweep_predictor_us_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets not monotone: {line}");
            last = v;
        }
    }

    #[test]
    fn empty_registry_renders_pipeline_only_and_is_byte_stable() {
        let stats = PipelineStats::new();
        let reg = Registry::new();
        let a = render_openmetrics(&reg.snapshot(), &stats.snapshot(), 0, &[]);
        let b = render_openmetrics(&reg.snapshot(), &stats.snapshot(), 0, &[]);
        assert_eq!(a, b, "idle scrapes must be byte-identical");
        assert!(!a.contains("mbp_registry_"));
        assert!(a.contains("# TYPE mbp_sim_instructions counter"));
        assert!(a.lines().all(|l| l.starts_with("# TYPE") || !l.is_empty()));
    }

    #[test]
    fn registry_kinds_render_with_type_lines() {
        let stats = PipelineStats::new();
        let reg = Registry::new();
        reg.counter("jobs.done").add(3);
        reg.gauge("queue depth").set(7);
        reg.timer("phase.time").record_ns(1_500_000_000);
        reg.histogram("sizes", &[8, 64]).record(9);
        let text = render_openmetrics(&reg.snapshot(), &stats.snapshot(), 2, &[]);
        assert!(text
            .contains("# TYPE mbp_registry_jobs_done counter\nmbp_registry_jobs_done_total 3\n"));
        assert!(text.contains("mbp_registry_queue_depth 7\n"));
        assert!(text.contains("mbp_registry_queue_depth_high_water 7\n"));
        assert!(text.contains("mbp_registry_phase_time_seconds_total 1.500000000\n"));
        assert!(text.contains("mbp_registry_phase_time_spans_total 1\n"));
        assert!(text.contains("mbp_registry_sizes_bucket{le=\"64\"} 1\n"));
        assert!(text.contains("mbp_registry_sizes_sum 9\n"));
        assert!(text.contains("mbp_events_dropped_total 2\n"));
    }

    #[test]
    fn empty_histogram_renders_zero_count_and_only_inf_populated() {
        let stats = PipelineStats::new();
        let reg = Registry::new();
        // Declared but never recorded into.
        let _ = reg.histogram("never.recorded", &[1, 10]);
        let text = render_openmetrics(&reg.snapshot(), &stats.snapshot(), 0, &[]);
        assert!(text.contains("# TYPE mbp_registry_never_recorded histogram"));
        assert!(text.contains("mbp_registry_never_recorded_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("mbp_registry_never_recorded_bucket{le=\"10\"} 0\n"));
        assert!(text.contains("mbp_registry_never_recorded_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("mbp_registry_never_recorded_sum 0\n"));
        assert!(text.contains("mbp_registry_never_recorded_count 0\n"));
    }

    #[test]
    fn sanitized_name_collision_renders_both_samples_under_one_name() {
        // "a.b" and "a b" both sanitize to "a_b". Distinct registry entries
        // survive as distinct samples of the same family name; scrapers see
        // the duplicate, which is the documented (and diffable) behavior.
        let stats = PipelineStats::new();
        let reg = Registry::new();
        reg.counter("a.b").add(1);
        reg.counter("a b").add(2);
        let text = render_openmetrics(&reg.snapshot(), &stats.snapshot(), 0, &[]);
        let samples: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("mbp_registry_a_b_total"))
            .collect();
        assert_eq!(
            samples,
            ["mbp_registry_a_b_total 2", "mbp_registry_a_b_total 1"],
            "both colliding entries render, in name-sorted snapshot order"
        );
    }

    #[test]
    fn h2p_family_renders_labels_with_escaping() {
        let stats = PipelineStats::new();
        let rows = [
            H2pRow {
                predictor: "tage".into(),
                worst_ip: Some(0x40),
                worst_mispredictions: 17,
            },
            H2pRow {
                predictor: "we\"ird\\nm\ne".into(),
                worst_ip: None,
                worst_mispredictions: 0,
            },
        ];
        let text = render_openmetrics(&Snapshot::default(), &stats.snapshot(), 0, &rows);
        assert!(text.contains("# TYPE mbp_h2p_worst_branch_mispredictions gauge"));
        assert!(text.contains("mbp_h2p_worst_branch_mispredictions{predictor=\"tage\"} 17\n"));
        assert!(
            text.contains(
                "mbp_h2p_worst_branch_mispredictions{predictor=\"we\\\"ird\\\\nm\\ne\"} 0\n"
            ),
            "label escaping, got:\n{text}"
        );
        assert!(text.contains("mbp_h2p_worst_branch_ip{predictor=\"tage\"} 64\n"));
        assert!(
            !text.contains("mbp_h2p_worst_branch_ip{predictor=\"we"),
            "no ip sample for a predictor without a worst branch"
        );

        // Empty rows: family omitted entirely.
        let text = render_openmetrics(&Snapshot::default(), &stats.snapshot(), 0, &[]);
        assert!(!text.contains("mbp_h2p_"));
    }
}
