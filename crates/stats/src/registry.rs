//! A named metric registry with deterministic snapshots.
//!
//! The pipeline's own instrumentation lives in the zero-lookup statics of
//! [`crate::pipeline`]; the registry serves everything else — ad-hoc
//! experiment counters, per-predictor probes, test harness bookkeeping —
//! where a name-keyed register-on-first-use surface beats threading handles
//! through call chains. Metrics are `Arc`-shared, so a handle obtained once
//! can be bumped from any thread without touching the registry lock again.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metric::{Counter, Gauge, HistogramSnapshot, Timer};

/// A dynamic histogram for registry use (the static pipeline domains use
/// the const-generic [`crate::Histogram`] instead).
#[derive(Debug)]
pub struct DynHistogram {
    bounds: Vec<u64>,
    buckets: Vec<std::sync::atomic::AtomicU64>,
    overflow: std::sync::atomic::AtomicU64,
    sum: std::sync::atomic::AtomicU64,
    count: std::sync::atomic::AtomicU64,
}

impl DynHistogram {
    /// Creates a histogram with ascending upper bounds.
    pub fn new(bounds: Vec<u64>) -> Self {
        let buckets = bounds
            .iter()
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        Self {
            bounds,
            buckets,
            overflow: std::sync::atomic::AtomicU64::new(0),
            sum: std::sync::atomic::AtomicU64::new(0),
            count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Relaxed),
            None => self.overflow.fetch_add(1, Relaxed),
        };
        self.sum.fetch_add(value, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        use std::sync::atomic::Ordering::Relaxed;
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            overflow: self.overflow.load(Relaxed),
            sum: self.sum.load(Relaxed),
            count: self.count.load(Relaxed),
        }
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Timer(Arc<Timer>),
    Histogram(Arc<DynHistogram>),
}

/// The value of one metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge: last value and high-water mark.
    Gauge {
        /// Last value set.
        value: u64,
        /// Largest value ever set.
        high_water: u64,
    },
    /// Timer: accumulated nanoseconds and closed spans.
    Timer {
        /// Accumulated nanoseconds.
        total_ns: u64,
        /// Closed spans.
        spans: u64,
    },
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A deterministic (name-sorted) point-in-time view of a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// A name-keyed collection of metrics.
///
/// # Examples
///
/// ```
/// use mbp_stats::Registry;
///
/// let registry = Registry::new();
/// let decoded = registry.counter("trace.packets_decoded");
/// decoded.add(2048);
/// let snap = registry.snapshot();
/// assert!(matches!(
///     snap.get("trace.packets_decoded"),
///     Some(mbp_stats::SnapshotValue::Counter(2048))
/// ));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Re-registering a name under a different metric kind returns a
    /// fresh unregistered instance rather than panicking.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Returns the timer registered under `name`, creating it on first use.
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Arc::new(Timer::new())))
        {
            Metric::Timer(t) => Arc::clone(t),
            _ => Arc::new(Timer::new()),
        }
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bounds on first use (later bounds are ignored).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<DynHistogram> {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(DynHistogram::new(bounds.to_vec()))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(DynHistogram::new(bounds.to_vec())),
        }
    }

    /// A deterministic, name-sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.lock();
        Snapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                        Metric::Timer(t) => SnapshotValue::Timer {
                            total_ns: t.total_ns(),
                            spans: t.spans(),
                        },
                        Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// The process-wide default registry, created on first use.
///
/// The pipeline's own instrumentation lives in the [`crate::pipeline`]
/// statics; this registry is the shared home for everything else that wants
/// to show up on live surfaces (the `/metrics` exposition endpoint scrapes
/// both). Handles are `Arc`-shared, so fetch once and bump forever.
pub fn registry() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_share_everywhere() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.depth").set(9);
        r.timer("c.time").record_ns(50);
        r.histogram("d.sizes", &[10, 100]).record(7);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.depth", "b.count", "c.time", "d.sizes"]);
        assert_eq!(
            snap.get("a.depth"),
            Some(&SnapshotValue::Gauge {
                value: 9,
                high_water: 9
            })
        );
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn kind_mismatch_degrades_to_detached_metric() {
        let r = Registry::new();
        r.counter("name").add(5);
        // Asking for the same name as a gauge must not panic or corrupt the
        // registered counter.
        let g = r.gauge("name");
        g.set(1);
        assert!(matches!(
            r.snapshot().get("name"),
            Some(SnapshotValue::Counter(5))
        ));
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let r = std::sync::Arc::new(Registry::new());
        let c = r.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
