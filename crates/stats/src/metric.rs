//! Metric primitives: monotonic counters, gauges, fixed-bucket histograms
//! and the [`ScopedTimer`] span guard.
//!
//! Every primitive is a thin wrapper over relaxed atomics, so instrumented
//! code pays one uncontended atomic add per event and any thread (the sweep
//! worker pool included) can record without locks. Timers can be disabled
//! globally ([`set_enabled`]); a disabled span skips the clock reads and
//! costs a single relaxed load.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Global timer switch. Counters and gauges are always on (an atomic add is
/// cheaper than checking the switch); only the clock reads of [`Timer`]
/// spans are gated.
static TIMING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span timing process-wide.
pub fn set_enabled(enabled: bool) {
    TIMING_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span timing is currently enabled.
pub fn enabled() -> bool {
    TIMING_ENABLED.load(Ordering::Relaxed)
}

/// A monotonic counter. Never decreases; wraps only after 2^64 events.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter (const, so counters can live in statics).
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests and per-run deltas).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge with a monotone-maximum companion.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Sets the current value, tracking the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Last value set.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn high_water(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Resets value and high-water mark to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// `N` upper bounds (ascending) define `N` buckets of `value <= bound`,
/// plus one overflow bucket; sum and count are tracked so snapshots can
/// derive means without walking buckets.
#[derive(Debug)]
pub struct Histogram<const N: usize> {
    bounds: [u64; N],
    buckets: [AtomicU64; N],
    overflow: AtomicU64,
    sum: AtomicU64,
    count: AtomicU64,
}

/// An owned, point-in-time copy of a histogram's state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Sample counts per bucket (`value <= bound`), one per bound.
    pub counts: Vec<u64>,
    /// Samples above the last bound.
    pub overflow: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, or zero with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all recorded samples (accessor form of the `sum` field, for
    /// call sites that hold the snapshot behind a trait or reference).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Cumulative bucket counts in Prometheus `le` semantics: element `i`
    /// is the number of samples `<= bounds[i]`, and one trailing element
    /// (the `+Inf` bucket) includes the overflow count, so the final value
    /// always equals [`HistogramSnapshot::count`].
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.counts.len() + 1);
        let mut running = 0u64;
        for &c in &self.counts {
            running = running.saturating_add(c);
            out.push(running);
        }
        out.push(running.saturating_add(self.overflow));
        out
    }
}

impl<const N: usize> Histogram<N> {
    /// Creates a histogram with the given ascending upper bounds.
    pub const fn new(bounds: [u64; N]) -> Self {
        Self {
            bounds,
            buckets: [const { AtomicU64::new(0) }; N],
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the whole histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Resets every bucket and the aggregates to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Accumulated span time: total nanoseconds plus how many spans closed.
#[derive(Debug, Default)]
pub struct Timer {
    ns: Counter,
    spans: Counter,
}

impl Timer {
    /// Creates a zeroed timer.
    pub const fn new() -> Self {
        Self {
            ns: Counter::new(),
            spans: Counter::new(),
        }
    }

    /// Opens a span; the elapsed time is added when the guard drops. When
    /// timing is disabled ([`set_enabled`]) the span is a no-op guard that
    /// never reads the clock.
    #[inline]
    pub fn span(&self) -> ScopedTimer<'_> {
        ScopedTimer {
            timer: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Adds a measured duration directly (for callers that already timed).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.ns.add(ns);
        self.spans.inc();
    }

    /// Total accumulated nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.get()
    }

    /// Number of closed spans.
    pub fn spans(&self) -> u64 {
        self.spans.get()
    }

    /// Total accumulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.ns.get() as f64 / 1e9
    }

    /// Resets accumulated time and span count.
    pub fn reset(&self) {
        self.ns.reset();
        self.spans.reset();
    }
}

/// RAII span guard: measures from creation to drop and adds the elapsed
/// nanoseconds to its [`Timer`].
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    timer: &'a Timer,
    start: Option<Instant>,
}

impl ScopedTimer<'_> {
    /// Closes the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // u64 nanoseconds cover ~584 years of span time; saturate
            // rather than wrap if a clock ever misbehaves.
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.timer.record_ns(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 7);
        g.reset();
        assert_eq!(g.high_water(), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h: Histogram<3> = Histogram::new([10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 2, 0]);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5126);
        assert!((s.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    fn snapshot_cumulative_counts_end_at_total() {
        let h: Histogram<3> = Histogram::new([10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000, 6000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Per-bucket [2, 2, 0] + overflow 2 → cumulative [2, 4, 4, 6].
        assert_eq!(s.cumulative_counts(), vec![2, 4, 4, 6]);
        assert_eq!(*s.cumulative_counts().last().unwrap(), s.count);
        assert_eq!(s.sum(), s.sum);
    }

    #[test]
    fn empty_snapshot_cumulative_counts_are_zero() {
        let h: Histogram<2> = Histogram::new([1, 2]);
        let s = h.snapshot();
        assert_eq!(s.cumulative_counts(), vec![0, 0, 0]);
        assert_eq!(s.sum(), 0);
    }

    /// Serializes the tests that flip the global timing switch.
    static ENABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn timer_spans_accumulate() {
        let _guard = ENABLE_LOCK.lock().unwrap();
        let t = Timer::new();
        {
            let _span = t.span();
        }
        t.record_ns(1000);
        assert_eq!(t.spans(), 2);
        assert!(t.total_ns() >= 1000);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = ENABLE_LOCK.lock().unwrap();
        let t = Timer::new();
        set_enabled(false);
        {
            let _span = t.span();
        }
        set_enabled(true);
        assert_eq!(t.spans(), 0);
        assert_eq!(t.total_ns(), 0);
    }
}
