//! The static metric domains threaded through the MBPlib pipeline.
//!
//! Each stage of the pipeline owns one domain struct of process-wide
//! metrics: trace decoding, block decompression, simulation, the sweep
//! worker pool, and workload generation. The statics are reachable without
//! locks or registry lookups, so the instrumentation cost on a hot path is
//! one relaxed atomic add per *block* of work (the SBBT reader batches 2048
//! packets per `fill_batch`; the codecs inflate 64 KiB-scale blocks), never
//! per record.
//!
//! [`PipelineStats::snapshot`] produces a plain-data [`PipelineSnapshot`]
//! with derived rates; rendering to JSON lives downstream (`mbp`), keeping
//! this crate dependency-free.

use crate::metric::{Counter, Histogram, HistogramSnapshot, Timer};

/// Trace-ingestion metrics (`crates/trace`).
#[derive(Debug, Default)]
pub struct TraceStats {
    /// Bytes handed to a trace reader (after decompression, i.e. the raw
    /// SBBT stream the decoder walks).
    pub bytes_read: Counter,
    /// Branch packets decoded.
    pub packets_decoded: Counter,
    /// `fill_batch` blocks served.
    pub batches: Counter,
    /// Time spent decoding packets into records.
    pub decode: Timer,
}

/// Decompression metrics (`crates/compress`).
#[derive(Debug)]
pub struct CompressStats {
    /// Entropy-coded or raw blocks inflated.
    pub blocks_inflated: Counter,
    /// Compressed bytes consumed.
    pub compressed_bytes: Counter,
    /// Uncompressed bytes produced.
    pub inflated_bytes: Counter,
    /// Time spent inflating.
    pub inflate: Timer,
    /// Per-block inflate ratio in percent (`100 * out / in`): 100 ≈ stored
    /// raw, 400 = 4× expansion. Buckets at 1×/2×/4×/8×/16×/32×.
    pub block_ratio_pct: Histogram<6>,
}

/// Simulation-driver metrics (`crates/core`).
#[derive(Debug, Default)]
pub struct SimStats {
    /// `simulate`/`simulate_scalar` invocations.
    pub runs: Counter,
    /// Branch records consumed by the drivers.
    pub records: Counter,
    /// Instructions those records span.
    pub instructions: Counter,
    /// Time spent inside `TraceSource::fill_batch` (decode share).
    pub fill_batch: Timer,
    /// Wall time of whole simulation runs (includes the decode share).
    pub simulate: Timer,
    /// Records processed through `Predictor::predict_batch` (the batched
    /// kernel fast path of `simulate`).
    pub kernel_branches: Counter,
    /// Records processed one at a time: warm-up and cut-off windows,
    /// timeseries runs, and the scalar reference driver.
    pub scalar_fallback_branches: Counter,
}

/// Sweep-engine metrics (`crates/core::simulate_many`).
#[derive(Debug)]
pub struct SweepStats {
    /// Worker threads spawned.
    pub workers: Counter,
    /// Predictors claimed and simulated (successfully or not).
    pub predictors: Counter,
    /// Worker failures caught by `catch_unwind`.
    pub faults: Counter,
    /// Trace errors observed by workers (failures that did not panic).
    pub trace_errors: Counter,
    /// Per-worker busy time (claim-to-report, summed over all workers).
    pub worker_busy: Timer,
    /// Per-predictor simulation time in microseconds. Buckets at
    /// 100 µs / 1 ms / 10 ms / 100 ms / 1 s / 10 s.
    pub predictor_us: Histogram<6>,
    /// Checkpoint records flushed (one per completed or failed predictor).
    pub checkpoint_writes: Counter,
    /// Predictors skipped on resume because the checkpoint already held
    /// their result.
    pub resume_skips: Counter,
    /// Deadline-watchdog firings (cancellations of stuck/slow predictors).
    pub deadline_fired: Counter,
    /// One-shot deadline extensions granted to progress-making predictors.
    pub deadline_extensions: Counter,
    /// Waits for memory-budget admission (worker parked until the ledger
    /// had room for its predictor's `size_hint`).
    pub admission_waits: Counter,
    /// Graceful-shutdown drains begun (work stopped being admitted).
    pub shutdown_drains: Counter,
    /// Representative slices replayed by the phase-sampled executor.
    pub sampled_slices: Counter,
    /// Instructions simulated inside measured representative slices.
    pub sampled_instructions: Counter,
    /// Instructions replayed for warmup ahead of representative slices.
    pub replayed_instructions: Counter,
}

/// Workload-generation metrics (`crates/workloads`).
#[derive(Debug, Default)]
pub struct WorkloadStats {
    /// Branch records synthesized.
    pub records_generated: Counter,
    /// Generator refill passes executed.
    pub refills: Counter,
    /// Time spent generating.
    pub generate: Timer,
}

/// Every pipeline domain, as one process-wide static ([`pipeline`]).
#[derive(Debug)]
pub struct PipelineStats {
    /// Trace ingestion.
    pub trace: TraceStats,
    /// Decompression.
    pub compress: CompressStats,
    /// Simulation drivers.
    pub sim: SimStats,
    /// Sweep engine.
    pub sweep: SweepStats,
    /// Workload generation.
    pub workload: WorkloadStats,
}

impl PipelineStats {
    /// Creates a zeroed pipeline-stats instance with the canonical
    /// histogram bounds (const, so it can back the process-wide static).
    pub const fn new() -> Self {
        Self {
            trace: TraceStats {
                bytes_read: Counter::new(),
                packets_decoded: Counter::new(),
                batches: Counter::new(),
                decode: Timer::new(),
            },
            compress: CompressStats {
                blocks_inflated: Counter::new(),
                compressed_bytes: Counter::new(),
                inflated_bytes: Counter::new(),
                inflate: Timer::new(),
                block_ratio_pct: Histogram::new([100, 200, 400, 800, 1600, 3200]),
            },
            sim: SimStats {
                runs: Counter::new(),
                records: Counter::new(),
                instructions: Counter::new(),
                fill_batch: Timer::new(),
                simulate: Timer::new(),
                kernel_branches: Counter::new(),
                scalar_fallback_branches: Counter::new(),
            },
            sweep: SweepStats {
                workers: Counter::new(),
                predictors: Counter::new(),
                faults: Counter::new(),
                trace_errors: Counter::new(),
                worker_busy: Timer::new(),
                predictor_us: Histogram::new([100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]),
                checkpoint_writes: Counter::new(),
                resume_skips: Counter::new(),
                deadline_fired: Counter::new(),
                deadline_extensions: Counter::new(),
                admission_waits: Counter::new(),
                shutdown_drains: Counter::new(),
                sampled_slices: Counter::new(),
                sampled_instructions: Counter::new(),
                replayed_instructions: Counter::new(),
            },
            workload: WorkloadStats {
                records_generated: Counter::new(),
                refills: Counter::new(),
                generate: Timer::new(),
            },
        }
    }
}

impl Default for PipelineStats {
    fn default() -> Self {
        Self::new()
    }
}

static PIPELINE: PipelineStats = PipelineStats::new();

/// The process-wide pipeline metrics.
pub fn pipeline() -> &'static PipelineStats {
    &PIPELINE
}

/// Plain-data view of one timer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimerSnapshot {
    /// Accumulated nanoseconds.
    pub total_ns: u64,
    /// Closed spans.
    pub spans: u64,
}

impl TimerSnapshot {
    fn of(t: &Timer) -> Self {
        Self {
            total_ns: t.total_ns(),
            spans: t.spans(),
        }
    }

    /// Accumulated seconds.
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Point-in-time copy of every pipeline domain, with derived rates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineSnapshot {
    /// Trace: bytes handed to readers.
    pub trace_bytes_read: u64,
    /// Trace: packets decoded.
    pub trace_packets_decoded: u64,
    /// Trace: batches served.
    pub trace_batches: u64,
    /// Trace: decode time.
    pub trace_decode: TimerSnapshot,
    /// Compress: blocks inflated.
    pub compress_blocks: u64,
    /// Compress: compressed bytes in.
    pub compress_bytes_in: u64,
    /// Compress: inflated bytes out.
    pub compress_bytes_out: u64,
    /// Compress: inflate time.
    pub compress_inflate: TimerSnapshot,
    /// Compress: per-block ratio histogram (percent).
    pub compress_block_ratio_pct: HistogramSnapshot,
    /// Sim: driver invocations.
    pub sim_runs: u64,
    /// Sim: records consumed.
    pub sim_records: u64,
    /// Sim: instructions spanned.
    pub sim_instructions: u64,
    /// Sim: fill_batch time.
    pub sim_fill_batch: TimerSnapshot,
    /// Sim: whole-run time.
    pub sim_simulate: TimerSnapshot,
    /// Sim: records through the batched kernel fast path.
    pub sim_kernel_branches: u64,
    /// Sim: records through the one-at-a-time fallback path.
    pub sim_scalar_fallback_branches: u64,
    /// Sweep: workers spawned.
    pub sweep_workers: u64,
    /// Sweep: predictors simulated.
    pub sweep_predictors: u64,
    /// Sweep: panics caught.
    pub sweep_faults: u64,
    /// Sweep: trace errors seen by workers.
    pub sweep_trace_errors: u64,
    /// Sweep: summed worker busy time.
    pub sweep_worker_busy: TimerSnapshot,
    /// Sweep: per-predictor simulation time (µs) histogram.
    pub sweep_predictor_us: HistogramSnapshot,
    /// Sweep: checkpoint records flushed.
    pub sweep_checkpoint_writes: u64,
    /// Sweep: predictors skipped on resume.
    pub sweep_resume_skips: u64,
    /// Sweep: deadline-watchdog firings.
    pub sweep_deadline_fired: u64,
    /// Sweep: one-shot deadline extensions granted.
    pub sweep_deadline_extensions: u64,
    /// Sweep: memory-budget admission waits.
    pub sweep_admission_waits: u64,
    /// Sweep: graceful-shutdown drains begun.
    pub sweep_shutdown_drains: u64,
    /// Sweep: representative slices replayed by the sampled executor.
    pub sweep_sampled_slices: u64,
    /// Sweep: instructions measured inside representative slices.
    pub sweep_sampled_instructions: u64,
    /// Sweep: instructions replayed for warmup ahead of slices.
    pub sweep_replayed_instructions: u64,
    /// Workloads: records generated.
    pub workload_records: u64,
    /// Workloads: refill passes.
    pub workload_refills: u64,
    /// Workloads: generation time.
    pub workload_generate: TimerSnapshot,
}

impl PipelineSnapshot {
    /// Overall inflate ratio (`out / in`), or zero when nothing inflated.
    pub fn inflate_ratio(&self) -> f64 {
        if self.compress_bytes_in == 0 {
            0.0
        } else {
            self.compress_bytes_out as f64 / self.compress_bytes_in as f64
        }
    }

    /// Simulated branch records per second of simulate time.
    pub fn branches_per_second(&self) -> f64 {
        let secs = self.sim_simulate.seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.sim_records as f64 / secs
        }
    }

    /// Simulated instructions per second of simulate time.
    pub fn instructions_per_second(&self) -> f64 {
        let secs = self.sim_simulate.seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.sim_instructions as f64 / secs
        }
    }

    /// Packets decoded per second of decode time.
    pub fn packets_per_second(&self) -> f64 {
        let secs = self.trace_decode.seconds();
        if secs == 0.0 {
            0.0
        } else {
            self.trace_packets_decoded as f64 / secs
        }
    }
}

impl PipelineStats {
    /// Copies every domain into a plain-data snapshot.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            trace_bytes_read: self.trace.bytes_read.get(),
            trace_packets_decoded: self.trace.packets_decoded.get(),
            trace_batches: self.trace.batches.get(),
            trace_decode: TimerSnapshot::of(&self.trace.decode),
            compress_blocks: self.compress.blocks_inflated.get(),
            compress_bytes_in: self.compress.compressed_bytes.get(),
            compress_bytes_out: self.compress.inflated_bytes.get(),
            compress_inflate: TimerSnapshot::of(&self.compress.inflate),
            compress_block_ratio_pct: self.compress.block_ratio_pct.snapshot(),
            sim_runs: self.sim.runs.get(),
            sim_records: self.sim.records.get(),
            sim_instructions: self.sim.instructions.get(),
            sim_fill_batch: TimerSnapshot::of(&self.sim.fill_batch),
            sim_simulate: TimerSnapshot::of(&self.sim.simulate),
            sim_kernel_branches: self.sim.kernel_branches.get(),
            sim_scalar_fallback_branches: self.sim.scalar_fallback_branches.get(),
            sweep_workers: self.sweep.workers.get(),
            sweep_predictors: self.sweep.predictors.get(),
            sweep_faults: self.sweep.faults.get(),
            sweep_trace_errors: self.sweep.trace_errors.get(),
            sweep_worker_busy: TimerSnapshot::of(&self.sweep.worker_busy),
            sweep_predictor_us: self.sweep.predictor_us.snapshot(),
            sweep_checkpoint_writes: self.sweep.checkpoint_writes.get(),
            sweep_resume_skips: self.sweep.resume_skips.get(),
            sweep_deadline_fired: self.sweep.deadline_fired.get(),
            sweep_deadline_extensions: self.sweep.deadline_extensions.get(),
            sweep_admission_waits: self.sweep.admission_waits.get(),
            sweep_shutdown_drains: self.sweep.shutdown_drains.get(),
            sweep_sampled_slices: self.sweep.sampled_slices.get(),
            sweep_sampled_instructions: self.sweep.sampled_instructions.get(),
            sweep_replayed_instructions: self.sweep.replayed_instructions.get(),
            workload_records: self.workload.records_generated.get(),
            workload_refills: self.workload.refills.get(),
            workload_generate: TimerSnapshot::of(&self.workload.generate),
        }
    }

    /// Resets every domain to zero (tests and per-phase deltas).
    pub fn reset(&self) {
        self.trace.bytes_read.reset();
        self.trace.packets_decoded.reset();
        self.trace.batches.reset();
        self.trace.decode.reset();
        self.compress.blocks_inflated.reset();
        self.compress.compressed_bytes.reset();
        self.compress.inflated_bytes.reset();
        self.compress.inflate.reset();
        self.compress.block_ratio_pct.reset();
        self.sim.runs.reset();
        self.sim.records.reset();
        self.sim.instructions.reset();
        self.sim.fill_batch.reset();
        self.sim.simulate.reset();
        self.sim.kernel_branches.reset();
        self.sim.scalar_fallback_branches.reset();
        self.sweep.workers.reset();
        self.sweep.predictors.reset();
        self.sweep.faults.reset();
        self.sweep.trace_errors.reset();
        self.sweep.worker_busy.reset();
        self.sweep.predictor_us.reset();
        self.sweep.checkpoint_writes.reset();
        self.sweep.resume_skips.reset();
        self.sweep.deadline_fired.reset();
        self.sweep.deadline_extensions.reset();
        self.sweep.admission_waits.reset();
        self.sweep.shutdown_drains.reset();
        self.sweep.sampled_slices.reset();
        self.sweep.sampled_instructions.reset();
        self.sweep.replayed_instructions.reset();
        self.workload.records_generated.reset();
        self.workload.refills.reset();
        self.workload.generate.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates_and_rates() {
        // The pipeline statics are process-global; build a local instance so
        // this test does not race other tests (or instrumented code).
        let stats = PipelineStats::default();
        stats.trace.bytes_read.add(1024);
        stats.trace.packets_decoded.add(2048);
        stats.trace.batches.inc();
        stats.compress.compressed_bytes.add(100);
        stats.compress.inflated_bytes.add(400);
        stats.compress.block_ratio_pct.record(400);
        stats.sim.records.add(1000);
        stats.sim.instructions.add(5000);
        stats.sim.simulate.record_ns(1_000_000_000);
        let snap = stats.snapshot();
        assert_eq!(snap.trace_bytes_read, 1024);
        assert_eq!(snap.trace_packets_decoded, 2048);
        assert!((snap.inflate_ratio() - 4.0).abs() < 1e-12);
        assert!((snap.branches_per_second() - 1000.0).abs() < 1e-6);
        assert!((snap.instructions_per_second() - 5000.0).abs() < 1e-6);
        assert_eq!(snap.compress_block_ratio_pct.count, 1);
    }

    #[test]
    fn reset_zeroes_every_domain() {
        let stats = PipelineStats::default();
        stats.sweep.faults.inc();
        stats.workload.records_generated.add(7);
        stats.reset();
        assert_eq!(stats.snapshot(), PipelineStats::new().snapshot());
    }

    #[test]
    fn global_pipeline_is_reachable() {
        // Only checks reachability; values are shared with the whole
        // process, so no assertions on contents.
        let _ = pipeline().snapshot();
    }

    #[test]
    fn empty_snapshot_rates_are_zero() {
        let snap = PipelineSnapshot::default();
        assert_eq!(snap.inflate_ratio(), 0.0);
        assert_eq!(snap.branches_per_second(), 0.0);
        assert_eq!(snap.packets_per_second(), 0.0);
    }
}
