//! The structured event journal: timeline-level observability to complement
//! the aggregate counters of [`crate::pipeline`].
//!
//! Aggregates answer *how much*; the journal answers *when*. Instrumented
//! code emits **span begin/end pairs** (via the RAII [`EventSpan`] guard),
//! **instant events** (a point occurrence, e.g. a sweep worker catching a
//! panic) and **sample events** (a counter's value at a moment in time, for
//! throughput-over-time curves). Downstream tooling (`mbp::events_export`)
//! renders a drained journal as Chrome trace-event JSON for
//! Perfetto/`chrome://tracing`, or as a compact JSONL stream.
//!
//! # Design
//!
//! * **Off by default, near-zero when off.** Recording requires *both* the
//!   existing global switch ([`crate::enabled`]) and the journal's own
//!   opt-in ([`set_events_enabled`]); a disabled emit is one relaxed load
//!   and a branch. Hot loops only call into the journal at *batch*
//!   granularity, never per record.
//! * **Lock-free, sharded rings.** Events land in one of [`SHARDS`] ring
//!   buffers selected by thread id, so sweep workers never contend on a
//!   lock. Writers claim a slot with one `fetch_add` and publish it with a
//!   release store of a per-slot sequence word; a concurrent drain detects
//!   torn or in-flight slots via that sequence and skips them.
//! * **Drop-oldest.** Each shard holds [`SHARD_CAPACITY`] events; when a
//!   ring wraps, the oldest events are overwritten and
//!   [`dropped_events`] counts every casualty. A long run therefore keeps
//!   its most recent window — the part a timeline viewer needs to explain
//!   "what was happening when it got slow".
//! * **Monotonic timestamps.** Timestamps are nanoseconds since the first
//!   enable ([`set_events_enabled`]), taken from [`Instant`], and bumped to
//!   be strictly increasing per shard, so per-thread event order is always
//!   reconstructible.
//!
//! ```
//! use mbp_stats::events::{self, EventKind, EventName};
//!
//! events::set_events_enabled(true);
//! events::clear();
//! {
//!     let _span = events::span(EventName::SimSimulate);
//!     events::instant(EventName::SweepPredictorDone, 42);
//! }
//! let drained = events::drain();
//! assert!(drained.iter().any(|e| e.kind == EventKind::Instant));
//! events::set_events_enabled(false);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of ring-buffer shards. Threads map to shards by id, so any
/// realistic worker pool (sweeps cap at the core count) gets a private ring.
pub const SHARDS: usize = 32;

/// Events retained per shard before the ring wraps and drops oldest.
pub const SHARD_CAPACITY: usize = 2048;

/// Default sampling interval for [`batch_tick`], in batches. At the SBBT
/// block size of 2048 records this samples roughly every 128k records.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Journal opt-in switch (the second gate; [`crate::enabled`] is the first).
static EVENTS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Events dropped to ring wrap-around since the last [`clear`].
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Batches observed by [`batch_tick`] since the last [`clear`].
static BATCH_TICKS: AtomicU64 = AtomicU64::new(0);

/// Sampling interval in batches; `0` disables periodic sampling.
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);

/// The timestamp epoch: set once, on the first enable.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonically increasing thread-id source (ids start at 1).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's journal id, assigned on first use.
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's journal id (stable for the thread's lifetime).
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Enables or disables event recording process-wide. The first enable pins
/// the timestamp epoch; timestamps from all later sessions share it, so
/// events from separate phases of one process remain comparable.
pub fn set_events_enabled(enabled: bool) {
    if enabled {
        let _ = EPOCH.get_or_init(Instant::now);
    }
    EVENTS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether event recording is currently on (both gates open).
#[inline]
pub fn events_enabled() -> bool {
    EVENTS_ENABLED.load(Ordering::Relaxed) && crate::enabled()
}

/// Nanoseconds since the journal epoch (zero before the first enable).
fn now_ns() -> u64 {
    match EPOCH.get() {
        Some(epoch) => u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
        None => 0,
    }
}

/// What an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened (matched by a later [`EventKind::SpanEnd`] on the same
    /// thread; spans nest per thread).
    SpanBegin = 0,
    /// A span closed.
    SpanEnd = 1,
    /// A point occurrence with a payload argument.
    Instant = 2,
    /// A counter's value at this moment (time-series sample).
    Sample = 3,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::SpanBegin),
            1 => Some(Self::SpanEnd),
            2 => Some(Self::Instant),
            3 => Some(Self::Sample),
            _ => None,
        }
    }

    /// Stable lowercase identifier (used by the JSONL export).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::SpanBegin => "span_begin",
            Self::SpanEnd => "span_end",
            Self::Instant => "instant",
            Self::Sample => "sample",
        }
    }
}

/// The fixed vocabulary of instrumentation sites and sampled series.
///
/// A closed enum (rather than interned strings) keeps the hot path free of
/// any lookup: a name is one byte in the packed event word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventName {
    /// SBBT reader decoding one 2048-packet block.
    TraceFillBatch = 0,
    /// Codec inflating one compressed trace (all blocks).
    CompressInflate = 1,
    /// One whole simulation run (`simulate`/`simulate_scalar`).
    SimSimulate = 2,
    /// The simulator pulling one batch from its source.
    SimFillBatch = 3,
    /// Sweep phase 1: the single decode pass.
    SweepDecode = 4,
    /// A sweep worker busy on one predictor (claim to report).
    SweepWorker = 5,
    /// A sweep worker finished a predictor (arg = simulation µs).
    SweepPredictorDone = 6,
    /// A sweep worker caught a predictor panic (arg = predictor index).
    SweepFault = 7,
    /// A sweep worker observed a trace error (arg = predictor index).
    SweepTraceError = 8,
    /// Workload generator refilling its record buffer.
    WorkloadGenerate = 9,
    /// Sample series: cumulative branch records simulated.
    SampleSimRecords = 10,
    /// Sample series: cumulative instructions simulated.
    SampleSimInstructions = 11,
    /// Sample series: cumulative trace packets decoded.
    SamplePacketsDecoded = 12,
    /// Sample series: cumulative bytes inflated by the codecs.
    SampleInflatedBytes = 13,
    /// The simulator closed one timeseries window (arg = window index).
    SimWindowTick = 14,
    /// A simulation run finished; arg = records it pushed through the
    /// batched `predict_batch` kernel path (0 = the run never left the
    /// scalar fallback).
    SimKernelBranches = 15,
    /// The sweep engine flushed one checkpoint record (arg = records in the
    /// checkpoint so far).
    CheckpointWrite = 16,
    /// The deadline watchdog cancelled a predictor (arg = predictor index).
    DeadlineFired = 17,
    /// A worker waited for memory-budget admission (arg = predictor index).
    AdmissionWait = 18,
    /// Graceful shutdown began draining in-flight predictors (arg = jobs
    /// still in flight at that moment).
    ShutdownDrain = 19,
    /// A phases document was extracted from a trace (arg = BBV windows).
    SimpointExtract = 20,
    /// The sampled executor finished one representative slice (arg = the
    /// slice's window index).
    SimpointSampledSlice = 21,
    /// A telemetry client scraped a live endpoint (arg = scrapes served so
    /// far, including this one).
    TelemetryScrape = 22,
}

impl EventName {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::TraceFillBatch),
            1 => Some(Self::CompressInflate),
            2 => Some(Self::SimSimulate),
            3 => Some(Self::SimFillBatch),
            4 => Some(Self::SweepDecode),
            5 => Some(Self::SweepWorker),
            6 => Some(Self::SweepPredictorDone),
            7 => Some(Self::SweepFault),
            8 => Some(Self::SweepTraceError),
            9 => Some(Self::WorkloadGenerate),
            10 => Some(Self::SampleSimRecords),
            11 => Some(Self::SampleSimInstructions),
            12 => Some(Self::SamplePacketsDecoded),
            13 => Some(Self::SampleInflatedBytes),
            14 => Some(Self::SimWindowTick),
            15 => Some(Self::SimKernelBranches),
            16 => Some(Self::CheckpointWrite),
            17 => Some(Self::DeadlineFired),
            18 => Some(Self::AdmissionWait),
            19 => Some(Self::ShutdownDrain),
            20 => Some(Self::SimpointExtract),
            21 => Some(Self::SimpointSampledSlice),
            22 => Some(Self::TelemetryScrape),
            _ => None,
        }
    }

    /// Stable dotted identifier (shown in trace viewers).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::TraceFillBatch => "trace.fill_batch",
            Self::CompressInflate => "compress.inflate",
            Self::SimSimulate => "sim.simulate",
            Self::SimFillBatch => "sim.fill_batch",
            Self::SweepDecode => "sweep.decode",
            Self::SweepWorker => "sweep.worker_busy",
            Self::SweepPredictorDone => "sweep.predictor_done",
            Self::SweepFault => "sweep.fault",
            Self::SweepTraceError => "sweep.trace_error",
            Self::WorkloadGenerate => "workloads.generate",
            Self::SampleSimRecords => "sample.sim_records",
            Self::SampleSimInstructions => "sample.sim_instructions",
            Self::SamplePacketsDecoded => "sample.packets_decoded",
            Self::SampleInflatedBytes => "sample.inflated_bytes",
            Self::SimWindowTick => "sim.window_tick",
            Self::SimKernelBranches => "sim.kernel_branches",
            Self::CheckpointWrite => "sweep.checkpoint_write",
            Self::DeadlineFired => "sweep.deadline_fired",
            Self::AdmissionWait => "sweep.admission_wait",
            Self::ShutdownDrain => "sweep.shutdown_drain",
            Self::SimpointExtract => "simpoint.extract",
            Self::SimpointSampledSlice => "simpoint.sampled_slice",
            Self::TelemetryScrape => "telemetry.scrape",
        }
    }
}

/// One drained journal entry, plain data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the journal epoch, strictly increasing per shard.
    pub ts_ns: u64,
    /// Journal thread id of the emitting thread.
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which instrumentation site or sample series.
    pub name: EventName,
    /// Payload: sample value, instant argument, or span annotation.
    pub arg: u64,
}

/// One ring slot: a sequence word for publication/tear detection plus the
/// three event words. `seq == 0` means never written; `seq == n` means the
/// slot holds the shard's `n`-th event (1-based) in full.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    meta: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// One ring buffer. `head` counts events ever written to this shard; the
/// slot for event `h` is `h % SHARD_CAPACITY`.
struct Shard {
    head: AtomicU64,
    last_ts: AtomicU64,
    slots: [Slot; SHARD_CAPACITY],
}

impl Shard {
    const fn new() -> Self {
        Self {
            head: AtomicU64::new(0),
            last_ts: AtomicU64::new(0),
            slots: [const { Slot::new() }; SHARD_CAPACITY],
        }
    }

    /// A timestamp that is monotonic in real time *and* strictly increasing
    /// within this shard (ties are bumped by a nanosecond).
    fn next_ts(&self) -> u64 {
        let now = now_ns();
        let prev = self.last_ts.fetch_max(now, Ordering::Relaxed);
        if prev >= now {
            let bumped = prev + 1;
            self.last_ts.fetch_max(bumped, Ordering::Relaxed);
            bumped
        } else {
            now
        }
    }
}

static JOURNAL: [Shard; SHARDS] = [const { Shard::new() }; SHARDS];

/// Packs kind, name and thread id into one event word.
fn pack_meta(kind: EventKind, name: EventName, tid: u64) -> u64 {
    (tid << 16) | ((name as u64) << 8) | kind as u64
}

/// Inverse of [`pack_meta`]; `None` for torn or foreign words.
fn unpack_meta(meta: u64) -> Option<(EventKind, EventName, u64)> {
    let kind = EventKind::from_u8((meta & 0xFF) as u8)?;
    let name = EventName::from_u8(((meta >> 8) & 0xFF) as u8)?;
    Some((kind, name, meta >> 16))
}

/// Records one event if the journal is enabled; otherwise one relaxed load.
#[inline]
pub fn emit(kind: EventKind, name: EventName, arg: u64) {
    if !events_enabled() {
        return;
    }
    emit_always(kind, name, arg);
}

/// Records one event unconditionally (the guards use this so a span opened
/// while enabled still closes if the journal is switched off mid-span).
fn emit_always(kind: EventKind, name: EventName, arg: u64) {
    let tid = current_thread_id();
    let shard = &JOURNAL[(tid as usize) % SHARDS];
    let ts = shard.next_ts();
    let h = shard.head.fetch_add(1, Ordering::Relaxed);
    if h >= SHARD_CAPACITY as u64 {
        // This write overwrites the shard's oldest retained event.
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    let slot = &shard.slots[(h % SHARD_CAPACITY as u64) as usize];
    // Publication protocol: invalidate, write fields, publish with the
    // 1-based sequence. A drain that observes seq != h+1 (or a changed seq
    // across its field reads) skips the slot instead of reporting torn data.
    slot.seq.store(0, Ordering::Release);
    slot.ts.store(ts, Ordering::Relaxed);
    slot.meta
        .store(pack_meta(kind, name, tid), Ordering::Relaxed);
    slot.arg.store(arg, Ordering::Relaxed);
    slot.seq.store(h + 1, Ordering::Release);
}

/// Records an instant event.
#[inline]
pub fn instant(name: EventName, arg: u64) {
    emit(EventKind::Instant, name, arg);
}

/// Records a time-series sample of `value` for the series `name`.
#[inline]
pub fn sample(name: EventName, value: u64) {
    emit(EventKind::Sample, name, value);
}

/// Opens a span: emits [`EventKind::SpanBegin`] now (if enabled) and the
/// matching [`EventKind::SpanEnd`] when the guard drops — including during
/// a panic unwind, so `catch_unwind` fault paths never leave a span open.
#[inline]
pub fn span(name: EventName) -> EventSpan {
    span_with_arg(name, 0)
}

/// Like [`span`], annotating the begin event with `arg`.
#[inline]
pub fn span_with_arg(name: EventName, arg: u64) -> EventSpan {
    let armed = events_enabled();
    if armed {
        emit_always(EventKind::SpanBegin, name, arg);
    }
    EventSpan { name, armed }
}

/// RAII span guard returned by [`span`].
#[derive(Debug)]
pub struct EventSpan {
    name: EventName,
    armed: bool,
}

impl EventSpan {
    /// Closes the span early (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for EventSpan {
    fn drop(&mut self) {
        if self.armed {
            emit_always(EventKind::SpanEnd, self.name, 0);
        }
    }
}

/// Sets the sampling interval of [`batch_tick`] in batches (`0` disables).
pub fn set_sample_every(batches: u64) {
    SAMPLE_EVERY.store(batches, Ordering::Relaxed);
}

/// The current [`batch_tick`] sampling interval in batches.
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Batch heartbeat, called by the simulation drivers once per decoded
/// batch. Every [`sample_every`]-th batch it samples the pipeline's gauge
/// counters into the journal, so long runs produce throughput-over-time
/// curves. Costs one relaxed load when the journal is off.
#[inline]
pub fn batch_tick() {
    if !events_enabled() {
        return;
    }
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return;
    }
    let ticks = BATCH_TICKS.fetch_add(1, Ordering::Relaxed) + 1;
    if ticks.is_multiple_of(every) {
        sample_pipeline();
    }
}

/// Samples the cumulative pipeline counters as one time-series point.
pub fn sample_pipeline() {
    let p = crate::pipeline();
    sample(EventName::SampleSimRecords, p.sim.records.get());
    sample(EventName::SampleSimInstructions, p.sim.instructions.get());
    sample(
        EventName::SamplePacketsDecoded,
        p.trace.packets_decoded.get(),
    );
    sample(
        EventName::SampleInflatedBytes,
        p.compress.inflated_bytes.get(),
    );
}

/// Events lost to ring wrap-around since the last [`clear`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Copies every retained event out of the journal, ordered by thread id and
/// then by timestamp. The journal is not cleared; concurrent writers are
/// tolerated (in-flight or overwritten slots are skipped, never torn).
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    for shard in &JOURNAL {
        let head = shard.head.load(Ordering::Acquire);
        let retained = head.min(SHARD_CAPACITY as u64);
        for h in head - retained..head {
            let slot = &shard.slots[(h % SHARD_CAPACITY as u64) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != h + 1 {
                continue; // in-flight, overwritten, or never completed
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // overwritten while reading: discard, don't tear
            }
            if let Some((kind, name, tid)) = unpack_meta(meta) {
                out.push(Event {
                    ts_ns: ts,
                    tid,
                    kind,
                    name,
                    arg,
                });
            }
        }
    }
    out.sort_by_key(|e| (e.tid, e.ts_ns));
    out
}

/// Empties every shard and zeroes the dropped-event and batch-tick
/// counters. Call between phases (or tests) that want a journal of their
/// own; does not touch the enable switches or the sampling interval.
pub fn clear() {
    for shard in &JOURNAL {
        for slot in &shard.slots {
            slot.seq.store(0, Ordering::Release);
        }
        shard.head.store(0, Ordering::Release);
        shard.last_ts.store(0, Ordering::Relaxed);
    }
    DROPPED.store(0, Ordering::Relaxed);
    BATCH_TICKS.store(0, Ordering::Relaxed);
}
