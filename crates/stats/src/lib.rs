//! # mbp-stats — always-cheap observability for the MBPlib pipeline
//!
//! Zero-dependency metric primitives (monotonic [`Counter`], [`Gauge`],
//! fixed-bucket [`Histogram`], [`Timer`] with RAII [`ScopedTimer`] spans),
//! a name-keyed [`Registry`] for ad-hoc metrics, the static [`pipeline()`]
//! domains the simulator's stages report into, and the structured
//! [`events`] journal (per-thread ring buffers of span/instant/sample
//! events) that timeline exports are built from.
//!
//! Design rules, in order:
//!
//! 1. **The fast path pays almost nothing.** Every primitive is relaxed
//!    atomics; the pipeline statics are reachable without locks; hot loops
//!    are instrumented at *batch* granularity (one add per 2048-record
//!    block), never per record. Span timing can be switched off process-wide
//!    with [`set_enabled`], reducing a span to one relaxed load.
//! 2. **Snapshots are deterministic.** [`Registry::snapshot`] is name-sorted
//!    and [`PipelineStats::snapshot`] is plain data, so emitted metrics are
//!    stable across runs modulo the measured values themselves.
//! 3. **No JSON rendering here.** JSON encoding of snapshots lives
//!    downstream in the `mbp` crate; this crate stays `std`-only so every
//!    pipeline crate can depend on it without weight. The one format this
//!    crate does own is the OpenMetrics text exposition ([`exposition`]) —
//!    it is the metrics' own wire format and needs nothing but `std`.
//!
//! ```
//! use mbp_stats::pipeline;
//!
//! {
//!     let _span = pipeline().trace.decode.span();
//!     // ... decode a batch ...
//!     pipeline().trace.packets_decoded.add(2048);
//! }
//! let snap = pipeline().snapshot();
//! assert!(snap.trace_packets_decoded >= 2048);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod exposition;
mod metric;
mod pipeline;
mod registry;

pub use exposition::{render_openmetrics, sanitize_metric_name, H2pRow};
pub use metric::{
    enabled, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot, ScopedTimer, Timer,
};
pub use pipeline::{
    pipeline, CompressStats, PipelineSnapshot, PipelineStats, SimStats, SweepStats, TimerSnapshot,
    TraceStats, WorkloadStats,
};
pub use registry::{registry, DynHistogram, Registry, Snapshot, SnapshotValue};
