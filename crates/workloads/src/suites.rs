//! Trace-set presets mirroring the paper's evaluation sets.
//!
//! The CBP5 provided 223 training and 440 evaluation traces grouped in
//! categories (SHORT/LONG × MOBILE/SERVER, plus media-style codes); DPC3
//! provided 95 SPEC17-based traces. Regenerating hundreds of traces at
//! hundreds of millions of instructions each is out of scope for a laptop
//! harness, so the presets default to a scaled-down count and length and
//! expose a `scale` knob; the benchmark binaries report the scaling they
//! used.

use crate::{ProgramParams, TraceGenerator};
use mbp_trace::BranchRecord;

/// One trace in a suite.
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Display name, e.g. `SHORT_SERVER-3`.
    pub name: String,
    /// Program parameters.
    pub params: ProgramParams,
    /// Generation seed.
    pub seed: u64,
    /// Approximate instructions to generate.
    pub instructions: u64,
}

impl TraceSpec {
    /// Instantiates the generator for this spec.
    pub fn generator(&self) -> TraceGenerator {
        TraceGenerator::from_params(&self.params, self.seed).with_name(self.name.clone())
    }

    /// Materializes the trace's branch records.
    pub fn records(&self) -> Vec<BranchRecord> {
        self.generator().take_instructions(self.instructions)
    }
}

/// A named set of traces.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Suite name (e.g. `CBP5-training`).
    pub name: &'static str,
    /// Member traces.
    pub traces: Vec<TraceSpec>,
}

impl Suite {
    /// The CBP5 training-set stand-in.
    ///
    /// `scale` multiplies both trace count and length; `scale = 1` yields
    /// 10 traces of ~1 M instructions (seconds on a laptop), mirroring the
    /// category mix of the original 223 traces, including a deliberately
    /// long trace per category pair (the CBP5 sets contained billion-
    /// instruction traces; here "long" means 4× the short length).
    pub fn cbp5_training(scale: u64) -> Suite {
        Self::cbp5(scale, "CBP5-training", 0x5eed_0000)
    }

    /// The CBP5 evaluation-set stand-in (disjoint seeds, more traces).
    pub fn cbp5_evaluation(scale: u64) -> Suite {
        let mut s = Self::cbp5(scale.max(1) * 2, "CBP5-evaluation", 0xeeed_0000);
        s.name = "CBP5-evaluation";
        s
    }

    fn cbp5(scale: u64, name: &'static str, seed_base: u64) -> Suite {
        let scale = scale.max(1);
        let base_instr = 1_000_000u64;
        let mut traces = Vec::new();
        type ParamsFn = fn() -> ProgramParams;
        let categories: [(&str, ParamsFn); 4] = [
            ("SHORT_MOBILE", ProgramParams::mobile),
            ("SHORT_SERVER", ProgramParams::server),
            ("LONG_MOBILE", ProgramParams::mobile),
            ("LONG_SERVER", ProgramParams::server),
        ];
        for rep in 0..2 * scale {
            for (ci, (cat, params)) in categories.iter().enumerate() {
                let long = cat.starts_with("LONG");
                traces.push(TraceSpec {
                    name: format!("{cat}-{}", rep + 1),
                    params: params(),
                    seed: seed_base + (ci as u64) * 1000 + rep,
                    instructions: if long { base_instr * 4 } else { base_instr },
                });
            }
            traces.push(TraceSpec {
                name: format!("MEDIA-{}", rep + 1),
                params: ProgramParams::media(),
                seed: seed_base + 9000 + rep,
                instructions: base_instr * 2,
            });
        }
        Suite { name, traces }
    }

    /// The DPC3 (SPEC17-like) stand-in: per-instruction traces for the
    /// ChampSim comparison.
    pub fn dpc3(scale: u64) -> Suite {
        let scale = scale.max(1);
        let traces = (0..5 * scale)
            .map(|i| TraceSpec {
                name: format!("SPEC17-{}", i + 1),
                params: match i % 3 {
                    0 => ProgramParams::int_speed(),
                    1 => ProgramParams::media(),
                    _ => ProgramParams::fp_speed(),
                },
                seed: 0xdbc3_0000 + i,
                instructions: 1_000_000,
            })
            .collect();
        Suite {
            name: "DPC3",
            traces,
        }
    }

    /// Runs a predictor configuration over every trace of the suite
    /// (a fresh predictor per trace, championship-style) and aggregates
    /// the results.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbp_core::{Branch, Predictor, SimConfig};
    /// use mbp_workloads::Suite;
    ///
    /// struct AlwaysTaken;
    /// impl Predictor for AlwaysTaken {
    ///     fn predict(&mut self, _ip: u64) -> bool { true }
    ///     fn train(&mut self, _b: &Branch) {}
    ///     fn track(&mut self, _b: &Branch) {}
    /// }
    ///
    /// let report = Suite::smoke().evaluate(|| AlwaysTaken, &SimConfig::default());
    /// assert_eq!(report.per_trace.len(), 2);
    /// assert!(report.amean_mpki > 0.0);
    /// ```
    pub fn evaluate<P, F>(&self, mut make: F, config: &mbp_core::SimConfig) -> SuiteReport
    where
        P: mbp_core::Predictor,
        F: FnMut() -> P,
    {
        let mut per_trace = Vec::with_capacity(self.traces.len());
        let mut total_mis = 0u64;
        let mut total_instr = 0u64;
        for spec in &self.traces {
            let records = spec.records();
            let mut source = mbp_core::SliceSource::named(&records, spec.name.clone());
            let mut predictor = make();
            let result = mbp_core::simulate(&mut source, &mut predictor, config)
                .expect("in-memory simulation cannot fail");
            total_mis += result.metrics.mispredictions;
            total_instr += result.metadata.simulation_instr;
            per_trace.push(TraceResult {
                name: spec.name.clone(),
                mpki: result.metrics.mpki,
                mispredictions: result.metrics.mispredictions,
                accuracy: result.metrics.accuracy,
            });
        }
        let amean_mpki =
            per_trace.iter().map(|t| t.mpki).sum::<f64>() / per_trace.len().max(1) as f64;
        SuiteReport {
            suite: self.name,
            per_trace,
            amean_mpki,
            total_mispredictions: total_mis,
            total_instructions: total_instr,
        }
    }

    /// A minimal smoke suite for tests.
    pub fn smoke() -> Suite {
        Suite {
            name: "smoke",
            traces: vec![
                TraceSpec {
                    name: "SMOKE-mobile".into(),
                    params: ProgramParams::mobile(),
                    seed: 1,
                    instructions: 100_000,
                },
                TraceSpec {
                    name: "SMOKE-server".into(),
                    params: ProgramParams::server(),
                    seed: 2,
                    instructions: 100_000,
                },
            ],
        }
    }
}

/// One trace's results inside a [`SuiteReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceResult {
    /// Trace name.
    pub name: String,
    /// Mispredictions per kilo-instruction.
    pub mpki: f64,
    /// Absolute misprediction count.
    pub mispredictions: u64,
    /// Conditional-branch accuracy.
    pub accuracy: f64,
}

/// Aggregated results of [`Suite::evaluate`].
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteReport {
    /// The evaluated suite's name.
    pub suite: &'static str,
    /// Per-trace results in suite order.
    pub per_trace: Vec<TraceResult>,
    /// Arithmetic mean MPKI over the traces (the championship metric).
    pub amean_mpki: f64,
    /// Total mispredictions across the suite.
    pub total_mispredictions: u64,
    /// Total measured instructions across the suite.
    pub total_instructions: u64,
}

impl SuiteReport {
    /// Renders the report as JSON for downstream tooling.
    pub fn to_json(&self) -> mbp_core::Value {
        mbp_core::json!({
            "suite": self.suite,
            "amean_mpki": self.amean_mpki,
            "total_mispredictions": self.total_mispredictions,
            "total_instructions": self.total_instructions,
            "traces": self.per_trace.iter().map(|t| mbp_core::json!({
                "name": t.name.as_str(),
                "mpki": t.mpki,
                "mispredictions": t.mispredictions,
                "accuracy": t.accuracy,
            })).collect::<Vec<_>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_suite_has_category_mix() {
        let s = Suite::cbp5_training(1);
        assert_eq!(s.traces.len(), 10);
        assert!(s.traces.iter().any(|t| t.name.starts_with("SHORT_MOBILE")));
        assert!(s.traces.iter().any(|t| t.name.starts_with("LONG_SERVER")));
        assert!(s.traces.iter().any(|t| t.name.starts_with("MEDIA")));
    }

    #[test]
    fn evaluation_suite_is_larger_and_disjoint() {
        let train = Suite::cbp5_training(1);
        let eval = Suite::cbp5_evaluation(1);
        assert!(eval.traces.len() > train.traces.len());
        let train_seeds: Vec<u64> = train.traces.iter().map(|t| t.seed).collect();
        assert!(eval.traces.iter().all(|t| !train_seeds.contains(&t.seed)));
    }

    #[test]
    fn long_traces_are_longer() {
        let s = Suite::cbp5_training(1);
        let short = s
            .traces
            .iter()
            .find(|t| t.name.starts_with("SHORT_MOBILE"))
            .unwrap();
        let long = s
            .traces
            .iter()
            .find(|t| t.name.starts_with("LONG_MOBILE"))
            .unwrap();
        assert!(long.instructions > 2 * short.instructions);
    }

    #[test]
    fn specs_materialize_requested_length() {
        let s = Suite::smoke();
        let recs = s.traces[0].records();
        let instr: u64 = recs.iter().map(|r| r.instructions()).sum();
        assert!(instr >= 100_000);
        assert!(instr < 150_000, "should not hugely overshoot");
    }

    #[test]
    fn evaluate_aggregates_across_traces() {
        let report = Suite::smoke().evaluate(
            || mbp_predictors::Gshare::new(12, 12),
            &mbp_core::SimConfig::default(),
        );
        assert_eq!(report.per_trace.len(), 2);
        assert!(report.amean_mpki > 0.0);
        assert!(report.total_instructions >= 200_000);
        let doc = report.to_json();
        assert_eq!(doc["traces"].as_array().unwrap().len(), 2);
        assert_eq!(doc["suite"].as_str(), Some("smoke"));
    }

    #[test]
    fn scale_multiplies_trace_count() {
        assert_eq!(Suite::cbp5_training(2).traces.len(), 20);
        assert_eq!(Suite::dpc3(2).traces.len(), 10);
    }
}
