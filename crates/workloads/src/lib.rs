//! Synthetic workloads standing in for the CBP5 and DPC3 trace sets.
//!
//! The original CBP5 traces are no longer distributed ("the traces of the
//! CBP5 competition … are now unavailable online", the paper's
//! acknowledgements), and the DPC3 traces are multi-gigabyte downloads.
//! This crate replaces them with *synthetic programs*: control-flow
//! structures (nested loops, conditionals, calls, indirect switches) whose
//! conditional branches follow parameterized behaviour models — biased,
//! loop-exit, periodic pattern, history-correlated, or random.
//!
//! The goal is **not** to reproduce any specific benchmark's MPKI, but to
//! exercise the same code paths with the same structure: realistic branch
//! densities (the paper cites 15–25 % of instructions being branches), a
//! spectrum of predictability, working-set sizes that stress tables, and
//! deterministic regeneration from a seed so results are exactly
//! reproducible (§VII-C).
//!
//! # Examples
//!
//! ```
//! use mbp_workloads::{ProgramParams, TraceGenerator};
//!
//! let mut gen = TraceGenerator::from_params(&ProgramParams::server(), 42);
//! let records = gen.take_records(10_000);
//! assert!(!records.is_empty());
//! // Deterministic: the same seed regenerates the same trace.
//! let again = TraceGenerator::from_params(&ProgramParams::server(), 42).take_records(10_000);
//! assert_eq!(records, again);
//! ```

mod behavior;
mod generator;
mod program;
mod suites;

pub use behavior::{Behavior, BehaviorKind};
pub use generator::TraceGenerator;
pub use program::{Program, ProgramParams};
pub use suites::{Suite, SuiteReport, TraceResult, TraceSpec};
