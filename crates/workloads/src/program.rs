//! Synthetic program models: control-flow structure with parameterized
//! branch behaviours.

use mbp_utils::Xorshift64;

use crate::behavior::{Behavior, BehaviorKind};

/// How many times a loop runs per entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TripModel {
    /// Always the same trip count (perfectly predictable by a loop
    /// predictor, predictable by history predictors if short).
    Fixed(u32),
    /// Uniformly random trips in `lo..=hi`.
    Uniform {
        /// Minimum trips.
        lo: u32,
        /// Maximum trips.
        hi: u32,
    },
}

/// One statement of a synthetic function body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `instructions` non-branch instructions.
    Straight(u32),
    /// A conditional: `site` decides; taken executes `then_arm`, not taken
    /// executes `else_arm`.
    If {
        /// Index into [`Program::cond_sites`].
        site: usize,
        /// Taken arm.
        then_arm: Vec<Stmt>,
        /// Not-taken arm.
        else_arm: Vec<Stmt>,
    },
    /// A loop: `body` runs `trips` times; the back-edge conditional at
    /// `site` is taken while iterating and falls through on exit.
    Loop {
        /// Index into [`Program::loop_sites`].
        site: usize,
        /// Trip model.
        trips: TripModel,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A direct call to `callee` (always a higher-numbered function, so the
    /// static call graph is acyclic) and the matching return.
    Call {
        /// Callee function index.
        callee: usize,
        /// Index into [`Program::call_sites`].
        site: usize,
    },
    /// An indirect jump selecting one of `arms` (a switch/virtual call).
    Switch {
        /// Index into [`Program::switch_sites`].
        site: usize,
        /// The possible continuations.
        arms: Vec<Vec<Stmt>>,
    },
}

/// A conditional branch site: address, taken target, and behaviour.
#[derive(Clone, Debug)]
pub struct CondSite {
    /// Branch instruction address.
    pub ip: u64,
    /// Target when taken.
    pub target: u64,
    /// Outcome model.
    pub behavior: Behavior,
}

/// A loop back-edge site (outcome is structural, driven by the trip model).
#[derive(Clone, Debug)]
pub struct LoopSite {
    /// Back-edge branch address.
    pub ip: u64,
    /// Loop head (taken target).
    pub target: u64,
    /// Per-site RNG for `TripModel::Uniform`.
    pub rng: Xorshift64,
}

/// A call site (and the callee's return site).
#[derive(Clone, Copy, Debug)]
pub struct CallSite {
    /// Call instruction address.
    pub ip: u64,
    /// Callee entry (taken target).
    pub target: u64,
    /// Return instruction address inside the callee.
    pub ret_ip: u64,
}

/// An indirect switch site.
#[derive(Clone, Debug)]
pub struct SwitchSite {
    /// Indirect jump address.
    pub ip: u64,
    /// Arm entry addresses.
    pub targets: Vec<u64>,
    /// Arm selection model: round-robin period or random.
    pub selector: Behavior,
}

/// A complete synthetic program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Function bodies; index 0 is `main`.
    pub functions: Vec<Vec<Stmt>>,
    /// Conditional branch sites.
    pub cond_sites: Vec<CondSite>,
    /// Loop back-edge sites.
    pub loop_sites: Vec<LoopSite>,
    /// Call sites.
    pub call_sites: Vec<CallSite>,
    /// Switch sites.
    pub switch_sites: Vec<SwitchSite>,
}

/// Knobs controlling random program construction.
///
/// The presets model the CBP5 workload categories: mobile codes are small
/// and loopy, server codes have huge branch footprints with correlated
/// behaviour, media codes are dominated by patterned kernels.
#[derive(Clone, Debug)]
pub struct ProgramParams {
    /// Number of functions (including `main`).
    pub functions: usize,
    /// Statements per function body.
    pub stmts_per_function: (usize, usize),
    /// Maximum nesting depth of loops/ifs.
    pub max_depth: usize,
    /// Weights for generating Loop / If / Call / Switch / Straight.
    pub stmt_weights: [u32; 5],
    /// Range of straight-line instruction runs.
    pub straight_run: (u32, u32),
    /// Loop trip counts.
    pub trip_range: (u32, u32),
    /// Fraction of fixed-trip (vs uniform-trip) loops, in percent.
    pub fixed_trip_pct: u32,
    /// Weights for Biased / Pattern / Correlated / Random / Phased
    /// conditional behaviours.
    pub behavior_weights: [u32; 5],
    /// Bias strength for `Biased` branches (probability of the majority
    /// outcome).
    pub bias: f64,
    /// Maximum correlation lag.
    pub max_lag: usize,
    /// Switch fan-out.
    pub switch_arms: (usize, usize),
}

impl ProgramParams {
    /// Small, loopy, highly biased code (SHORT_MOBILE-like; low MPKI).
    pub fn mobile() -> Self {
        Self {
            functions: 6,
            stmts_per_function: (3, 6),
            max_depth: 3,
            stmt_weights: [4, 3, 1, 0, 4],
            straight_run: (1, 8),
            trip_range: (3, 40),
            fixed_trip_pct: 80,
            behavior_weights: [6, 2, 1, 0, 1],
            bias: 0.95,
            max_lag: 8,
            switch_arms: (2, 4),
        }
    }

    /// Large branch footprint, correlated and phased behaviour
    /// (SHORT_SERVER-like; high MPKI, stresses table capacity).
    pub fn server() -> Self {
        Self {
            functions: 160,
            stmts_per_function: (4, 10),
            max_depth: 3,
            stmt_weights: [2, 5, 3, 1, 3],
            straight_run: (1, 5),
            trip_range: (2, 12),
            fixed_trip_pct: 40,
            behavior_weights: [3, 2, 4, 1, 2],
            bias: 0.8,
            max_lag: 24,
            switch_arms: (3, 8),
        }
    }

    /// Kernel-dominated patterned code (MEDIA/FP-like; very regular).
    pub fn media() -> Self {
        Self {
            functions: 8,
            stmts_per_function: (3, 7),
            max_depth: 4,
            stmt_weights: [6, 2, 1, 1, 3],
            straight_run: (2, 10),
            trip_range: (8, 200),
            fixed_trip_pct: 90,
            behavior_weights: [2, 5, 2, 0, 1],
            bias: 0.9,
            max_lag: 16,
            switch_arms: (2, 4),
        }
    }

    /// Floating-point-benchmark mix (SPEC-fp-like): very loopy numeric
    /// kernels with long fixed trip counts and few hard branches.
    pub fn fp_speed() -> Self {
        Self {
            functions: 12,
            stmts_per_function: (3, 6),
            max_depth: 4,
            stmt_weights: [7, 2, 1, 0, 3],
            straight_run: (3, 12),
            trip_range: (16, 400),
            fixed_trip_pct: 95,
            behavior_weights: [5, 3, 1, 0, 1],
            bias: 0.93,
            max_lag: 8,
            switch_arms: (2, 3),
        }
    }

    /// Integer-benchmark mix (SPEC-int-like, for the DPC3-ish suite).
    pub fn int_speed() -> Self {
        Self {
            functions: 60,
            stmts_per_function: (4, 8),
            max_depth: 3,
            stmt_weights: [3, 4, 2, 1, 3],
            straight_run: (1, 6),
            trip_range: (2, 60),
            fixed_trip_pct: 60,
            behavior_weights: [4, 3, 3, 1, 1],
            bias: 0.88,
            max_lag: 16,
            switch_arms: (2, 6),
        }
    }
}

/// Builder state: assigns instruction addresses and creates sites.
struct Builder<'p> {
    params: &'p ProgramParams,
    rng: Xorshift64,
    next_ip: u64,
    cond_sites: Vec<CondSite>,
    loop_sites: Vec<LoopSite>,
    call_sites: Vec<CallSite>,
    switch_sites: Vec<SwitchSite>,
    site_seed: u64,
}

impl<'p> Builder<'p> {
    fn alloc_ip(&mut self) -> u64 {
        let ip = self.next_ip;
        self.next_ip += 4;
        ip
    }

    fn next_seed(&mut self) -> u64 {
        self.site_seed = self
            .site_seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(97);
        self.site_seed
    }

    fn random_behavior(&mut self) -> Behavior {
        let w = &self.params.behavior_weights;
        let total: u32 = w.iter().sum();
        let mut pick = self.rng.below(total.max(1) as u64) as u32;
        let mut idx = 0;
        for (i, &wi) in w.iter().enumerate() {
            if pick < wi {
                idx = i;
                break;
            }
            pick -= wi;
        }
        let kind = match idx {
            0 => {
                let p = if self.rng.next_bool() {
                    self.params.bias
                } else {
                    1.0 - self.params.bias
                };
                BehaviorKind::Biased {
                    taken_probability: p,
                }
            }
            1 => {
                let len = self.rng.range_inclusive(2, 8);
                let pattern = (0..len).map(|_| self.rng.next_bool()).collect();
                BehaviorKind::Pattern { pattern }
            }
            2 => BehaviorKind::Correlated {
                lag: self.rng.range_inclusive(1, self.params.max_lag as u64) as usize,
                invert: self.rng.next_bool(),
            },
            3 => BehaviorKind::Random,
            _ => BehaviorKind::Phased {
                a: Box::new(BehaviorKind::Biased {
                    taken_probability: self.params.bias,
                }),
                b: Box::new(BehaviorKind::Biased {
                    taken_probability: 1.0 - self.params.bias,
                }),
                phase_len: self.rng.range_inclusive(500, 4999) as u32,
            },
        };
        let seed = self.next_seed();
        Behavior::new(kind, seed)
    }

    fn build_block(&mut self, depth: usize, budget: usize, max_callee: usize) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        let n = (self.rng.range_inclusive(
            self.params.stmts_per_function.0 as u64,
            self.params.stmts_per_function.1 as u64,
        ) as usize)
            .min(budget.max(1));
        for _ in 0..n {
            stmts.push(self.build_stmt(depth, max_callee));
        }
        stmts
    }

    fn straight(&mut self) -> Stmt {
        let (lo, hi) = self.params.straight_run;
        let run = self.rng.range_inclusive(lo as u64, hi as u64) as u32;
        // Straight-line code occupies address space too, so loop back-edges
        // always point strictly backwards over their body.
        self.next_ip += 4 * run as u64;
        Stmt::Straight(run)
    }

    fn build_stmt(&mut self, depth: usize, max_callee: usize) -> Stmt {
        let w = self.params.stmt_weights;
        // At max depth or without callees, fall back to flat statements.
        let weights = [
            if depth < self.params.max_depth {
                w[0]
            } else {
                0
            },
            if depth < self.params.max_depth {
                w[1]
            } else {
                0
            },
            if max_callee > 0 { w[2] } else { 0 },
            if depth < self.params.max_depth {
                w[3]
            } else {
                0
            },
            w[4].max(1),
        ];
        let total: u32 = weights.iter().sum();
        let mut pick = self.rng.below(total as u64) as u32;
        let mut idx = 4;
        for (i, &wi) in weights.iter().enumerate() {
            if pick < wi {
                idx = i;
                break;
            }
            pick -= wi;
        }
        match idx {
            0 => {
                // Loop: head, body, back-edge.
                let head = self.next_ip;
                let body = self.build_block(depth + 1, 3, max_callee);
                let ip = self.alloc_ip();
                let seed = self.next_seed();
                let site = self.loop_sites.len();
                self.loop_sites.push(LoopSite {
                    ip,
                    target: head,
                    rng: Xorshift64::new(seed),
                });
                let trips = if (self.rng.below(100) as u32) < self.params.fixed_trip_pct {
                    TripModel::Fixed(self.rng.range_inclusive(
                        self.params.trip_range.0 as u64,
                        self.params.trip_range.1 as u64,
                    ) as u32)
                } else {
                    TripModel::Uniform {
                        lo: self.params.trip_range.0,
                        hi: self.params.trip_range.1,
                    }
                };
                Stmt::Loop { site, trips, body }
            }
            1 => {
                let ip = self.alloc_ip();
                let then_arm = self.build_block(depth + 1, 2, max_callee);
                let else_arm = if self.rng.next_bool() {
                    self.build_block(depth + 1, 2, max_callee)
                } else {
                    vec![self.straight()]
                };
                let target = self.next_ip + 16; // skip-ahead target
                let behavior = self.random_behavior();
                let site = self.cond_sites.len();
                self.cond_sites.push(CondSite {
                    ip,
                    target,
                    behavior,
                });
                Stmt::If {
                    site,
                    then_arm,
                    else_arm,
                }
            }
            2 => {
                let ip = self.alloc_ip();
                let callee = self.rng.below(max_callee as u64) as usize;
                let site = self.call_sites.len();
                // Callee entry/ret addresses are patched in `Program::random`
                // once all functions are laid out.
                self.call_sites.push(CallSite {
                    ip,
                    target: 0,
                    ret_ip: 0,
                });
                Stmt::Call { callee, site }
            }
            3 => {
                let ip = self.alloc_ip();
                let n_arms = self.rng.range_inclusive(
                    self.params.switch_arms.0 as u64,
                    self.params.switch_arms.1 as u64,
                ) as usize;
                let mut targets = Vec::with_capacity(n_arms);
                let mut arms = Vec::with_capacity(n_arms);
                for _ in 0..n_arms {
                    targets.push(self.next_ip);
                    arms.push(vec![self.straight()]);
                    self.next_ip += 32;
                }
                let selector = self.random_behavior();
                let site = self.switch_sites.len();
                self.switch_sites.push(SwitchSite {
                    ip,
                    targets,
                    selector,
                });
                Stmt::Switch { site, arms }
            }
            _ => self.straight(),
        }
    }
}

impl Program {
    /// Builds a random program from `params`, fully determined by `seed`.
    pub fn random(params: &ProgramParams, seed: u64) -> Self {
        let mut b = Builder {
            params,
            rng: Xorshift64::new(seed),
            next_ip: 0x40_0000,
            cond_sites: Vec::new(),
            loop_sites: Vec::new(),
            call_sites: Vec::new(),
            switch_sites: Vec::new(),
            site_seed: seed ^ 0x0051_71e5,
        };
        let mut functions = Vec::with_capacity(params.functions);
        let mut entries = Vec::with_capacity(params.functions);
        let mut ret_ips = Vec::with_capacity(params.functions);
        // Lay out the leaf-most functions first so calls only target
        // already-known entries. Function i may call functions with index
        // greater than i; we build in reverse.
        let mut call_patch: Vec<(usize, usize)> = Vec::new(); // (site, callee)
        for fi in (0..params.functions).rev() {
            entries.resize(params.functions, 0);
            ret_ips.resize(params.functions, 0);
            entries[fi] = b.next_ip;
            let callees_above = params.functions - fi - 1;
            let before = b.call_sites.len();
            let body = b.build_block(0, usize::MAX, callees_above);
            // Record which callee each new call site refers to (offset from
            // fi + 1).
            fn collect_calls(stmts: &[Stmt], out: &mut Vec<(usize, usize)>, base: usize) {
                for s in stmts {
                    match s {
                        Stmt::Call { callee, site } => out.push((*site, base + callee)),
                        Stmt::If {
                            then_arm, else_arm, ..
                        } => {
                            collect_calls(then_arm, out, base);
                            collect_calls(else_arm, out, base);
                        }
                        Stmt::Loop { body, .. } => collect_calls(body, out, base),
                        Stmt::Switch { arms, .. } => {
                            for a in arms {
                                collect_calls(a, out, base);
                            }
                        }
                        Stmt::Straight(_) => {}
                    }
                }
            }
            let mut new_calls = Vec::new();
            collect_calls(&body, &mut new_calls, fi + 1);
            call_patch.extend(new_calls.into_iter().filter(|(s, _)| *s >= before));
            // Every function ends with a return instruction.
            ret_ips[fi] = b.alloc_ip();
            functions.push(body);
        }
        functions.reverse();
        // `entries`/`ret_ips` were filled in reverse build order; rebuild
        // them by walking again: entry of function fi was recorded when
        // built. (They were indexed by fi directly, so they are correct.)
        for (site, callee) in call_patch {
            b.call_sites[site].target = entries[callee];
            b.call_sites[site].ret_ip = ret_ips[callee];
        }
        Program {
            functions,
            cond_sites: b.cond_sites,
            loop_sites: b.loop_sites,
            call_sites: b.call_sites,
            switch_sites: b.switch_sites,
        }
    }

    /// Total static branch sites of all kinds.
    pub fn static_branches(&self) -> usize {
        self.cond_sites.len()
            + self.loop_sites.len()
            + self.call_sites.len() * 2 // call + ret
            + self.switch_sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic() {
        let a = Program::random(&ProgramParams::server(), 9);
        let b = Program::random(&ProgramParams::server(), 9);
        assert_eq!(a.static_branches(), b.static_branches());
        assert_eq!(a.cond_sites.len(), b.cond_sites.len());
        assert_eq!(
            a.cond_sites.iter().map(|s| s.ip).collect::<Vec<_>>(),
            b.cond_sites.iter().map(|s| s.ip).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Program::random(&ProgramParams::server(), 1);
        let b = Program::random(&ProgramParams::server(), 2);
        assert_ne!(
            a.cond_sites.iter().map(|s| s.ip).collect::<Vec<_>>(),
            b.cond_sites.iter().map(|s| s.ip).collect::<Vec<_>>()
        );
    }

    #[test]
    fn server_has_bigger_footprint_than_mobile() {
        let mobile = Program::random(&ProgramParams::mobile(), 3);
        let server = Program::random(&ProgramParams::server(), 3);
        assert!(
            server.static_branches() > mobile.static_branches(),
            "server {} !> mobile {}",
            server.static_branches(),
            mobile.static_branches()
        );
    }

    #[test]
    fn call_sites_are_patched() {
        let p = Program::random(&ProgramParams::server(), 5);
        for cs in &p.call_sites {
            assert_ne!(cs.target, 0, "call target must be patched");
            assert_ne!(cs.ret_ip, 0, "ret ip must be patched");
        }
    }

    #[test]
    fn loop_back_edges_point_backward() {
        let p = Program::random(&ProgramParams::media(), 7);
        for ls in &p.loop_sites {
            assert!(ls.target < ls.ip, "back-edge must point backward");
        }
    }
}
