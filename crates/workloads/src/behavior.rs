//! Outcome models for conditional branches.

use mbp_utils::Xorshift64;

/// The stateless description of how a branch decides its outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum BehaviorKind {
    /// Taken with a fixed probability.
    Biased {
        /// Probability of the taken outcome.
        taken_probability: f64,
    },
    /// A repeating outcome pattern (e.g. `TTNT`).
    Pattern {
        /// The repeated outcomes.
        pattern: Vec<bool>,
    },
    /// The outcome copies (or inverts) the outcome of the `lag`-th most
    /// recent conditional branch — predictable only with history.
    Correlated {
        /// How far back in the global outcome history to look.
        lag: usize,
        /// Whether to invert the referenced outcome.
        invert: bool,
    },
    /// Purely random (hard ceiling on any predictor).
    Random,
    /// Alternates between two sub-behaviours every `phase_len` executions —
    /// models programs whose behaviour drifts over time (the paper's long
    /// traces "measure how the predictor adapts to changes", §II).
    Phased {
        /// First phase.
        a: Box<BehaviorKind>,
        /// Second phase.
        b: Box<BehaviorKind>,
        /// Executions per phase.
        phase_len: u32,
    },
}

/// A [`BehaviorKind`] plus its mutable execution state.
#[derive(Clone, Debug)]
pub struct Behavior {
    kind: BehaviorKind,
    rng: Xorshift64,
    position: u64,
}

impl Behavior {
    /// Instantiates a behaviour with its own deterministic RNG stream.
    pub fn new(kind: BehaviorKind, seed: u64) -> Self {
        Self {
            kind,
            rng: Xorshift64::new(seed ^ 0x00b1_7ab1e5),
            position: 0,
        }
    }

    /// The stateless description.
    pub fn kind(&self) -> &BehaviorKind {
        &self.kind
    }

    /// Produces the next outcome. `recent` is the global outcome history of
    /// conditional branches, most recent first (used by `Correlated`).
    pub fn next_outcome(&mut self, recent: &RecentOutcomes) -> bool {
        let pos = self.position;
        self.position += 1;
        Self::eval(&self.kind, pos, &mut self.rng, recent)
    }

    fn eval(kind: &BehaviorKind, pos: u64, rng: &mut Xorshift64, recent: &RecentOutcomes) -> bool {
        match kind {
            BehaviorKind::Biased { taken_probability } => rng.chance(*taken_probability),
            BehaviorKind::Pattern { pattern } => {
                if pattern.is_empty() {
                    true
                } else {
                    pattern[(pos % pattern.len() as u64) as usize]
                }
            }
            BehaviorKind::Correlated { lag, invert } => {
                let referenced = recent.get(*lag).unwrap_or(true);
                referenced ^ invert
            }
            BehaviorKind::Random => rng.next_bool(),
            BehaviorKind::Phased { a, b, phase_len } => {
                let phase = (pos / *phase_len as u64) % 2;
                let inner = if phase == 0 { a } else { b };
                Self::eval(inner, pos, rng, recent)
            }
        }
    }
}

/// A bounded record of recent conditional-branch outcomes, newest first.
#[derive(Clone, Debug, Default)]
pub struct RecentOutcomes {
    bits: u128,
    len: usize,
}

impl RecentOutcomes {
    /// Maximum lag that can be referenced.
    pub const CAPACITY: usize = 128;

    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a new outcome as the most recent.
    pub fn push(&mut self, taken: bool) {
        self.bits = (self.bits << 1) | taken as u128;
        self.len = (self.len + 1).min(Self::CAPACITY);
    }

    /// The `lag`-th most recent outcome (0 = latest), if recorded.
    pub fn get(&self, lag: usize) -> Option<bool> {
        if lag < self.len {
            Some((self.bits >> lag) & 1 == 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_respects_probability() {
        let mut b = Behavior::new(
            BehaviorKind::Biased {
                taken_probability: 0.9,
            },
            1,
        );
        let recent = RecentOutcomes::new();
        let taken = (0..10_000).filter(|_| b.next_outcome(&recent)).count();
        assert!((8700..9300).contains(&taken), "taken = {taken}");
    }

    #[test]
    fn pattern_repeats() {
        let mut b = Behavior::new(
            BehaviorKind::Pattern {
                pattern: vec![true, true, false],
            },
            2,
        );
        let recent = RecentOutcomes::new();
        let out: Vec<bool> = (0..6).map(|_| b.next_outcome(&recent)).collect();
        assert_eq!(out, [true, true, false, true, true, false]);
    }

    #[test]
    fn correlated_follows_history() {
        let mut b = Behavior::new(
            BehaviorKind::Correlated {
                lag: 1,
                invert: false,
            },
            3,
        );
        let mut recent = RecentOutcomes::new();
        recent.push(true); // lag 1 after the next push
        recent.push(false); // lag 0
        assert!(b.next_outcome(&recent), "copies lag-1 outcome");
        let mut b = Behavior::new(
            BehaviorKind::Correlated {
                lag: 0,
                invert: true,
            },
            3,
        );
        assert!(b.next_outcome(&recent), "inverts lag-0 outcome (false)");
    }

    #[test]
    fn correlated_with_empty_history_defaults_taken() {
        let mut b = Behavior::new(
            BehaviorKind::Correlated {
                lag: 5,
                invert: false,
            },
            4,
        );
        assert!(b.next_outcome(&RecentOutcomes::new()));
    }

    #[test]
    fn phased_switches_behavior() {
        let mut b = Behavior::new(
            BehaviorKind::Phased {
                a: Box::new(BehaviorKind::Pattern {
                    pattern: vec![true],
                }),
                b: Box::new(BehaviorKind::Pattern {
                    pattern: vec![false],
                }),
                phase_len: 3,
            },
            5,
        );
        let recent = RecentOutcomes::new();
        let out: Vec<bool> = (0..9).map(|_| b.next_outcome(&recent)).collect();
        assert_eq!(
            out,
            [true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let recent = RecentOutcomes::new();
        let mut a = Behavior::new(BehaviorKind::Random, 7);
        let mut b = Behavior::new(BehaviorKind::Random, 7);
        for _ in 0..100 {
            assert_eq!(a.next_outcome(&recent), b.next_outcome(&recent));
        }
    }

    #[test]
    fn recent_outcomes_window() {
        let mut r = RecentOutcomes::new();
        assert_eq!(r.get(0), None);
        for i in 0..130 {
            r.push(i % 2 == 0);
        }
        // Push #i recorded (i % 2 == 0); the last push was i = 129 (odd).
        assert_eq!(r.get(0), Some(false));
        assert_eq!(r.get(1), Some(true));
        assert_eq!(r.get(127), Some(true), "i = 2 was even");
        assert_eq!(r.get(128), None, "beyond capacity");
    }
}
