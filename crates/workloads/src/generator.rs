//! Executes a synthetic [`Program`] into a branch record stream.

use std::collections::VecDeque;

use mbp_core::TraceSource;
use mbp_trace::{Branch, BranchRecord, Opcode, TraceError, MAX_GAP};

use crate::behavior::RecentOutcomes;
use crate::program::{Program, ProgramParams, Stmt, TripModel};

/// Mutable execution state, split from the immutable statement tree so the
/// recursive walker can borrow both.
#[derive(Debug)]
struct GenState {
    cond_sites: Vec<crate::program::CondSite>,
    loop_sites: Vec<crate::program::LoopSite>,
    call_sites: Vec<crate::program::CallSite>,
    switch_sites: Vec<crate::program::SwitchSite>,
    recent: RecentOutcomes,
    pending_gap: u32,
    buffer: VecDeque<BranchRecord>,
    /// Refill budget: nested loops and the acyclic call tree can expand one
    /// `main` pass combinatorially, so each refill is cut off once the
    /// buffer holds this many records. Execution state (behaviour RNGs,
    /// loop-trip RNGs, outcome history) persists across refills, so the
    /// stream stays diverse and deterministic.
    limit: usize,
}

impl GenState {
    fn full(&self) -> bool {
        self.buffer.len() >= self.limit
    }

    fn emit(&mut self, branch: Branch) {
        let gap = self.pending_gap.min(MAX_GAP);
        self.pending_gap = 0;
        self.buffer.push_back(BranchRecord::new(branch, gap));
    }

    fn emit_conditional(&mut self, ip: u64, target: u64, taken: bool) {
        self.recent.push(taken);
        self.emit(Branch::new(ip, target, Opcode::conditional_direct(), taken));
    }
}

/// A streaming branch-trace generator: an endless execution of a synthetic
/// program. Implements [`TraceSource`], so it can feed the simulators
/// directly without materializing the trace.
///
/// # Examples
///
/// ```
/// use mbp_core::TraceSource;
/// use mbp_workloads::{ProgramParams, TraceGenerator};
///
/// let mut gen = TraceGenerator::from_params(&ProgramParams::mobile(), 7);
/// let rec = gen.next_record()?.expect("endless stream");
/// assert!(rec.branch.ip() >= 0x40_0000);
/// # Ok::<(), mbp_trace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    functions: Vec<Vec<Stmt>>,
    state: GenState,
    name: String,
}

impl TraceGenerator {
    /// Wraps a built program.
    pub fn new(program: Program) -> Self {
        Self {
            functions: program.functions,
            state: GenState {
                cond_sites: program.cond_sites,
                loop_sites: program.loop_sites,
                call_sites: program.call_sites,
                switch_sites: program.switch_sites,
                recent: RecentOutcomes::new(),
                pending_gap: 0,
                buffer: VecDeque::new(),
                limit: 1 << 16,
            },
            name: "synthetic".to_owned(),
        }
    }

    /// Builds the random program for `params`/`seed` and wraps it.
    pub fn from_params(params: &ProgramParams, seed: u64) -> Self {
        Self::new(Program::random(params, seed))
    }

    /// Sets the trace name reported to the simulator.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Materializes the next `n` records.
    pub fn take_records(&mut self, n: usize) -> Vec<BranchRecord> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.next_record() {
                Ok(Some(r)) => out.push(r),
                _ => break,
            }
        }
        out
    }

    /// Materializes records until at least `n` instructions are covered.
    pub fn take_instructions(&mut self, n: u64) -> Vec<BranchRecord> {
        let mut out = Vec::new();
        let mut instructions = 0u64;
        while instructions < n {
            match self.next_record() {
                Ok(Some(r)) => {
                    instructions += r.instructions();
                    out.push(r);
                }
                _ => break,
            }
        }
        out
    }

    fn refill(&mut self) {
        // One full pass through `main`. Programs always contain at least a
        // return-less main body; if a pathological parameter set produced a
        // branch-free program, synthesize a heartbeat branch so the stream
        // never stalls.
        let stats = &mbp_stats::pipeline().workload;
        let _span = stats.generate.span();
        let _event = mbp_stats::events::span(mbp_stats::events::EventName::WorkloadGenerate);
        stats.refills.inc();
        let before = self.state.buffer.len();
        exec_block(&self.functions, 0, &mut self.state);
        if self.state.buffer.len() == before {
            self.state.emit(Branch::new(
                0x40_0000,
                0x40_0000,
                Opcode::unconditional_direct(),
                true,
            ));
        }
        stats
            .records_generated
            .add((self.state.buffer.len() - before) as u64);
    }
}

fn exec_block(functions: &[Vec<Stmt>], fi: usize, st: &mut GenState) {
    // Work on a borrowed statement list via index to keep borrows disjoint.
    let stmts: &[Stmt] = &functions[fi];
    exec_stmts(functions, fi, stmts, st);
}

fn exec_stmts(functions: &[Vec<Stmt>], fi: usize, stmts: &[Stmt], st: &mut GenState) {
    for stmt in stmts {
        if st.full() {
            return;
        }
        match stmt {
            Stmt::Straight(n) => st.pending_gap = st.pending_gap.saturating_add(*n),
            Stmt::If {
                site,
                then_arm,
                else_arm,
            } => {
                let (ip, target, taken) = {
                    // Destructure for disjoint field borrows: the behaviour
                    // needs &mut, the outcome history needs &.
                    let GenState {
                        cond_sites, recent, ..
                    } = st;
                    let s = &mut cond_sites[*site];
                    (s.ip, s.target, s.behavior.next_outcome(recent))
                };
                st.emit_conditional(ip, target, taken);
                if taken {
                    exec_stmts(functions, fi, then_arm, st);
                } else {
                    exec_stmts(functions, fi, else_arm, st);
                }
            }
            Stmt::Loop { site, trips, body } => {
                let trips = match trips {
                    TripModel::Fixed(n) => *n,
                    TripModel::Uniform { lo, hi } => st.loop_sites[*site]
                        .rng
                        .range_inclusive(*lo as u64, *hi as u64)
                        as u32,
                };
                let (ip, target) = {
                    let s = &st.loop_sites[*site];
                    (s.ip, s.target)
                };
                for i in 0..trips {
                    if st.full() {
                        return;
                    }
                    exec_stmts(functions, fi, body, st);
                    st.emit_conditional(ip, target, i + 1 != trips);
                }
            }
            Stmt::Call { callee, site } => {
                let cs = st.call_sites[*site];
                let absolute = fi + 1 + callee;
                st.emit(Branch::new(
                    cs.ip,
                    cs.target,
                    Opcode::new(false, false, mbp_trace::BranchKind::Call),
                    true,
                ));
                exec_block(functions, absolute, st);
                st.emit(Branch::new(cs.ret_ip, cs.ip + 4, Opcode::ret(), true));
            }
            Stmt::Switch { site, arms } => {
                let (ip, target, arm) = {
                    let GenState {
                        switch_sites,
                        recent,
                        ..
                    } = st;
                    let s = &mut switch_sites[*site];
                    // Derive an arm index from the behaviour's bit stream so
                    // correlated selectors make targets path-predictable.
                    let bits_needed = usize::BITS - (arms.len() - 1).leading_zeros();
                    let mut idx = 0usize;
                    for _ in 0..bits_needed.max(1) {
                        idx = (idx << 1) | s.selector.next_outcome(recent) as usize;
                    }
                    let arm = idx % arms.len();
                    (s.ip, s.targets[arm % s.targets.len()], arm)
                };
                st.emit(Branch::new(ip, target, Opcode::indirect_jump(), true));
                exec_stmts(functions, fi, &arms[arm], st);
            }
        }
    }
}

impl TraceSource for TraceGenerator {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        while self.state.buffer.is_empty() {
            self.refill();
        }
        Ok(self.state.buffer.pop_front())
    }

    fn description(&self) -> mbp_core::Value {
        mbp_core::Value::from(self.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_endless_and_deterministic() {
        let mut a = TraceGenerator::from_params(&ProgramParams::mobile(), 11);
        let mut b = TraceGenerator::from_params(&ProgramParams::mobile(), 11);
        let ra = a.take_records(5000);
        let rb = b.take_records(5000);
        assert_eq!(ra.len(), 5000);
        assert_eq!(ra, rb);
    }

    #[test]
    fn records_are_sbbt_encodable() {
        let mut g = TraceGenerator::from_params(&ProgramParams::server(), 13);
        for rec in g.take_records(20_000) {
            assert!(rec.gap <= MAX_GAP);
            assert!(rec.branch.is_valid(), "{rec:?}");
            mbp_trace::sbbt::encode_packet(&rec).expect("encodable");
        }
    }

    #[test]
    fn branch_density_is_realistic() {
        // §IV-C cites 15–25 % of instructions being branches; accept a
        // generous envelope.
        let mut g = TraceGenerator::from_params(&ProgramParams::int_speed(), 17);
        let recs = g.take_records(50_000);
        let instructions: u64 = recs.iter().map(|r| r.instructions()).sum();
        let density = recs.len() as f64 / instructions as f64;
        assert!(
            (0.07..0.5).contains(&density),
            "branch density {density:.3} out of range"
        );
    }

    #[test]
    fn mix_includes_all_branch_kinds() {
        let mut g = TraceGenerator::from_params(&ProgramParams::server(), 19);
        let recs = g.take_records(100_000);
        let cond = recs.iter().filter(|r| r.branch.is_conditional()).count();
        let calls = recs
            .iter()
            .filter(|r| r.branch.opcode().kind() == mbp_trace::BranchKind::Call)
            .count();
        let rets = recs
            .iter()
            .filter(|r| r.branch.opcode().kind() == mbp_trace::BranchKind::Ret)
            .count();
        let indirect = recs
            .iter()
            .filter(|r| r.branch.opcode().is_indirect() && !r.branch.is_conditional())
            .count();
        assert!(cond > recs.len() / 2, "conditional majority expected");
        // A stream prefix (and the refill budget) can split call/ret pairs
        // at the cut, but never by more than the call-tree depth.
        assert!(
            (calls as i64 - rets as i64).abs() <= 64,
            "calls {calls} and rets {rets} diverge"
        );
        assert!(calls > 0);
        assert!(indirect > rets, "switches + rets are both indirect");
    }

    #[test]
    fn predictability_ordering_holds() {
        // TAGE-class prediction should beat bimodal on these streams —
        // the structural property behind every MPKI claim downstream.
        use mbp_core::{simulate, SimConfig};
        use mbp_predictors::{Bimodal, Gshare};

        for (params, name) in [
            (ProgramParams::mobile(), "mobile"),
            (ProgramParams::server(), "server"),
            (ProgramParams::media(), "media"),
        ] {
            let mut gen = TraceGenerator::from_params(&params, 23);
            let recs = gen.take_records(60_000);
            let mut src = mbp_core::SliceSource::new(&recs);
            let bim = simulate(&mut src, &mut Bimodal::new(13), &SimConfig::default()).unwrap();
            src.reset();
            let gsh = simulate(&mut src, &mut Gshare::new(17, 13), &SimConfig::default()).unwrap();
            assert!(
                gsh.metrics.mpki < bim.metrics.mpki * 1.05,
                "{name}: gshare {:.2} should not lose to bimodal {:.2}",
                gsh.metrics.mpki,
                bim.metrics.mpki
            );
        }
    }
}
