//! Incrementally folded branch history, as used by geometric-history
//! predictors (TAGE, BATAGE, ITTAGE).

/// Maintains `fold(width)` of the most recent `hist_len` outcome bits in
/// O(1) per branch.
///
/// A TAGE table indexed with, say, 130 bits of history cannot afford to
/// recompute a 13-bit fold of 130 bits on every branch; hardware keeps a
/// circular folded register updated with only the incoming bit and the bit
/// falling out of the history window. This type reproduces that structure
/// and is checked against the naive
/// [`HistoryRegister::fold`](crate::HistoryRegister::fold) in tests.
///
/// # Examples
///
/// ```
/// use mbp_utils::{FoldedHistory, HistoryRegister};
///
/// let mut hist = HistoryRegister::new(50);
/// let mut folded = FoldedHistory::new(50, 11);
/// for taken in [true, true, false, true] {
///     // Update the fold *before* pushing: it needs the bit about to fall
///     // out of the 50-bit window, which is `hist.bit(49)`.
///     folded.update(taken, hist.bit(49));
///     hist.push(taken);
/// }
/// assert_eq!(folded.value(), hist.fold(11));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoldedHistory {
    value: u64,
    hist_len: usize,
    width: u32,
    /// Bit position (within the folded register) where the bit leaving the
    /// history window lands: `hist_len % width`.
    out_pos: u32,
}

impl FoldedHistory {
    /// Creates a folded image of a `hist_len`-bit history compressed to
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in `1..=63` or `hist_len` is zero.
    pub fn new(hist_len: usize, width: u32) -> Self {
        assert!((1..=63).contains(&width), "fold width must be in 1..=63");
        assert!(hist_len > 0, "history length must be positive");
        Self {
            value: 0,
            hist_len,
            width,
            out_pos: (hist_len % width as usize) as u32,
        }
    }

    /// The current folded value (always `< 2^width`).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The compressed width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The length of the history window being folded.
    pub fn hist_len(&self) -> usize {
        self.hist_len
    }

    /// Advances the fold by one branch: `new_bit` enters the history,
    /// `evicted_bit` is the outcome leaving the `hist_len`-bit window (i.e.
    /// `history.bit(hist_len - 1)` *before* the push).
    pub fn update(&mut self, new_bit: bool, evicted_bit: bool) {
        // Rotate left by one within `width` bits, then inject the incoming
        // bit at position 0 and cancel the outgoing bit at `out_pos`.
        let mask = (1u64 << self.width) - 1;
        self.value = ((self.value << 1) | (self.value >> (self.width - 1))) & mask;
        self.value ^= new_bit as u64;
        self.value ^= (evicted_bit as u64) << self.out_pos;
        self.value &= mask;
    }

    /// Resets the fold to the all-zero history.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistoryRegister;
    use crate::Xorshift64;

    /// Drives a `HistoryRegister` and a `FoldedHistory` in lockstep and
    /// checks the incremental fold equals the naive recomputation.
    fn check_equivalence(hist_len: usize, width: u32, outcomes: &[bool]) {
        let mut hist = HistoryRegister::new(hist_len);
        let mut folded = FoldedHistory::new(hist_len, width);
        for &t in outcomes {
            folded.update(t, hist.bit(hist_len - 1));
            hist.push(t);
            assert_eq!(
                folded.value(),
                hist.fold(width),
                "divergence at hist_len={hist_len} width={width}"
            );
        }
    }

    #[test]
    fn matches_naive_fold_simple() {
        check_equivalence(
            8,
            3,
            &[true, false, true, true, false, false, true, true, true],
        );
    }

    #[test]
    fn matches_naive_fold_width_divides_len() {
        check_equivalence(12, 4, &[true; 30]);
    }

    #[test]
    fn matches_naive_fold_width_larger_than_len() {
        // width > hist_len: the fold is the history itself.
        let mut hist = HistoryRegister::new(5);
        let mut folded = FoldedHistory::new(5, 9);
        for t in [true, true, false, true, false, false, true] {
            folded.update(t, hist.bit(4));
            hist.push(t);
        }
        assert_eq!(folded.value(), hist.low_bits());
    }

    #[test]
    fn clear_matches_fresh() {
        let mut folded = FoldedHistory::new(20, 7);
        let mut hist = HistoryRegister::new(20);
        for t in [true, false, true] {
            folded.update(t, hist.bit(19));
            hist.push(t);
        }
        folded.clear();
        assert_eq!(folded.value(), 0);
    }

    // Deterministic property sweep (offline stand-in for proptest).

    #[test]
    fn equivalent_to_naive() {
        let mut rng = Xorshift64::new(0xf0_1ded);
        for _ in 0..64 {
            let hist_len = rng.range_inclusive(1, 299) as usize;
            let width = rng.range_inclusive(1, 20) as u32;
            let mut hist = HistoryRegister::new(hist_len);
            let mut folded = FoldedHistory::new(hist_len, width);
            for _ in 0..rng.range_inclusive(1, 499) {
                let t = rng.next_bool();
                folded.update(t, hist.bit(hist_len - 1));
                hist.push(t);
                assert_eq!(folded.value(), hist.fold(width));
            }
        }
    }
}
