//! Arbitrary-length global branch history register.

use std::fmt;

/// A shift register recording the outcomes of the most recent branches.
///
/// Bit 0 is the most recent outcome, like `std::bitset` in the paper's
/// GShare listing (`ghist <<= 1; ghist[0] = taken`). Lengths beyond 64 bits
/// are supported because state-of-the-art predictors (TAGE, BATAGE) use
/// histories of several hundred bits.
///
/// # Examples
///
/// ```
/// use mbp_utils::HistoryRegister;
///
/// let mut h = HistoryRegister::new(100);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // most recent
/// assert!(h.bit(1));
/// assert_eq!(h.low_bits() & 0b11, 0b10);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    words: Vec<u64>,
    len: usize,
}

impl HistoryRegister {
    /// Creates an all-zero history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "history length must be positive");
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of outcome bits tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: the constructor rejects zero-length histories.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shifts in a new outcome as bit 0; the oldest bit falls off.
    pub fn push(&mut self, taken: bool) {
        let mut carry = taken as u64;
        for w in &mut self.words {
            let next_carry = *w >> 63;
            *w = (*w << 1) | carry;
            carry = next_carry;
        }
        self.mask_top();
    }

    /// Outcome of the `i`-th most recent branch (0 = latest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "history index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The lowest (most recent) up-to-64 bits as an integer, like
    /// `bitset::to_ullong` in the paper's listing.
    pub fn low_bits(&self) -> u64 {
        self.words[0]
    }

    /// The `n` most recent bits as an integer.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `n > len()`.
    pub fn low_n(&self, n: usize) -> u64 {
        assert!(n <= 64 && n <= self.len, "cannot extract {n} bits");
        if n == 64 {
            self.words[0]
        } else {
            self.words[0] & ((1u64 << n) - 1)
        }
    }

    /// Folds the entire history into `width` bits by XOR-ing consecutive
    /// `width`-bit chunks. A naive (recomputing) fold; hot paths should use
    /// [`FoldedHistory`](crate::FoldedHistory) instead.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn fold(&self, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "fold width must be in 1..=64");
        let mut acc = 0u64;
        let mut i = 0;
        while i < self.len {
            let take = width.min((self.len - i) as u32) as usize;
            let mut chunk = 0u64;
            for j in 0..take {
                chunk |= (self.bit(i + j) as u64) << j;
            }
            acc ^= chunk;
            i += take;
        }
        acc
    }

    /// Clears all history bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of taken outcomes currently recorded.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn mask_top(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }
}

impl fmt::Debug for HistoryRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HistoryRegister(len={}, newest→oldest ", self.len)?;
        let shown = self.len.min(16);
        for i in 0..shown {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_read_small() {
        let mut h = HistoryRegister::new(4);
        for taken in [true, false, true, true] {
            h.push(taken);
        }
        // Newest first: T T F T
        assert!(h.bit(0));
        assert!(h.bit(1));
        assert!(!h.bit(2));
        assert!(h.bit(3));
        assert_eq!(h.low_bits(), 0b1011);
    }

    #[test]
    fn oldest_bit_falls_off() {
        let mut h = HistoryRegister::new(2);
        h.push(true);
        h.push(false);
        h.push(false);
        assert_eq!(h.low_bits(), 0b00);
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn crosses_word_boundary() {
        let mut h = HistoryRegister::new(70);
        h.push(true);
        for _ in 0..69 {
            h.push(false);
        }
        assert!(h.bit(69));
        assert_eq!(h.count_ones(), 1);
        h.push(false); // the lone taken bit is now evicted
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn low_n_masks() {
        let mut h = HistoryRegister::new(64);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.low_n(4), 0b1111);
        assert_eq!(h.low_n(10), 0x3FF);
        assert_eq!(h.low_n(12), 0x3FF);
    }

    #[test]
    fn exact_64_bit_history() {
        let mut h = HistoryRegister::new(64);
        h.push(true);
        for _ in 0..63 {
            h.push(false);
        }
        assert!(h.bit(63));
        h.push(false);
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn fold_matches_hand_computation() {
        let mut h = HistoryRegister::new(6);
        // Push so that history (newest first) = 1 0 1 1 0 1.
        for taken in [true, false, true, true, false, true] {
            h.push(taken);
        }
        // low bits = 0b101101; folding to width 3: 0b101 ^ 0b101 = 0.
        assert_eq!(h.fold(3), 0);
        // Width 4: chunk0 = 0b1101, chunk1 (bits 4..6) = 0b10 → 0b1101^0b10.
        assert_eq!(h.fold(4), 0b1101 ^ 0b10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let h = HistoryRegister::new(8);
        h.bit(8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        HistoryRegister::new(0);
    }

    #[test]
    fn clear_resets() {
        let mut h = HistoryRegister::new(32);
        for _ in 0..32 {
            h.push(true);
        }
        h.clear();
        assert_eq!(h.count_ones(), 0);
    }

    proptest! {
        #[test]
        fn matches_vecdeque_model(len in 1usize..200, outcomes in prop::collection::vec(any::<bool>(), 0..400)) {
            let mut h = HistoryRegister::new(len);
            let mut model = std::collections::VecDeque::new();
            for t in outcomes {
                h.push(t);
                model.push_front(t);
                model.truncate(len);
                for (i, &m) in model.iter().enumerate() {
                    prop_assert_eq!(h.bit(i), m);
                }
            }
        }

        #[test]
        fn fold_stays_in_width(len in 1usize..128, width in 1u32..=16, outcomes in prop::collection::vec(any::<bool>(), 0..200)) {
            let mut h = HistoryRegister::new(len);
            for t in outcomes {
                h.push(t);
            }
            let folded = h.fold(width);
            prop_assert!(width == 64 || folded < (1u64 << width));
        }
    }
}
