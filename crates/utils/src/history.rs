//! Arbitrary-length global branch history register.

use std::fmt;

/// A shift register recording the outcomes of the most recent branches.
///
/// Bit 0 is the most recent outcome, like `std::bitset` in the paper's
/// GShare listing (`ghist <<= 1; ghist[0] = taken`). Lengths beyond 64 bits
/// are supported because state-of-the-art predictors (TAGE, BATAGE) use
/// histories of several hundred bits.
///
/// # Examples
///
/// ```
/// use mbp_utils::HistoryRegister;
///
/// let mut h = HistoryRegister::new(100);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0)); // most recent
/// assert!(h.bit(1));
/// assert_eq!(h.low_bits() & 0b11, 0b10);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct HistoryRegister {
    words: Vec<u64>,
    len: usize,
    /// Valid-bit mask of the last word, precomputed so `push` (called once
    /// per simulated branch) does no division or length arithmetic.
    top_mask: u64,
}

impl HistoryRegister {
    /// Creates an all-zero history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "history length must be positive");
        let rem = len % 64;
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            top_mask: if rem == 0 { u64::MAX } else { (1 << rem) - 1 },
        }
    }

    /// Number of outcome bits tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: the constructor rejects zero-length histories.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shifts in a new outcome as bit 0; the oldest bit falls off.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        if let [word] = self.words.as_mut_slice() {
            // Histories up to 64 bits (every predictor except the long-
            // history tables of TAGE/BATAGE) shift one word, branch-free.
            *word = ((*word << 1) | taken as u64) & self.top_mask;
            return;
        }
        let mut carry = taken as u64;
        for w in &mut self.words {
            let next_carry = *w >> 63;
            *w = (*w << 1) | carry;
            carry = next_carry;
        }
        self.mask_top();
    }

    /// Outcome of the `i`-th most recent branch (0 = latest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "history index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The lowest (most recent) up-to-64 bits as an integer, like
    /// `bitset::to_ullong` in the paper's listing.
    pub fn low_bits(&self) -> u64 {
        self.words[0]
    }

    /// The `n` most recent bits as an integer.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or `n > len()`.
    pub fn low_n(&self, n: usize) -> u64 {
        assert!(n <= 64 && n <= self.len, "cannot extract {n} bits");
        if n == 64 {
            self.words[0]
        } else {
            self.words[0] & ((1u64 << n) - 1)
        }
    }

    /// Folds the entire history into `width` bits by XOR-ing consecutive
    /// `width`-bit chunks. A naive (recomputing) fold; hot paths should use
    /// [`FoldedHistory`](crate::FoldedHistory) instead.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64.
    pub fn fold(&self, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "fold width must be in 1..=64");
        let mut acc = 0u64;
        let mut i = 0;
        while i < self.len {
            let take = width.min((self.len - i) as u32) as usize;
            let mut chunk = 0u64;
            for j in 0..take {
                chunk |= (self.bit(i + j) as u64) << j;
            }
            acc ^= chunk;
            i += take;
        }
        acc
    }

    /// Overwrites the history with `bits` (bit 0 = most recent outcome),
    /// masked to the register length. Batched predictor kernels simulate
    /// the history locally from a batch's taken bits and use this to sync
    /// the authoritative register once per batch.
    ///
    /// # Panics
    ///
    /// Panics if the register is longer than 64 bits — multi-word histories
    /// cannot be replaced from a single integer.
    #[inline]
    pub fn set_low_bits(&mut self, bits: u64) {
        assert!(
            self.len <= 64,
            "set_low_bits requires a single-word history (len {} > 64)",
            self.len
        );
        self.words[0] = bits & self.top_mask;
    }

    /// Clears all history bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of taken outcomes currently recorded.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn mask_top(&mut self) {
        let last = self.words.len() - 1;
        self.words[last] &= self.top_mask;
    }
}

impl fmt::Debug for HistoryRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HistoryRegister(len={}, newest→oldest ", self.len)?;
        let shown = self.len.min(16);
        for i in 0..shown {
            write!(f, "{}", self.bit(i) as u8)?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64;

    #[test]
    fn push_and_read_small() {
        let mut h = HistoryRegister::new(4);
        for taken in [true, false, true, true] {
            h.push(taken);
        }
        // Newest first: T T F T
        assert!(h.bit(0));
        assert!(h.bit(1));
        assert!(!h.bit(2));
        assert!(h.bit(3));
        assert_eq!(h.low_bits(), 0b1011);
    }

    #[test]
    fn oldest_bit_falls_off() {
        let mut h = HistoryRegister::new(2);
        h.push(true);
        h.push(false);
        h.push(false);
        assert_eq!(h.low_bits(), 0b00);
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn crosses_word_boundary() {
        let mut h = HistoryRegister::new(70);
        h.push(true);
        for _ in 0..69 {
            h.push(false);
        }
        assert!(h.bit(69));
        assert_eq!(h.count_ones(), 1);
        h.push(false); // the lone taken bit is now evicted
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn low_n_masks() {
        let mut h = HistoryRegister::new(64);
        for _ in 0..10 {
            h.push(true);
        }
        assert_eq!(h.low_n(4), 0b1111);
        assert_eq!(h.low_n(10), 0x3FF);
        assert_eq!(h.low_n(12), 0x3FF);
    }

    #[test]
    fn exact_64_bit_history() {
        let mut h = HistoryRegister::new(64);
        h.push(true);
        for _ in 0..63 {
            h.push(false);
        }
        assert!(h.bit(63));
        h.push(false);
        assert_eq!(h.count_ones(), 0);
    }

    #[test]
    fn fold_matches_hand_computation() {
        let mut h = HistoryRegister::new(6);
        // Push so that history (newest first) = 1 0 1 1 0 1.
        for taken in [true, false, true, true, false, true] {
            h.push(taken);
        }
        // low bits = 0b101101; folding to width 3: 0b101 ^ 0b101 = 0.
        assert_eq!(h.fold(3), 0);
        // Width 4: chunk0 = 0b1101, chunk1 (bits 4..6) = 0b10 → 0b1101^0b10.
        assert_eq!(h.fold(4), 0b1101 ^ 0b10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let h = HistoryRegister::new(8);
        h.bit(8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        HistoryRegister::new(0);
    }

    #[test]
    fn set_low_bits_replays_pushes() {
        // set_low_bits(x) must leave the register exactly as if the bits of
        // x had been pushed oldest-first.
        let mut rng = Xorshift64::new(0x415703);
        for len in [1usize, 7, 31, 63, 64] {
            let mut direct = HistoryRegister::new(len);
            let mut pushed = HistoryRegister::new(len);
            for _ in 0..32 {
                let bits = rng.next_u64();
                direct.set_low_bits(bits);
                pushed.clear();
                for i in (0..len).rev() {
                    pushed.push((bits >> i) & 1 == 1);
                }
                assert_eq!(direct, pushed, "len {len} bits {bits:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "single-word")]
    fn set_low_bits_rejects_multiword() {
        HistoryRegister::new(65).set_low_bits(0);
    }

    #[test]
    fn clear_resets() {
        let mut h = HistoryRegister::new(32);
        for _ in 0..32 {
            h.push(true);
        }
        h.clear();
        assert_eq!(h.count_ones(), 0);
    }

    // Deterministic property sweeps (offline stand-in for proptest).

    #[test]
    fn matches_vecdeque_model() {
        let mut rng = Xorshift64::new(0x415701);
        for _ in 0..64 {
            let len = rng.range_inclusive(1, 199) as usize;
            let mut h = HistoryRegister::new(len);
            let mut model = std::collections::VecDeque::new();
            for _ in 0..rng.below(400) {
                let t = rng.next_bool();
                h.push(t);
                model.push_front(t);
                model.truncate(len);
                for (i, &m) in model.iter().enumerate() {
                    assert_eq!(h.bit(i), m);
                }
            }
        }
    }

    #[test]
    fn fold_stays_in_width() {
        let mut rng = Xorshift64::new(0x415702);
        for _ in 0..128 {
            let len = rng.range_inclusive(1, 127) as usize;
            let width = rng.range_inclusive(1, 16) as u32;
            let mut h = HistoryRegister::new(len);
            for _ in 0..rng.below(200) {
                h.push(rng.next_bool());
            }
            let folded = h.fold(width);
            assert!(folded < (1u64 << width));
        }
    }
}
