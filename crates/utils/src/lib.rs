//! The MBPlib *utilities library* (§V of the paper).
//!
//! Branch predictors are overwhelmingly built from a small set of hardware
//! idioms: fixed-width saturating counters, global/per-address history
//! registers, folded (compressed) histories for indexing large tables, path
//! histories, and cheap hash functions. Reimplementing these for every
//! predictor invites subtle bugs (forgotten saturation, off-by-one history
//! lengths, non-reversible folds). This crate provides them once, tested,
//! with a modern interface — mirroring MBPlib's `mbp::i2`, `mbp::XorFold`
//! and friends.
//!
//! The crate is deliberately independent from the simulator so that, as the
//! paper notes, the components can also be used to implement predictors for
//! *other* simulators.
//!
//! # Example: the GShare kernel
//!
//! ```
//! use mbp_utils::{xor_fold, HistoryRegister, I2};
//!
//! const TABLE_BITS: u32 = 12;
//! let mut table = vec![I2::default(); 1 << TABLE_BITS];
//! let mut ghist = HistoryRegister::new(15);
//!
//! let ip = 0x40_1234u64;
//! let idx = xor_fold(ip ^ ghist.low_bits(), TABLE_BITS) as usize;
//! let prediction = table[idx].is_taken();
//! // ... later, on resolve:
//! let taken = true;
//! table[idx].sum_or_sub(taken);
//! ghist.push(taken);
//! # let _ = prediction;
//! ```

mod counter;
mod folded;
mod hash;
mod history;
mod lru;
mod path;
mod plru;
mod rng;

pub use counter::{SatCounter, USatCounter, I2, I3, U2};
pub use folded::FoldedHistory;
pub use hash::{mix64, xor_fold, xor_fold_columns, FastHashBuilder, FastHasher};
pub use history::HistoryRegister;
pub use lru::LruSet;
pub use path::PathHistory;
pub use plru::TreePlru;
pub use rng::Xorshift64;
