//! Tree pseudo-LRU replacement state.

/// A binary-tree pseudo-LRU tracker for a power-of-two-way set.
///
/// Real caches rarely implement true LRU beyond a few ways: a `W`-way set
/// keeps `W - 1` direction bits arranged as a binary tree. On an access,
/// the bits on the path to the touched way are pointed *away* from it; the
/// victim is found by following the bits. One bit per node instead of
/// `log2(W!)` bits of full LRU state.
///
/// # Examples
///
/// ```
/// use mbp_utils::TreePlru;
///
/// let mut plru = TreePlru::new(4);
/// plru.touch(0);
/// plru.touch(1);
/// // All recent traffic hit ways 0–1, so the victim is in the other half.
/// assert!(plru.victim() >= 2);
/// plru.touch(3);
/// assert_ne!(plru.victim(), 3, "never the most recently used way");
/// ```
#[derive(Clone, Debug)]
pub struct TreePlru {
    /// Tree bits, root at index 1 (index 0 unused); `false` points left.
    bits: Vec<bool>,
    ways: usize,
}

impl TreePlru {
    /// Creates tracking state for a set of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics unless `ways` is a power of two and at least 2.
    pub fn new(ways: usize) -> Self {
        assert!(
            ways.is_power_of_two() && ways >= 2,
            "ways must be a power of two >= 2"
        );
        Self {
            bits: vec![false; ways],
            ways,
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Marks `way` as just-used: every tree node on its path points away.
    ///
    /// # Panics
    ///
    /// Panics if `way >= ways`.
    pub fn touch(&mut self, way: usize) {
        assert!(way < self.ways, "way {way} out of range");
        let mut node = 1;
        let mut lo = 0;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let goes_right = way >= mid;
            // Point away from the touched half.
            self.bits[node] = !goes_right;
            if goes_right {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node *= 2;
                hi = mid;
            }
        }
    }

    /// The way the tree currently points at (the pseudo-LRU victim).
    pub fn victim(&self) -> usize {
        let mut node = 1;
        let mut lo = 0;
        let mut hi = self.ways;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                node = 2 * node + 1;
                lo = mid;
            } else {
                node *= 2;
                hi = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_way_plru_is_true_lru() {
        let mut p = TreePlru::new(2);
        p.touch(0);
        assert_eq!(p.victim(), 1);
        p.touch(1);
        assert_eq!(p.victim(), 0);
    }

    #[test]
    fn victim_lands_in_the_cold_subtree() {
        // PLRU's guaranteed property: if all recent touches hit one half of
        // the set, the root points at the other half.
        for ways in [4usize, 8, 16] {
            let mut p = TreePlru::new(ways);
            for i in 0..3 * ways {
                p.touch(i % (ways / 2)); // only the left half
            }
            assert!(p.victim() >= ways / 2, "{ways}-way victim {}", p.victim());
        }
    }

    #[test]
    fn victim_is_never_the_most_recent() {
        let mut p = TreePlru::new(8);
        for i in [3usize, 7, 1, 0, 5, 2, 6, 4, 3, 3, 0] {
            p.touch(i);
            assert_ne!(p.victim(), i, "victim may not be the just-touched way");
        }
    }

    #[test]
    fn round_robin_touching_cycles_victims() {
        let mut p = TreePlru::new(4);
        let mut victims = std::collections::HashSet::new();
        for i in 0..16 {
            let v = p.victim();
            victims.insert(v);
            p.touch(v);
            let _ = i;
        }
        assert_eq!(victims.len(), 4, "all ways eventually become victims");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        TreePlru::new(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn touch_out_of_range_panics() {
        TreePlru::new(4).touch(4);
    }
}
