//! A tiny deterministic PRNG for predictors that need randomness.

/// A xorshift64* pseudo-random generator.
///
/// BATAGE (and TAGE's allocation policy) "needs to generate random numbers"
/// (§VII-A), but a simulator must stay *deterministic* so runs are exactly
/// reproducible (§VII-C). Hardware would use an LFSR; we provide an
/// equivalent deterministic generator with a fixed seed per predictor
/// instance instead of pulling entropy from the OS.
///
/// # Examples
///
/// ```
/// use mbp_utils::Xorshift64;
///
/// let mut a = Xorshift64::new(7);
/// let mut b = Xorshift64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// assert!(a.below(10) < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed (a zero seed is remapped to a fixed
    /// non-zero constant, since xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the tiny bounds predictors use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A pseudo-random bool that is `true` with probability `1/n`.
    ///
    /// TAGE-style allocation throttling ("allocate with probability 1/2").
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }

    /// A uniformly distributed value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// An unbiased pseudo-random bool.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit: xorshift64* low bits are the weakest.
        self.next_u64() >> 63 == 1
    }

    /// A pseudo-random bool that is `true` with probability `p`.
    ///
    /// Out-of-range probabilities clamp to certainty (`p <= 0` never,
    /// `p >= 1` always), matching the generated workloads' bias knobs.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits are plenty for workload biases.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for Xorshift64 {
    fn default() -> Self {
        Self::new(0x5eed_5eed_5eed_5eed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xorshift64::new(123);
        let mut b = Xorshift64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift64::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Xorshift64::new(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    fn one_in_roughly_uniform() {
        let mut r = Xorshift64::new(77);
        let hits = (0..10_000).filter(|_| r.one_in(4)).count();
        assert!(
            (2000..3000).contains(&hits),
            "1/4 hits out of range: {hits}"
        );
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = Xorshift64::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_inclusive(9, 9), 9, "degenerate range");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = Xorshift64::new(11);
        let hits = (0..20_000).filter(|_| r.chance(0.9)).count();
        assert!((17400..18600).contains(&hits), "p=0.9 hits: {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn next_bool_balanced() {
        let mut r = Xorshift64::new(21);
        let trues = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4500..5500).contains(&trues), "bools skewed: {trues}");
    }
}
