//! Fixed-width saturating counters.
//!
//! The paper's motivating example for the utilities library is modeling
//! "fixed-width saturated counters ... as a class [so] we can create custom
//! arithmetical operators for it, providing a simple and modern interface."
//! [`SatCounter`] is the signed counter (MBPlib's `mbp::i2` is
//! [`SatCounter<2>`], aliased [`I2`]); [`USatCounter`] is the unsigned
//! variant used for utility/confidence counters.

use std::cmp::Ordering;
use std::fmt;

/// A signed saturating counter of `BITS` bits, ranging over
/// `[-2^(BITS-1), 2^(BITS-1) - 1]`.
///
/// The canonical direction predictor state: non-negative means
/// *predict taken*. Arithmetic saturates instead of wrapping, exactly like
/// the hardware counters it models.
///
/// # Examples
///
/// ```
/// use mbp_utils::I2; // SatCounter<2>, range [-2, 1]
///
/// let mut ctr = I2::new(0);
/// ctr.sum_or_sub(true);
/// assert_eq!(ctr.value(), 1);
/// ctr.sum_or_sub(true); // saturates at the top
/// assert_eq!(ctr.value(), 1);
/// assert!(ctr.is_taken());
/// ctr -= 4; // saturates at the bottom
/// assert_eq!(ctr.value(), -2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SatCounter<const BITS: u32> {
    value: i8,
}

/// MBPlib's `mbp::i2`: the classic two-bit direction counter.
pub type I2 = SatCounter<2>;
/// A three-bit signed counter, common in meta-predictors.
pub type I3 = SatCounter<3>;
/// A two-bit unsigned counter, common for utility bits (e.g. TAGE `u`).
pub type U2 = USatCounter<2>;

impl<const BITS: u32> SatCounter<BITS> {
    /// Smallest representable value, `-2^(BITS-1)`.
    pub const MIN: i8 = -(1 << (BITS - 1));
    /// Largest representable value, `2^(BITS-1) - 1`.
    pub const MAX: i8 = (1 << (BITS - 1)) - 1;

    /// Creates a counter clamped to the representable range.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `BITS` is between 1 and 7 (an `i8` payload).
    pub fn new(value: i8) -> Self {
        debug_assert!((1..=7).contains(&BITS), "SatCounter supports 1..=7 bits");
        Self {
            value: value.clamp(Self::MIN, Self::MAX),
        }
    }

    /// Current value.
    pub fn value(self) -> i8 {
        self.value
    }

    /// Whether the counter predicts taken (non-negative).
    pub fn is_taken(self) -> bool {
        self.value >= 0
    }

    /// Increments if `taken`, decrements otherwise — the paper's `sumOrSub`.
    pub fn sum_or_sub(&mut self, taken: bool) {
        if taken {
            *self += 1;
        } else {
            *self -= 1;
        }
    }

    /// Whether the counter holds a weak state (`-1` or `0`), i.e. the next
    /// update in the losing direction flips the prediction.
    pub fn is_weak(self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// Whether the counter is saturated in either direction.
    pub fn is_saturated(self) -> bool {
        self.value == Self::MIN || self.value == Self::MAX
    }

    /// Moves the value one step toward zero (used by decay policies).
    pub fn decay(&mut self) {
        match self.value.cmp(&0) {
            Ordering::Greater => self.value -= 1,
            Ordering::Less => self.value += 1,
            Ordering::Equal => {}
        }
    }
}

impl<const BITS: u32> std::ops::AddAssign<i8> for SatCounter<BITS> {
    fn add_assign(&mut self, rhs: i8) {
        self.value = self.value.saturating_add(rhs).clamp(Self::MIN, Self::MAX);
    }
}

impl<const BITS: u32> std::ops::SubAssign<i8> for SatCounter<BITS> {
    fn sub_assign(&mut self, rhs: i8) {
        self.value = self.value.saturating_sub(rhs).clamp(Self::MIN, Self::MAX);
    }
}

impl<const BITS: u32> PartialEq<i8> for SatCounter<BITS> {
    fn eq(&self, other: &i8) -> bool {
        self.value == *other
    }
}

impl<const BITS: u32> PartialOrd<i8> for SatCounter<BITS> {
    fn partial_cmp(&self, other: &i8) -> Option<Ordering> {
        self.value.partial_cmp(other)
    }
}

impl<const BITS: u32> From<SatCounter<BITS>> for i8 {
    fn from(c: SatCounter<BITS>) -> i8 {
        c.value
    }
}

impl<const BITS: u32> fmt::Display for SatCounter<BITS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// An unsigned saturating counter of `BITS` bits, ranging over
/// `[0, 2^BITS - 1]`.
///
/// # Examples
///
/// ```
/// use mbp_utils::U2;
///
/// let mut u = U2::default();
/// u += 1;
/// u += 10; // saturates at 3
/// assert_eq!(u.value(), 3);
/// u.reset();
/// assert_eq!(u.value(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct USatCounter<const BITS: u32> {
    value: u8,
}

impl<const BITS: u32> USatCounter<BITS> {
    /// Largest representable value, `2^BITS - 1`.
    pub const MAX: u8 = ((1u16 << BITS) - 1) as u8;

    /// Creates a counter clamped to the representable range.
    pub fn new(value: u8) -> Self {
        debug_assert!((1..=8).contains(&BITS), "USatCounter supports 1..=8 bits");
        Self {
            value: value.min(Self::MAX),
        }
    }

    /// Current value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Whether the counter is zero.
    pub fn is_zero(self) -> bool {
        self.value == 0
    }

    /// Whether the counter is saturated at its maximum.
    pub fn is_saturated(self) -> bool {
        self.value == Self::MAX
    }

    /// Sets the counter back to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Halves the counter (TAGE-style graceful aging of `u` bits).
    pub fn halve(&mut self) {
        self.value >>= 1;
    }
}

impl<const BITS: u32> std::ops::AddAssign<u8> for USatCounter<BITS> {
    fn add_assign(&mut self, rhs: u8) {
        self.value = self.value.saturating_add(rhs).min(Self::MAX);
    }
}

impl<const BITS: u32> std::ops::SubAssign<u8> for USatCounter<BITS> {
    fn sub_assign(&mut self, rhs: u8) {
        self.value = self.value.saturating_sub(rhs);
    }
}

impl<const BITS: u32> PartialEq<u8> for USatCounter<BITS> {
    fn eq(&self, other: &u8) -> bool {
        self.value == *other
    }
}

impl<const BITS: u32> PartialOrd<u8> for USatCounter<BITS> {
    fn partial_cmp(&self, other: &u8) -> Option<Ordering> {
        self.value.partial_cmp(other)
    }
}

impl<const BITS: u32> fmt::Display for USatCounter<BITS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64;

    #[test]
    fn signed_range_bounds() {
        assert_eq!(I2::MIN, -2);
        assert_eq!(I2::MAX, 1);
        assert_eq!(SatCounter::<5>::MIN, -16);
        assert_eq!(SatCounter::<5>::MAX, 15);
    }

    #[test]
    fn signed_new_clamps() {
        assert_eq!(I2::new(100).value(), 1);
        assert_eq!(I2::new(-100).value(), -2);
    }

    #[test]
    fn signed_saturates_both_directions() {
        let mut c = SatCounter::<3>::new(3);
        c += 1;
        assert_eq!(c.value(), 3);
        for _ in 0..20 {
            c -= 1;
        }
        assert_eq!(c.value(), -4);
    }

    #[test]
    fn default_predicts_taken() {
        // Value 0 means weakly taken, matching `table[hash] >= 0` in the
        // paper's GShare listing.
        assert!(I2::default().is_taken());
        assert!(I2::default().is_weak());
    }

    #[test]
    fn sum_or_sub_moves_toward_outcome() {
        let mut c = I2::new(0);
        c.sum_or_sub(false);
        assert_eq!(c.value(), -1);
        assert!(!c.is_taken());
        c.sum_or_sub(true);
        c.sum_or_sub(true);
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn decay_moves_toward_zero() {
        let mut c = SatCounter::<4>::new(5);
        c.decay();
        assert_eq!(c.value(), 4);
        let mut c = SatCounter::<4>::new(-3);
        c.decay();
        assert_eq!(c.value(), -2);
        let mut c = SatCounter::<4>::new(0);
        c.decay();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn unsigned_saturates() {
        let mut u = USatCounter::<3>::new(0);
        u -= 1;
        assert_eq!(u.value(), 0);
        u += 200;
        assert_eq!(u.value(), 7);
        u.halve();
        assert_eq!(u.value(), 3);
    }

    #[test]
    fn unsigned_full_width() {
        let u = USatCounter::<8>::new(255);
        assert_eq!(u.value(), 255);
        assert!(u.is_saturated());
    }

    #[test]
    fn comparison_operators() {
        let c = I2::new(1);
        assert!(c >= 0);
        assert!(c > -1);
        assert!(c == 1i8);
        let u = U2::new(2);
        assert!(u > 1);
        assert!(u < 3);
    }

    // Deterministic property sweeps (offline stand-in for proptest).

    #[test]
    fn signed_always_in_range() {
        let mut rng = Xorshift64::new(0xc0_0001);
        for _ in 0..256 {
            let start = rng.range_inclusive(0, 19) as i8 - 10;
            let mut c = SatCounter::<3>::new(start);
            for _ in 0..rng.below(64) {
                c += rng.range_inclusive(0, 6) as i8 - 3;
                assert!(c.value() >= SatCounter::<3>::MIN);
                assert!(c.value() <= SatCounter::<3>::MAX);
            }
        }
    }

    #[test]
    fn unsigned_always_in_range() {
        let mut rng = Xorshift64::new(0xc0_0002);
        for _ in 0..256 {
            let mut u = USatCounter::<4>::new(7);
            for _ in 0..rng.below(64) {
                if rng.next_bool() {
                    u += 1
                } else {
                    u -= 1
                }
                assert!(u.value() <= USatCounter::<4>::MAX);
            }
        }
    }

    #[test]
    fn sum_or_sub_matches_reference() {
        // Reference model: plain integer clamped after every step.
        let mut rng = Xorshift64::new(0xc0_0003);
        for _ in 0..256 {
            let mut c = I2::default();
            let mut reference: i32 = 0;
            for _ in 0..rng.below(128) {
                let t = rng.next_bool();
                c.sum_or_sub(t);
                reference = (reference + if t { 1 } else { -1 }).clamp(-2, 1);
                assert_eq!(c.value() as i32, reference);
            }
        }
    }
}
