//! Path history: a register of recent branch-address bits.

/// Records the low bits of the addresses of the last `depth` branches.
///
/// Perceptron- and TAGE-family predictors mix *where* recent branches were
/// (the path) with *what they did* (the outcome history) to disambiguate
/// different program paths that produce the same outcome pattern.
///
/// # Examples
///
/// ```
/// use mbp_utils::PathHistory;
///
/// let mut p = PathHistory::new(8, 2); // 8 branches deep, 2 bits each
/// p.push(0x40_1001);
/// p.push(0x40_1007);
/// assert_eq!(p.value() & 0b11, 0b11); // low 2 bits of the latest address
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathHistory {
    value: u64,
    depth: usize,
    bits_per_branch: u32,
}

impl PathHistory {
    /// Creates an empty path history of `depth` branches, keeping
    /// `bits_per_branch` low address bits per branch.
    ///
    /// # Panics
    ///
    /// Panics if `depth * bits_per_branch` is zero or exceeds 64.
    pub fn new(depth: usize, bits_per_branch: u32) -> Self {
        let total = depth as u64 * bits_per_branch as u64;
        assert!(
            (1..=64).contains(&total),
            "path history must span 1..=64 bits, got {total}"
        );
        Self {
            value: 0,
            depth,
            bits_per_branch,
        }
    }

    /// Shifts in the low bits of a new branch address.
    pub fn push(&mut self, ip: u64) {
        let total = self.depth as u32 * self.bits_per_branch;
        let mask = if total == 64 {
            u64::MAX
        } else {
            (1u64 << total) - 1
        };
        let branch_mask = (1u64 << self.bits_per_branch) - 1;
        self.value = ((self.value << self.bits_per_branch) | (ip & branch_mask)) & mask;
    }

    /// The packed path register (newest branch in the low bits).
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of branches tracked.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Clears the register.
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_newest_low() {
        let mut p = PathHistory::new(4, 4);
        p.push(0xA);
        p.push(0xB);
        assert_eq!(p.value(), 0xAB);
    }

    #[test]
    fn old_entries_fall_off() {
        let mut p = PathHistory::new(2, 4);
        p.push(0x1);
        p.push(0x2);
        p.push(0x3);
        assert_eq!(p.value(), 0x23);
    }

    #[test]
    fn masks_address_bits() {
        let mut p = PathHistory::new(2, 2);
        p.push(0xFF);
        assert_eq!(p.value(), 0b11);
    }

    #[test]
    fn full_64_bit_register() {
        let mut p = PathHistory::new(16, 4);
        for i in 0..20u64 {
            p.push(i);
        }
        // Last 16 pushes were 4..=19; the newest (19 = 0x3) sits in low bits.
        assert_eq!(p.value() & 0xF, 19 % 16);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn oversized_register_rejected() {
        PathHistory::new(33, 2);
    }

    #[test]
    fn clear_resets() {
        let mut p = PathHistory::new(4, 4);
        p.push(0xF);
        p.clear();
        assert_eq!(p.value(), 0);
    }
}
