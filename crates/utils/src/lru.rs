//! A small fixed-associativity LRU set.

/// An LRU-managed set of up to `ways` tagged entries.
///
/// The building block for associative hardware structures: branch target
/// buffers, indirect-target tables, and the cache models in
/// `champsim-lite`. Entries are keyed by an opaque `u64` tag and carry a
/// payload `T`.
///
/// # Examples
///
/// ```
/// use mbp_utils::LruSet;
///
/// let mut set: LruSet<&str> = LruSet::new(2);
/// set.insert(1, "one");
/// set.insert(2, "two");
/// set.get(1); // touch: 1 becomes most recent
/// set.insert(3, "three"); // evicts tag 2 (the LRU entry)
/// assert!(set.get(2).is_none());
/// assert_eq!(set.get(1), Some(&"one"));
/// ```
#[derive(Clone, Debug)]
pub struct LruSet<T> {
    /// Most-recently-used entry first.
    entries: Vec<(u64, T)>,
    ways: usize,
}

impl<T> LruSet<T> {
    /// Creates an empty set with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        Self {
            entries: Vec::with_capacity(ways),
            ways,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Associativity of the set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Looks up `tag`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, tag: u64) -> Option<&T> {
        let pos = self.entries.iter().position(|(t, _)| *t == tag)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    /// Looks up `tag` mutably, promoting it on a hit.
    pub fn get_mut(&mut self, tag: u64) -> Option<&mut T> {
        let pos = self.entries.iter().position(|(t, _)| *t == tag)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&mut self.entries[0].1)
    }

    /// Looks up `tag` *without* updating recency (a probe, not an access).
    pub fn peek(&self, tag: u64) -> Option<&T> {
        self.entries.iter().find(|(t, _)| *t == tag).map(|(_, v)| v)
    }

    /// Inserts or replaces `tag`, making it most-recently-used. Returns the
    /// evicted `(tag, value)` pair if the set overflowed.
    pub fn insert(&mut self, tag: u64, value: T) -> Option<(u64, T)> {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == tag) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (tag, value));
        if self.entries.len() > self.ways {
            self.entries.pop()
        } else {
            None
        }
    }

    /// Removes `tag`, returning its value if present.
    pub fn remove(&mut self, tag: u64) -> Option<T> {
        let pos = self.entries.iter().position(|(t, _)| *t == tag)?;
        Some(self.entries.remove(pos).1)
    }

    /// The tag that would be evicted by the next insertion of a new tag.
    pub fn victim(&self) -> Option<u64> {
        if self.entries.len() == self.ways {
            self.entries.last().map(|(t, _)| *t)
        } else {
            None
        }
    }

    /// Iterates over `(tag, value)` pairs, most-recently-used first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries.iter().map(|(t, v)| (*t, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64;

    #[test]
    fn evicts_least_recently_used() {
        let mut s = LruSet::new(3);
        s.insert(1, 10);
        s.insert(2, 20);
        s.insert(3, 30);
        s.get(1);
        let evicted = s.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut s = LruSet::new(2);
        s.insert(1, 10);
        s.insert(2, 20);
        assert_eq!(s.insert(1, 11), None);
        assert_eq!(s.get(1), Some(&11));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut s = LruSet::new(2);
        s.insert(1, 10);
        s.insert(2, 20);
        s.peek(1);
        let evicted = s.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn get_mut_promotes_and_mutates() {
        let mut s = LruSet::new(2);
        s.insert(1, 10);
        s.insert(2, 20);
        *s.get_mut(1).unwrap() = 99;
        let evicted = s.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(s.peek(1), Some(&99));
    }

    #[test]
    fn victim_reports_lru_when_full() {
        let mut s = LruSet::new(2);
        assert_eq!(s.victim(), None);
        s.insert(1, 0);
        assert_eq!(s.victim(), None);
        s.insert(2, 0);
        assert_eq!(s.victim(), Some(1));
    }

    #[test]
    fn remove_entry() {
        let mut s = LruSet::new(2);
        s.insert(1, 10);
        assert_eq!(s.remove(1), Some(10));
        assert_eq!(s.remove(1), None);
        assert!(s.is_empty());
    }

    // Deterministic property sweep (offline stand-in for proptest).

    #[test]
    fn never_exceeds_ways() {
        let mut rng = Xorshift64::new(0x12c_0001);
        for _ in 0..128 {
            let ways = rng.range_inclusive(1, 7) as usize;
            let mut s = LruSet::new(ways);
            for _ in 0..rng.below(200) {
                let tag = rng.below(16);
                if rng.next_bool() {
                    s.insert(tag, tag);
                } else if let Some(v) = s.get(tag) {
                    assert_eq!(*v, tag);
                }
                assert!(s.len() <= ways);
            }
        }
    }
}
