//! Cheap hash functions for table indexing.

/// Folds a 64-bit value into `width` bits by XOR-ing consecutive
/// `width`-bit chunks — MBPlib's `mbp::XorFold`.
///
/// This is the canonical way to compress `ip ^ history` into a table index:
/// every input bit influences exactly one output bit, so nearby addresses
/// stay de-aliased.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
///
/// # Examples
///
/// ```
/// use mbp_utils::xor_fold;
///
/// assert_eq!(xor_fold(0b1011_0110, 4), 0b1011 ^ 0b0110);
/// assert_eq!(xor_fold(u64::MAX, 64), u64::MAX);
/// assert!(xor_fold(0xdead_beef_cafe_f00d, 13) < (1 << 13));
/// ```
pub fn xor_fold(mut value: u64, width: u32) -> u64 {
    assert!((1..=64).contains(&width), "fold width must be in 1..=64");
    if width == 64 {
        return value;
    }
    let mask = (1u64 << width) - 1;
    let mut acc = 0u64;
    while value != 0 {
        acc ^= value & mask;
        value >>= width;
    }
    acc
}

/// Column-wise [`xor_fold`]: folds `values[i]` into `width` bits and writes
/// the result to `out[i]`, for every lane.
///
/// Produces exactly the same values as calling `xor_fold` per element — the
/// scalar loop stops early once the remaining value is zero, while this one
/// always XORs all `ceil(64 / width)` chunks, but the extra chunks are zero
/// and XOR is identity on zero. The loop structure (fixed outer shift
/// rounds, data-independent inner lane loop) is what the batched predictor
/// kernels need for autovectorization: the scalar fold's data-dependent
/// `while value != 0` defeats SIMD.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64, or if `out` is shorter
/// than `values`.
///
/// # Examples
///
/// ```
/// use mbp_utils::{xor_fold, xor_fold_columns};
///
/// let values = [0xdead_beef_cafe_f00d, 0x1234_5678, 0, u64::MAX];
/// let mut out = [0u64; 4];
/// xor_fold_columns(&values, 13, &mut out);
/// for (v, o) in values.iter().zip(&out) {
///     assert_eq!(*o, xor_fold(*v, 13));
/// }
/// ```
pub fn xor_fold_columns(values: &[u64], width: u32, out: &mut [u64]) {
    assert!((1..=64).contains(&width), "fold width must be in 1..=64");
    assert!(
        out.len() >= values.len(),
        "output shorter than input: {} < {}",
        out.len(),
        values.len()
    );
    let out = &mut out[..values.len()];
    if width >= 64 {
        out.copy_from_slice(values);
        return;
    }
    let mask = (1u64 << width) - 1;
    for o in out.iter_mut() {
        *o = 0;
    }
    let mut shift = 0u32;
    while shift < 64 {
        for (o, &v) in out.iter_mut().zip(values) {
            *o ^= (v >> shift) & mask;
        }
        shift += width;
    }
}

/// A strong 64-bit mixer (the splitmix64 finalizer).
///
/// Useful when a predictor needs statistically independent hashes of the
/// same address, e.g. the skewed bank functions of 2bc-gskew or tag hashes
/// in TAGE.
///
/// # Examples
///
/// ```
/// use mbp_utils::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fast, non-cryptographic hasher for simulator-internal maps keyed by
/// branch addresses.
///
/// `std`'s default SipHash is robust against adversarial keys but costs
/// real time in per-branch bookkeeping; branch addresses are not
/// adversarial, so the simulators use this multiply-xor hasher instead
/// (same idea as the `fxhash`/`ahash` crates, in-tree).
///
/// # Examples
///
/// ```
/// use std::collections::HashMap;
/// use mbp_utils::FastHashBuilder;
///
/// let mut stats: HashMap<u64, u64, FastHashBuilder> = HashMap::default();
/// stats.insert(0x40_1000, 3);
/// assert_eq!(stats[&0x40_1000], 3);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHashBuilder;

impl std::hash::BuildHasher for FastHashBuilder {
    type Hasher = FastHasher;

    fn build_hasher(&self) -> FastHasher {
        FastHasher(0)
    }
}

/// The hasher produced by [`FastHashBuilder`].
#[derive(Clone, Debug, Default)]
pub struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(29);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xorshift64;

    #[test]
    fn xor_fold_identity_for_small_values() {
        assert_eq!(xor_fold(0b101, 8), 0b101);
        assert_eq!(xor_fold(0, 13), 0);
    }

    #[test]
    fn xor_fold_known_values() {
        assert_eq!(xor_fold(0xFF, 4), 0xF ^ 0xF);
        assert_eq!(xor_fold(0x1234_5678, 16), 0x1234 ^ 0x5678);
        assert_eq!(
            xor_fold(0xABCD_EF01_2345_6789, 32),
            0xABCD_EF01 ^ 0x2345_6789
        );
    }

    #[test]
    #[should_panic(expected = "fold width")]
    fn xor_fold_zero_width_panics() {
        xor_fold(1, 0);
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Consecutive inputs should produce wildly different low bits; a
        // weak mixer here would alias predictor banks.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024u64 {
            seen.insert(mix64(i) & 0x3FF);
        }
        assert!(
            seen.len() > 600,
            "only {} distinct low-10-bit values",
            seen.len()
        );
    }

    // Deterministic property sweeps (offline stand-in for proptest).

    #[test]
    fn xor_fold_in_range() {
        let mut rng = Xorshift64::new(0x4a54_0001);
        for _ in 0..4096 {
            let v = rng.next_u64();
            let width = rng.range_inclusive(1, 63) as u32;
            assert!(xor_fold(v, width) < (1u64 << width));
        }
    }

    #[test]
    fn xor_fold_columns_matches_scalar() {
        let mut rng = Xorshift64::new(0x4a54_0003);
        for _ in 0..256 {
            let width = rng.range_inclusive(1, 64) as u32;
            let n = rng.below(40) as usize;
            let values: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let mut out = vec![u64::MAX; n + 2]; // oversized, pre-dirtied
            xor_fold_columns(&values, width, &mut out);
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(out[i], xor_fold(v, width), "lane {i} width {width}");
            }
            // Lanes beyond the input stay untouched.
            assert_eq!(&out[n..], &[u64::MAX, u64::MAX]);
        }
    }

    #[test]
    #[should_panic(expected = "output shorter")]
    fn xor_fold_columns_rejects_short_output() {
        xor_fold_columns(&[1, 2, 3], 8, &mut [0u64; 2]);
    }

    #[test]
    fn xor_fold_is_linear() {
        // Fold is XOR-linear: fold(a ^ b) == fold(a) ^ fold(b).
        let mut rng = Xorshift64::new(0x4a54_0002);
        for _ in 0..4096 {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let width = rng.range_inclusive(1, 63) as u32;
            assert_eq!(
                xor_fold(a ^ b, width),
                xor_fold(a, width) ^ xor_fold(b, width)
            );
        }
    }
}
