//! Randomized invariant checks for the utilities library.
//!
//! These are property tests in the proptest style but std-only: inputs are
//! drawn from the in-tree seeded [`Xorshift64`], so every run explores the
//! same (large) input set and a failure reproduces exactly. Each test states
//! an invariant that predictors rely on implicitly — counters that never
//! leave their range, an incremental fold that always equals the naive one,
//! replacement policies that never name an absent or just-used victim,
//! hashes that are pure functions — and hammers it with a few thousand
//! random operation sequences.

use std::hash::{BuildHasher, Hasher};

use mbp_utils::{
    mix64, xor_fold, FastHashBuilder, FoldedHistory, HistoryRegister, LruSet, SatCounter, TreePlru,
    USatCounter, Xorshift64,
};

/// Drives one signed saturating counter through random updates, checking
/// range, monotonicity and saturation after every step.
fn check_sat_counter<const BITS: u32>(rng: &mut Xorshift64) {
    let mut c = SatCounter::<BITS>::new(rng.range_inclusive(0, 255) as i8);
    assert!((SatCounter::<BITS>::MIN..=SatCounter::<BITS>::MAX).contains(&c.value()));
    for _ in 0..500 {
        let before = c.value();
        match rng.below(3) {
            0 => {
                let taken = rng.next_bool();
                c.sum_or_sub(taken);
                // Monotone: an update moves the value by at most one step in
                // the update's direction, never the other way.
                if taken {
                    assert!(c.value() >= before, "taken update decreased counter");
                    assert!(c.value() - before <= 1);
                } else {
                    assert!(c.value() <= before, "not-taken update increased counter");
                    assert!(before - c.value() <= 1);
                }
            }
            1 => {
                let step = rng.range_inclusive(0, 127) as i8;
                if rng.next_bool() {
                    c += step;
                    assert!(c.value() >= before, "+= decreased counter");
                } else {
                    c -= step;
                    assert!(c.value() <= before, "-= increased counter");
                }
            }
            _ => {
                c.decay();
                assert!(
                    c.value().abs() <= before.abs(),
                    "decay moved value away from zero"
                );
            }
        }
        // Never out of range, no matter the operation mix.
        assert!(
            (SatCounter::<BITS>::MIN..=SatCounter::<BITS>::MAX).contains(&c.value()),
            "{BITS}-bit counter escaped its range: {}",
            c.value()
        );
        assert_eq!(
            c.is_saturated(),
            c.value() == SatCounter::<BITS>::MIN || c.value() == SatCounter::<BITS>::MAX
        );
        assert_eq!(c.is_taken(), c.value() >= 0);
    }
}

#[test]
fn sat_counter_stays_in_range_and_is_monotone() {
    let mut rng = Xorshift64::new(0x5a7_0001);
    for _ in 0..20 {
        check_sat_counter::<1>(&mut rng);
        check_sat_counter::<2>(&mut rng);
        check_sat_counter::<3>(&mut rng);
        check_sat_counter::<5>(&mut rng);
        check_sat_counter::<7>(&mut rng);
    }
}

/// Same discipline for the unsigned counters (TAGE `u` bits and friends).
fn check_usat_counter<const BITS: u32>(rng: &mut Xorshift64) {
    let mut c = USatCounter::<BITS>::new(rng.range_inclusive(0, 255) as u8);
    assert!(c.value() <= USatCounter::<BITS>::MAX);
    for _ in 0..500 {
        let before = c.value();
        match rng.below(4) {
            0 => {
                c += rng.range_inclusive(0, 255) as u8;
                assert!(c.value() >= before, "+= decreased counter");
            }
            1 => {
                c -= rng.range_inclusive(0, 255) as u8;
                assert!(c.value() <= before, "-= increased counter");
            }
            2 => {
                c.halve();
                assert_eq!(c.value(), before >> 1);
            }
            _ => {
                c.reset();
                assert!(c.is_zero());
            }
        }
        assert!(
            c.value() <= USatCounter::<BITS>::MAX,
            "{BITS}-bit unsigned counter overflowed: {}",
            c.value()
        );
        assert_eq!(c.is_saturated(), c.value() == USatCounter::<BITS>::MAX);
        assert_eq!(c.is_zero(), c.value() == 0);
    }
}

#[test]
fn usat_counter_never_over_or_underflows() {
    let mut rng = Xorshift64::new(0x05a7_0002);
    for _ in 0..20 {
        check_usat_counter::<1>(&mut rng);
        check_usat_counter::<2>(&mut rng);
        check_usat_counter::<4>(&mut rng);
        check_usat_counter::<8>(&mut rng);
    }
}

#[test]
fn folded_history_equals_naive_fold_of_full_register() {
    // The incremental O(1) fold used by TAGE-family predictors must agree
    // with recomputing the fold from the whole history register at every
    // single step, for arbitrary (length, width) shapes including width
    // dividing / not dividing / exceeding the length.
    let mut rng = Xorshift64::new(0xf01d_0003);
    for _ in 0..100 {
        let hist_len = rng.range_inclusive(1, 400) as usize;
        let width = rng.range_inclusive(1, 24) as u32;
        let mut hist = HistoryRegister::new(hist_len);
        let mut folded = FoldedHistory::new(hist_len, width);
        for step in 0..rng.range_inclusive(1, 300) {
            let taken = rng.next_bool();
            folded.update(taken, hist.bit(hist_len - 1));
            hist.push(taken);
            assert_eq!(
                folded.value(),
                hist.fold(width),
                "fold diverged: hist_len={hist_len} width={width} step={step}"
            );
            assert!(folded.value() < 1u64 << width, "fold exceeded its width");
        }
        folded.clear();
        hist.clear();
        assert_eq!(folded.value(), hist.fold(width), "clear() must match");
    }
}

#[test]
fn lru_victim_is_always_a_resident_lru_tag() {
    // Model the set with a shadow recency list; check after every operation:
    // the victim exists iff the set is full, is a resident tag, never the
    // most recently used one (for ways > 1), and the next overflow evicts
    // exactly the announced victim.
    let mut rng = Xorshift64::new(0x12c_0004);
    for _ in 0..64 {
        let ways = rng.range_inclusive(1, 8) as usize;
        let mut set: LruSet<u64> = LruSet::new(ways);
        let mut shadow: Vec<u64> = Vec::new(); // most recent first
        for _ in 0..400 {
            let tag = rng.below(12);
            match rng.below(3) {
                0 => {
                    let evicted = set.insert(tag, tag ^ 1);
                    shadow.retain(|&t| t != tag);
                    shadow.insert(0, tag);
                    if shadow.len() > ways {
                        let lru = shadow.pop().unwrap();
                        assert_eq!(
                            evicted.map(|(t, _)| t),
                            Some(lru),
                            "overflow must evict the LRU tag"
                        );
                    } else {
                        assert!(evicted.is_none(), "no eviction while not full");
                    }
                }
                1 => {
                    let hit = set.get(tag).copied();
                    assert_eq!(hit.is_some(), shadow.contains(&tag));
                    if hit.is_some() {
                        shadow.retain(|&t| t != tag);
                        shadow.insert(0, tag);
                    }
                }
                _ => {
                    let removed = set.remove(tag);
                    assert_eq!(removed.is_some(), shadow.contains(&tag));
                    shadow.retain(|&t| t != tag);
                }
            }
            assert_eq!(set.len(), shadow.len());
            match set.victim() {
                Some(v) => {
                    assert_eq!(shadow.len(), ways, "victim implies a full set");
                    assert_eq!(v, *shadow.last().unwrap(), "victim must be the LRU tag");
                    if ways > 1 {
                        assert_ne!(v, shadow[0], "victim may not be the MRU tag");
                    }
                }
                None => assert!(shadow.len() < ways, "a full set must name a victim"),
            }
        }
    }
}

#[test]
fn plru_victim_is_valid_and_never_the_most_recent() {
    let mut rng = Xorshift64::new(0x9_1f00_0005);
    for &ways in &[2usize, 4, 8, 16, 32] {
        let mut plru = TreePlru::new(ways);
        for _ in 0..1000 {
            let way = rng.below(ways as u64) as usize;
            plru.touch(way);
            let v = plru.victim();
            assert!(v < ways, "victim out of range: {v} >= {ways}");
            assert_ne!(v, way, "victim is the just-touched way");
        }
        // Repeatedly evicting and touching the victim cycles through every
        // way — PLRU starves no way.
        let mut seen = vec![false; ways];
        for _ in 0..4 * ways {
            let v = plru.victim();
            seen[v] = true;
            plru.touch(v);
        }
        assert!(seen.iter().all(|&s| s), "{ways}-way PLRU starved a way");
    }
}

#[test]
fn hashes_are_deterministic_pure_functions() {
    let mut rng = Xorshift64::new(0x4a54_0006);
    for _ in 0..2000 {
        let x = rng.next_u64();
        // Pure: same input, same output, on repeated evaluation.
        assert_eq!(mix64(x), mix64(x));
        let width = rng.range_inclusive(1, 64) as u32;
        let folded = xor_fold(x, width);
        assert_eq!(folded, xor_fold(x, width));
        if width < 64 {
            assert!(folded < 1u64 << width, "xor_fold escaped its width");
        }
        // Folding preserves the all-zero and full-width identities.
        assert_eq!(xor_fold(0, width), 0);
        assert_eq!(xor_fold(x, 64), x);

        // The map hasher: hashing the same byte stream from two fresh
        // hashers gives the same digest (HashMap correctness depends on it).
        let bytes: Vec<u8> = (0..rng.below(32)).map(|_| rng.next_u64() as u8).collect();
        let digest = |data: &[u8]| {
            let mut h = FastHashBuilder.build_hasher();
            h.write(data);
            h.finish()
        };
        assert_eq!(digest(&bytes), digest(&bytes));
        // And u64 writes agree with themselves across builder instances.
        let mut a = FastHashBuilder.build_hasher();
        let mut b = FastHashBuilder.build_hasher();
        a.write_u64(x);
        b.write_u64(x);
        assert_eq!(a.finish(), b.finish());
    }
}
