//! Table-driven proof that every `CompressError` variant is reachable from
//! a crafted input, for each codec. This pins the error taxonomy: a refactor
//! that silently collapses variants (or starts panicking instead) fails
//! here, not in a fleet replaying corrupt traces.

use mbp_compress::{compress, decompress, Codec, CompressError};

/// The variant classes of the taxonomy (payloads aside).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    BadLevel,
    BadMagic,
    Truncated,
    Corrupt,
}

fn kind(e: &CompressError) -> Kind {
    match e {
        CompressError::BadLevel { .. } => Kind::BadLevel,
        CompressError::BadMagic => Kind::BadMagic,
        CompressError::Truncated => Kind::Truncated,
        CompressError::Corrupt(_) => Kind::Corrupt,
    }
}

/// A valid stream to mutate: compressible structure plus an incompressible
/// tail, so both entropy-coded and raw blocks appear.
fn valid_stream(codec: Codec) -> Vec<u8> {
    let mut data = b"the branch at 0x401000 was taken ".repeat(200);
    data.extend((0u32..600).flat_map(|i| (i.wrapping_mul(2_654_435_761)).to_le_bytes()));
    compress(&data, codec, 3).expect("valid input compresses")
}

#[test]
fn every_variant_reachable_per_codec() {
    for codec in [Codec::Mgz, Codec::Mzst] {
        let packed = valid_stream(codec);
        assert!(decompress(&packed).is_ok(), "{codec}: baseline decodes");

        // (case name, crafted input, expected variant class)
        let mut cases: Vec<(&str, Vec<u8>, Kind)> = vec![
            ("empty input", Vec::new(), Kind::BadMagic),
            ("wrong magic", b"NOPE0123456789".to_vec(), Kind::BadMagic),
            (
                "magic of the other codec body",
                {
                    // Valid magic, rest of the header missing.
                    packed[..4].to_vec()
                },
                Kind::Truncated,
            ),
            ("cut mid size field", packed[..8].to_vec(), Kind::Truncated),
            (
                "cut mid first block",
                packed[..packed.len().min(40)].to_vec(),
                Kind::Truncated,
            ),
            (
                "cut before checksum trailer",
                packed[..packed.len() - 8].to_vec(),
                Kind::Truncated,
            ),
            (
                "checksum trailer flipped",
                {
                    let mut bad = packed.clone();
                    let last = bad.len() - 1;
                    bad[last] ^= 0xFF;
                    bad
                },
                Kind::Corrupt,
            ),
            (
                "declared size exceeds stream capacity",
                {
                    let mut bad = packed.clone();
                    bad[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
                    bad
                },
                Kind::Corrupt,
            ),
            (
                "unknown block kind",
                {
                    let mut bad = codec.magic().to_vec();
                    bad.extend_from_slice(&1u64.to_le_bytes());
                    bad.push(7); // kinds are 0 (raw) and 1 (entropy)
                    bad
                },
                Kind::Corrupt,
            ),
            (
                "over-subscribed Huffman code",
                {
                    // An entropy block whose code-length nibbles are all 1:
                    // far more than two length-1 codes is over-subscribed.
                    let mut bad = codec.magic().to_vec();
                    bad.extend_from_slice(&64u64.to_le_bytes());
                    bad.push(1);
                    bad.extend(std::iter::repeat_n(0x11u8, 200));
                    bad
                },
                Kind::Corrupt,
            ),
        ];
        for (name, input, want) in cases.drain(..) {
            let err =
                decompress(&input).expect_err(&format!("{codec}/{name}: must error, not decode"));
            assert_eq!(
                kind(&err),
                want,
                "{codec}/{name}: got {err:?}, wanted {want:?}"
            );
        }

        // BadLevel comes from the compression entry points.
        for level in [0, codec.max_level() + 1] {
            let err = compress(b"x", codec, level).expect_err("level out of range");
            assert_eq!(kind(&err), Kind::BadLevel, "{codec}/level {level}");
            assert!(matches!(
                err,
                CompressError::BadLevel { codec: c, level: l } if c == codec && l == level
            ));
        }
    }
}

#[test]
fn display_messages_are_one_line() {
    // `mbpsim` prints these to stderr as one-line structured errors; a
    // variant growing an embedded newline would break that contract.
    let samples = [
        CompressError::BadLevel {
            codec: Codec::Mgz,
            level: 99,
        },
        CompressError::BadMagic,
        CompressError::Truncated,
        CompressError::Corrupt("content checksum mismatch"),
    ];
    for e in samples {
        let msg = e.to_string();
        assert!(!msg.contains('\n'), "{msg:?}");
        assert!(!msg.is_empty());
    }
}
