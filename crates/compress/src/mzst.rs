//! MZST: the zstd-like codec — a 1 MiB window, level-scaled match search,
//! and a table-driven decoder whose speed does not depend on the level
//! (the property §VII-D measures in Table IV).

use crate::block;
use crate::entropy::TableDecoder;
use crate::error::CompressError;
use crate::lzss::MatchParams;
use crate::Codec;

fn match_params(level: u32) -> MatchParams {
    MatchParams {
        // The large window is where zstd's ratio advantage over gzip comes
        // from on trace data: SBBT's redundancy recurs at loop scale, far
        // beyond 32 KiB.
        window: (1 << 20) - 1,
        min_match: 4,
        max_match: 2179, // the longest length the shared code table encodes
        // Levels 1..=22 scale search effort; decode cost is unaffected.
        max_chain: 1usize << (level / 3 + 2).min(9),
        lazy: level >= 6,
        nice_match: 32 + 16 * level as usize,
    }
}

pub(crate) fn compress(data: &[u8], level: u32) -> Vec<u8> {
    block::compress(data, Codec::Mzst.magic(), &match_params(level))
}

pub(crate) fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    block::decompress::<TableDecoder>(data, Codec::Mzst.magic())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_long_range_redundancy() {
        // An incompressible 80 KiB unit repeated once: the only redundancy
        // sits 80 KiB back — outside MGZ's window, inside MZST's.
        let mut x = 0x1234_5678_9abc_def0u64;
        let unit: Vec<u8> = (0..10_000)
            .flat_map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 16).to_le_bytes()
            })
            .collect();
        let mut data = unit.clone();
        data.extend_from_slice(&unit);
        let packed = compress(&data, 19);
        assert_eq!(decompress(&packed).unwrap(), data);
        let mgz_packed = crate::mgz::compress(&data, 9);
        assert!(
            packed.len() < mgz_packed.len(),
            "large window should win on long-range redundancy: {} vs {}",
            packed.len(),
            mgz_packed.len()
        );
    }

    #[test]
    fn decode_speed_independent_of_level_structurally() {
        let data: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i % 97).to_le_bytes())
            .collect();
        let low = compress(&data, 1);
        let high = compress(&data, 22);
        assert_eq!(decompress(&low).unwrap(), data);
        assert_eq!(decompress(&high).unwrap(), data);
        assert!(high.len() <= low.len() + low.len() / 50);
    }

    #[test]
    fn window_is_a_megabyte() {
        assert_eq!(match_params(19).window, (1 << 20) - 1);
    }
}
