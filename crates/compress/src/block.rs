//! Shared block container: both codecs store a magic, the uncompressed
//! size, and a sequence of raw or entropy-coded blocks; they differ in
//! window size, match-search effort and decoder implementation.

use crate::entropy::{
    canonical_codes, dist_code, huffman_lengths, len_code, BitReader, BitWriter, SymbolDecoder,
    DIST_TABLE, EOB, LEN_TABLE, NUM_DIST, NUM_LEN_CODES, NUM_LITLEN,
};
use crate::error::CompressError;
use crate::lzss::{self, MatchParams, Sequence};

/// Sequences per entropy-coded block.
const BLOCK_SEQS: usize = 1 << 16;

/// Match-finder chunk size: inputs are parsed in independent chunks so the
/// `prev` chain array stays bounded on multi-hundred-megabyte traces.
/// Matches never cross a chunk boundary (the window restarts), but decoded
/// distances remain valid globally because the decoder appends chunks to
/// one output buffer.
const PARSE_CHUNK: usize = 4 << 20;

/// Upper bound on how many output bytes one compressed input byte can
/// yield: a match symbol costs at least two bits (one literal/length code
/// bit plus one distance code bit) and emits at most the 2179-byte maximum
/// match, so eight input bits can never produce more than four maximal
/// matches. Any header declaring more than this is corrupt, and no `Vec`
/// reservation is ever sized beyond it.
const MAX_EXPANSION: u64 = 4 * 2179;

/// Little-endian `u64` from the first 8 bytes of `bytes` (zero-padded when
/// shorter) — panic-free on any input length.
#[inline]
fn le_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[..n].copy_from_slice(&bytes[..n]);
    u64::from_le_bytes(buf)
}

/// Little-endian `u32` from the first 4 bytes of `bytes` (zero-padded when
/// shorter).
#[inline]
fn le_u32(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    let n = bytes.len().min(4);
    buf[..n].copy_from_slice(&bytes[..n]);
    u32::from_le_bytes(buf)
}

/// Content checksum over the uncompressed bytes (8-byte chunks through the
/// splitmix finalizer) — the analogue of gzip's CRC32 / zstd's XXH64
/// trailer, so silent corruption cannot masquerade as valid trace data.
pub(crate) fn checksum64(data: &[u8]) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
    // Four independent lanes keep the multiply chains out of each other's
    // way (the same trick XXH64 uses); the lanes fold together at the end.
    let mut lanes = [
        0x5ee5_c0de_u64 ^ data.len() as u64,
        0x9e37_79b9_7f4a_7c15,
        0xbf58_476d_1ce4_e5b9,
        0x94d0_49bb_1331_11eb,
    ];
    let mut blocks = data.chunks_exact(32);
    for b in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = mix(*lane ^ le_u64(&b[8 * i..]));
        }
    }
    let mut h = mix(lanes[0]
        ^ lanes[1].rotate_left(17)
        ^ lanes[2].rotate_left(31)
        ^ lanes[3].rotate_left(47));
    let mut chunks = blocks.remainder().chunks_exact(8);
    for c in &mut chunks {
        h = mix(h ^ le_u64(c));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        h = mix(h ^ le_u64(rest));
    }
    h
}

pub(crate) fn compress(data: &[u8], magic: [u8; 4], params: &MatchParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 64);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    // Empty input needs no blocks: the decoder stops at size 0 and goes
    // straight to the checksum trailer.
    for chunk in data.chunks(PARSE_CHUNK) {
        let seqs = lzss::parse(chunk, params);
        for block in seqs.chunks(BLOCK_SEQS) {
            encode_block(chunk, block, &mut out);
        }
    }
    out.extend_from_slice(&checksum64(data).to_le_bytes());
    out
}

fn encode_block(data: &[u8], seqs: &[Sequence], out: &mut Vec<u8>) {
    let mut lit_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    let mut raw_bytes = 0usize;
    for s in seqs {
        for &b in &data[s.lit_start..s.lit_start + s.lit_len] {
            lit_freq[b as usize] += 1;
        }
        raw_bytes += s.lit_len + s.match_len;
        if s.match_len > 0 {
            lit_freq[257 + len_code(s.match_len)] += 1;
            dist_freq[dist_code(s.match_dist)] += 1;
        }
    }
    lit_freq[EOB] += 1;

    let lit_lens = huffman_lengths(&lit_freq);
    let dist_lens = huffman_lengths(&dist_freq);
    let lit_codes = canonical_codes(&lit_lens);
    let dist_codes = canonical_codes(&dist_lens);

    // Encode into a scratch buffer so we can fall back to a raw block.
    let mut w = BitWriter::new(Vec::new());
    for lens in [&lit_lens, &dist_lens] {
        for &l in lens.iter() {
            w.put(l as u64, 4);
        }
    }
    for s in seqs {
        for &b in &data[s.lit_start..s.lit_start + s.lit_len] {
            w.put_code(lit_codes[b as usize], lit_lens[b as usize]);
        }
        if s.match_len > 0 {
            let lc = len_code(s.match_len);
            let sym = 257 + lc;
            w.put_code(lit_codes[sym], lit_lens[sym]);
            let (base, extra) = LEN_TABLE[lc];
            if extra > 0 {
                w.put((s.match_len as u32 - base) as u64, extra);
            }
            let dc = dist_code(s.match_dist);
            w.put_code(dist_codes[dc], dist_lens[dc]);
            let (dbase, dextra) = DIST_TABLE[dc];
            if dextra > 0 {
                w.put((s.match_dist as u32 - dbase) as u64, dextra);
            }
        }
    }
    w.put_code(lit_codes[EOB], lit_lens[EOB]);
    let encoded = w.finish();

    if encoded.len() >= raw_bytes + 4 {
        out.push(0);
        out.extend_from_slice(&(raw_bytes as u32).to_le_bytes());
        let start = seqs.first().map_or(0, |s| s.lit_start);
        out.extend_from_slice(&data[start..start + raw_bytes]);
    } else {
        out.push(1);
        out.extend_from_slice(&encoded);
    }
}

pub(crate) fn decompress<D: SymbolDecoder>(
    data: &[u8],
    magic: [u8; 4],
) -> Result<Vec<u8>, CompressError> {
    let body = data
        .get(4..)
        .filter(|_| data[..4] == magic)
        .ok_or(CompressError::BadMagic)?;
    if body.len() < 8 {
        return Err(CompressError::Truncated);
    }
    // Sanity-cap the declared size against what the actual stream could
    // possibly decode to *before* sizing any buffer from it: a corrupt
    // header claiming terabytes must fail typed, not OOM.
    let declared = le_u64(body);
    let payload_len = body.len() as u64 - 8;
    if declared > payload_len.saturating_mul(MAX_EXPANSION) {
        return Err(CompressError::Corrupt(
            "declared size exceeds stream capacity",
        ));
    }
    let size = usize::try_from(declared)
        .map_err(|_| CompressError::Corrupt("declared size exceeds address space"))?;
    // Per-block accounting happens at block granularity (64 KiB-scale), so
    // the cost is a handful of atomic adds per megabyte of trace.
    let stats = &mbp_stats::pipeline().compress;
    let _span = stats.inflate.span();
    let _event =
        mbp_stats::events::span_with_arg(mbp_stats::events::EventName::CompressInflate, declared);
    let mut out = Vec::with_capacity(size);
    let mut rest = &body[8..];
    while out.len() < size {
        let (&kind, tail) = rest.split_first().ok_or(CompressError::Truncated)?;
        rest = tail;
        let block_in = rest.len();
        let block_out = out.len();
        match kind {
            0 => {
                if rest.len() < 4 {
                    return Err(CompressError::Truncated);
                }
                let len = le_u32(rest) as usize;
                if rest.len() < 4 + len {
                    return Err(CompressError::Truncated);
                }
                out.extend_from_slice(&rest[4..4 + len]);
                rest = &rest[4 + len..];
            }
            1 => {
                let consumed = decode_block::<D>(rest, size, &mut out)?;
                rest = &rest[consumed..];
            }
            _ => return Err(CompressError::Corrupt("unknown block kind")),
        }
        let consumed = (block_in - rest.len()) as u64;
        let produced = (out.len() - block_out) as u64;
        stats.blocks_inflated.inc();
        stats.compressed_bytes.add(consumed);
        stats.inflated_bytes.add(produced);
        if let Some(ratio_pct) = (100 * produced).checked_div(consumed) {
            stats.block_ratio_pct.record(ratio_pct);
        }
        if out.len() > size {
            return Err(CompressError::Corrupt("output exceeds declared size"));
        }
    }
    let trailer = rest.get(..8).ok_or(CompressError::Truncated)?;
    if le_u64(trailer) != checksum64(&out) {
        return Err(CompressError::Corrupt("content checksum mismatch"));
    }
    Ok(out)
}

fn decode_block<D: SymbolDecoder>(
    data: &[u8],
    size: usize,
    out: &mut Vec<u8>,
) -> Result<usize, CompressError> {
    let mut r = BitReader::new(data);
    let mut lit_lens = vec![0u32; NUM_LITLEN];
    let mut dist_lens = vec![0u32; NUM_DIST];
    for lens in [&mut lit_lens, &mut dist_lens] {
        for l in lens.iter_mut() {
            *l = r.get(4)? as u32;
        }
    }
    let lit_dec = D::build(&lit_lens)?;
    let dist_dec = D::build(&dist_lens)?;
    loop {
        let sym = lit_dec.decode(&mut r)? as usize;
        match sym {
            0..=255 => out.push(sym as u8),
            EOB => break,
            _ => {
                let lc = sym - 257;
                if lc >= NUM_LEN_CODES {
                    return Err(CompressError::Corrupt("invalid length code"));
                }
                let (base, extra) = LEN_TABLE[lc];
                let len = base as usize + r.get(extra)? as usize;
                let dc = dist_dec.decode(&mut r)? as usize;
                if dc >= NUM_DIST {
                    return Err(CompressError::Corrupt("invalid distance code"));
                }
                let (dbase, dextra) = DIST_TABLE[dc];
                let dist = dbase as usize + r.get(dextra)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CompressError::Corrupt("match distance out of range"));
                }
                if dist >= len {
                    // Non-overlapping: one bulk copy.
                    let start = out.len() - dist;
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping (RLE-style): byte-by-byte semantics.
                    for _ in 0..len {
                        let b = out[out.len() - dist];
                        out.push(b);
                    }
                }
            }
        }
        if out.len() > size {
            return Err(CompressError::Corrupt("output exceeds declared size"));
        }
    }
    r.align();
    Ok(r.byte_pos())
}
