//! Error type shared by the codecs.

use std::error::Error;
use std::fmt;

use crate::Codec;

/// Errors produced while compressing or decompressing a buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompressError {
    /// The requested level is outside the codec's supported range.
    BadLevel {
        /// Codec the level was requested for.
        codec: Codec,
        /// The rejected level.
        level: u32,
    },
    /// The buffer does not start with a known codec magic.
    BadMagic,
    /// The stream ended before the declared content was decoded.
    Truncated,
    /// The stream is structurally invalid.
    Corrupt(&'static str),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::BadLevel { codec, level } => {
                write!(
                    f,
                    "invalid {codec} level {level} (valid: 1..={})",
                    codec.max_level()
                )
            }
            CompressError::BadMagic => write!(f, "unknown compression magic"),
            CompressError::Truncated => write!(f, "compressed stream is truncated"),
            CompressError::Corrupt(what) => write!(f, "corrupt compressed stream: {what}"),
        }
    }
}

impl Error for CompressError {}

impl From<CompressError> for std::io::Error {
    fn from(e: CompressError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}
