//! Shared entropy-coding layer: bit I/O, canonical Huffman codes, and the
//! two decoder implementations that differentiate the codecs.
//!
//! MGZ decodes Huffman symbols bit by bit (the DEFLATE-era approach);
//! MZST builds a flat lookup table per block and decodes each symbol with a
//! single peek (the zstd/FSE-era approach). Same code space, very
//! different decode speed — which is the point (§VII-D).

use crate::error::CompressError;

/// Maximum canonical code length supported by both decoders.
pub(crate) const MAX_CODE_LEN: u32 = 15;

/// Number of match-length codes.
pub(crate) const NUM_LEN_CODES: usize = 20;
/// Literal/length alphabet: 256 literals + EOB + length codes.
pub(crate) const NUM_LITLEN: usize = 257 + NUM_LEN_CODES;
/// End-of-block symbol.
pub(crate) const EOB: usize = 256;
/// Number of distance codes (covers distances up to 2^20).
pub(crate) const NUM_DIST: usize = 40;

/// `(base, extra_bits)` per length code, for match lengths starting at 4.
pub(crate) const LEN_TABLE: [(u32, u32); NUM_LEN_CODES] = [
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 1),
    (10, 1),
    (12, 2),
    (16, 2),
    (20, 3),
    (28, 3),
    (36, 4),
    (52, 4),
    (68, 5),
    (100, 5),
    (132, 6),
    (196, 6),
    (260, 7),
    (388, 8),
    (644, 9),
    (1156, 10),
];

const fn dist_table() -> [(u32, u32); NUM_DIST] {
    let mut t = [(0u32, 0u32); NUM_DIST];
    let mut base = 1u32;
    let mut i = 0;
    while i < NUM_DIST {
        let extra = if i < 4 { 0 } else { (i as u32 - 2) / 2 };
        t[i] = (base, extra);
        base += 1 << extra;
        i += 1;
    }
    t
}

/// `(base, extra_bits)` per distance code.
pub(crate) const DIST_TABLE: [(u32, u32); NUM_DIST] = dist_table();

pub(crate) fn len_code(len: usize) -> usize {
    debug_assert!((4..=2179).contains(&len));
    let mut code = NUM_LEN_CODES - 1;
    for (i, &(base, _)) in LEN_TABLE.iter().enumerate() {
        if (len as u32) < base {
            code = i - 1;
            break;
        }
    }
    code
}

pub(crate) fn dist_code(dist: usize) -> usize {
    debug_assert!((1..=(1 << 20)).contains(&dist));
    let mut code = NUM_DIST - 1;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if (dist as u32) < base {
            code = i - 1;
            break;
        }
    }
    code
}

// ---------------------------------------------------------------- bit I/O

pub(crate) struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub(crate) fn new(out: Vec<u8>) -> Self {
        Self {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    /// Writes `n` bits of `v`, LSB of `v` first.
    pub(crate) fn put(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 57);
        self.acc |= v << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a Huffman code MSB-first so decoders can walk it bitwise.
    pub(crate) fn put_code(&mut self, code: u32, len: u32) {
        for i in (0..len).rev() {
            self.put(((code >> i) & 1) as u64, 1);
        }
    }

    /// Pads to a byte boundary and returns the buffer.
    pub(crate) fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

pub(crate) struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    pub(crate) fn get(&mut self, n: u32) -> Result<u64, CompressError> {
        while self.nbits < n {
            let byte = *self.data.get(self.pos).ok_or(CompressError::Truncated)?;
            self.acc |= (byte as u64) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    pub(crate) fn get_bit(&mut self) -> Result<u32, CompressError> {
        Ok(self.get(1)? as u32)
    }

    /// Peeks up to `n` bits without consuming; bits beyond the end of the
    /// stream read as zero (the caller validates the decoded length).
    pub(crate) fn peek(&mut self, n: u32) -> u64 {
        while self.nbits < n && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        self.acc & ((1u64 << n) - 1)
    }

    /// Consumes `n` previously peeked bits.
    ///
    /// # Errors
    ///
    /// [`CompressError::Truncated`] if fewer than `n` bits remain.
    pub(crate) fn consume(&mut self, n: u32) -> Result<(), CompressError> {
        if self.nbits < n {
            return Err(CompressError::Truncated);
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }

    /// Discards buffered sub-byte bits so the cursor is byte-aligned.
    ///
    /// Whole buffered bytes are returned to the logical stream position.
    pub(crate) fn align(&mut self) {
        // Bits still buffered belong to bytes already pulled from `data`;
        // give whole ones back.
        let whole = (self.nbits / 8) as usize;
        self.pos -= whole;
        self.acc = 0;
        self.nbits = 0;
    }

    pub(crate) fn byte_pos(&self) -> usize {
        self.pos
    }
}

// ---------------------------------------------------------------- Huffman

/// Computes length-limited Huffman code lengths for `freqs` (zlib-style
/// frequency flattening until the limit holds).
pub(crate) fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut freqs = freqs.to_vec();
    loop {
        let lens = huffman_lengths_unlimited(&freqs);
        if lens.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lens;
        }
        for f in &mut freqs {
            if *f > 0 {
                *f = (*f >> 2) | 1;
            }
        }
    }
}

fn huffman_lengths_unlimited(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u32; n];
    match live.len() {
        0 => return lens,
        1 => {
            lens[live[0]] = 1;
            return lens;
        }
        _ => {}
    }
    let mut heap = std::collections::BinaryHeap::new();
    let mut parents: Vec<Option<usize>> = vec![None; live.len()];
    for (node, &sym) in live.iter().enumerate() {
        heap.push(std::cmp::Reverse((freqs[sym], node)));
    }
    // The loop guard proves two pops succeed; the `else` keeps the function
    // total (and panic-free) even if that invariant ever breaks.
    while heap.len() > 1 {
        let (Some(std::cmp::Reverse((fa, a))), Some(std::cmp::Reverse((fb, b)))) =
            (heap.pop(), heap.pop())
        else {
            break;
        };
        let parent = parents.len();
        parents.push(None);
        parents[a] = Some(parent);
        parents[b] = Some(parent);
        heap.push(std::cmp::Reverse((fa + fb, parent)));
    }
    for (node, &sym) in live.iter().enumerate() {
        let mut depth = 0;
        let mut cur = node;
        while let Some(p) = parents[cur] {
            depth += 1;
            cur = p;
        }
        lens[sym] = depth;
    }
    lens
}

/// Assigns canonical codes (increasing by length, then symbol).
pub(crate) fn canonical_codes(lens: &[u32]) -> Vec<u32> {
    let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
    for &l in lens {
        count[l as usize] += 1;
    }
    // Absent symbols (length 0) take no code space.
    count[0] = 0;
    let mut next = [0u32; (MAX_CODE_LEN + 1) as usize];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                c
            }
        })
        .collect()
}

fn validate_lengths(lens: &[u32]) -> Result<[u32; (MAX_CODE_LEN + 1) as usize], CompressError> {
    let mut count = [0u32; (MAX_CODE_LEN + 1) as usize];
    for &l in lens {
        if l > MAX_CODE_LEN {
            return Err(CompressError::Corrupt("code length too large"));
        }
        count[l as usize] += 1;
    }
    count[0] = 0;
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        code = (code + count[len - 1]) << 1;
        if code + count[len] > (1u32 << len) {
            return Err(CompressError::Corrupt("over-subscribed Huffman code"));
        }
    }
    Ok(count)
}

/// A symbol decoder over a canonical code.
pub(crate) trait SymbolDecoder: Sized {
    /// Builds the decoder from code lengths.
    fn build(lens: &[u32]) -> Result<Self, CompressError>;

    /// Decodes one symbol.
    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CompressError>;
}

/// Bit-by-bit canonical decoding (the gzip-era decoder used by MGZ).
pub(crate) struct BitwiseDecoder {
    first_code: [u32; (MAX_CODE_LEN + 1) as usize],
    count: [u32; (MAX_CODE_LEN + 1) as usize],
    index: [u32; (MAX_CODE_LEN + 1) as usize],
    symbols: Vec<u16>,
}

impl SymbolDecoder for BitwiseDecoder {
    fn build(lens: &[u32]) -> Result<Self, CompressError> {
        let count = validate_lengths(lens)?;
        let mut index = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut first_code = [0u32; (MAX_CODE_LEN + 1) as usize];
        let mut code = 0u32;
        let mut idx = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            index[len] = idx;
            idx += count[len];
        }
        let mut by_len: Vec<(u32, u16)> = lens
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, s as u16))
            .collect();
        by_len.sort_unstable();
        Ok(Self {
            first_code,
            count,
            index,
            symbols: by_len.into_iter().map(|(_, s)| s).collect(),
        })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CompressError> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            code = (code << 1) | r.get_bit()?;
            let cnt = self.count[len];
            if cnt > 0 && code >= self.first_code[len] && code - self.first_code[len] < cnt {
                let i = self.index[len] + (code - self.first_code[len]);
                return Ok(self.symbols[i as usize]);
            }
        }
        Err(CompressError::Corrupt("invalid Huffman code"))
    }
}

/// Table-driven decoding (the zstd-era decoder used by MZST): one peek and
/// one lookup per symbol.
pub(crate) struct TableDecoder {
    /// `(len << 16) | symbol`, indexed by the next `MAX_CODE_LEN` bits
    /// (MSB-first code in the high bits).
    table: Vec<u32>,
}

impl SymbolDecoder for TableDecoder {
    fn build(lens: &[u32]) -> Result<Self, CompressError> {
        validate_lengths(lens)?;
        let codes = canonical_codes(lens);
        let mut table = vec![0u32; 1 << MAX_CODE_LEN];
        for (sym, (&len, &code)) in lens.iter().zip(codes.iter()).enumerate() {
            if len == 0 {
                continue;
            }
            let shift = MAX_CODE_LEN - len;
            let start = (code << shift) as usize;
            let entry = (len << 16) | sym as u32;
            for slot in &mut table[start..start + (1usize << shift)] {
                *slot = entry;
            }
        }
        Ok(Self { table })
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, CompressError> {
        // The bit stream is LSB-first per byte but codes are written
        // MSB-first, so reverse the peeked window to rebuild the code.
        let peeked = r.peek(MAX_CODE_LEN);
        let key = (peeked as u16).reverse_bits() >> (16 - MAX_CODE_LEN);
        let entry = self.table[key as usize];
        let len = entry >> 16;
        if len == 0 {
            return Err(CompressError::Corrupt("invalid Huffman code"));
        }
        r.consume(len)?;
        Ok(entry as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_code_buckets() {
        assert_eq!(len_code(4), 0);
        assert_eq!(len_code(7), 3);
        assert_eq!(len_code(8), 4);
        assert_eq!(len_code(9), 4);
        assert_eq!(len_code(10), 5);
        assert_eq!(len_code(1024), 18);
        for (i, &(base, _)) in LEN_TABLE.iter().enumerate() {
            assert_eq!(len_code(base as usize), i);
        }
    }

    #[test]
    fn dist_code_buckets() {
        assert_eq!(dist_code(1), 0);
        assert_eq!(dist_code(4), 3);
        assert_eq!(dist_code(5), 4);
        assert_eq!(dist_code(6), 4);
        assert_eq!(dist_code(7), 5);
        for (i, &(base, extra)) in DIST_TABLE.iter().enumerate() {
            assert_eq!(dist_code(base as usize), i);
            assert_eq!(dist_code((base + (1 << extra) - 1) as usize), i);
        }
    }

    #[test]
    fn dist_table_covers_megabyte_window() {
        let (base, extra) = DIST_TABLE[NUM_DIST - 1];
        assert!(base as usize + ((1usize << extra) - 1) >= 1 << 20);
    }

    #[test]
    fn huffman_single_symbol() {
        let mut freqs = vec![0u64; 10];
        freqs[3] = 100;
        let lens = huffman_lengths(&freqs);
        assert_eq!(lens[3], 1);
        assert!(lens.iter().enumerate().all(|(i, &l)| i == 3 || l == 0));
    }

    #[test]
    fn huffman_is_prefix_free_and_complete() {
        let freqs: Vec<u64> = (1..=64u64).collect();
        let lens = huffman_lengths(&freqs);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9, "kraft = {kraft}");
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
    }

    #[test]
    fn huffman_respects_length_limit_under_skew() {
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lens = huffman_lengths(&freqs);
        assert!(lens.iter().all(|&l| (1..=MAX_CODE_LEN).contains(&l)));
    }

    #[test]
    fn bitwriter_reader_roundtrip() {
        let mut w = BitWriter::new(Vec::new());
        w.put(0b101, 3);
        w.put(0xABCD, 16);
        w.put(1, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get(3).unwrap(), 0b101);
        assert_eq!(r.get(16).unwrap(), 0xABCD);
        assert_eq!(r.get(1).unwrap(), 1);
    }

    fn roundtrip_with<D: SymbolDecoder>() {
        let freqs: Vec<u64> = vec![5, 9, 12, 13, 16, 45, 0, 3];
        let lens = huffman_lengths(&freqs);
        let codes = canonical_codes(&lens);
        let dec = D::build(&lens).unwrap();
        let mut w = BitWriter::new(Vec::new());
        let syms = [0usize, 5, 3, 7, 1, 2, 4, 5, 5, 0];
        for &s in &syms {
            w.put_code(codes[s], lens[s]);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &s in &syms {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn bitwise_decoder_roundtrips() {
        roundtrip_with::<BitwiseDecoder>();
    }

    #[test]
    fn table_decoder_roundtrips() {
        roundtrip_with::<TableDecoder>();
    }

    #[test]
    fn decoders_agree_on_random_streams() {
        // Feed the same encoded stream through both decoders.
        let freqs: Vec<u64> = (1..=300u64).map(|i| i * i % 97 + 1).collect();
        let lens = huffman_lengths(&freqs);
        let codes = canonical_codes(&lens);
        let bitwise = BitwiseDecoder::build(&lens).unwrap();
        let table = TableDecoder::build(&lens).unwrap();
        let mut w = BitWriter::new(Vec::new());
        let syms: Vec<usize> = (0..2000).map(|i| (i * 31) % lens.len()).collect();
        for &s in &syms {
            w.put_code(codes[s], lens[s]);
        }
        let buf = w.finish();
        let mut ra = BitReader::new(&buf);
        let mut rb = BitReader::new(&buf);
        for &s in &syms {
            assert_eq!(bitwise.decode(&mut ra).unwrap() as usize, s);
            assert_eq!(table.decode(&mut rb).unwrap() as usize, s);
        }
    }

    #[test]
    fn rejects_oversubscribed_code() {
        assert!(BitwiseDecoder::build(&[1, 1, 1]).is_err());
        assert!(TableDecoder::build(&[1, 1, 1]).is_err());
    }
}
