//! MGZ: the gzip-like codec — a 32 KiB window, modest match search, and a
//! bit-by-bit Huffman decoder.

use crate::block;
use crate::entropy::BitwiseDecoder;
use crate::error::CompressError;
use crate::lzss::MatchParams;
use crate::Codec;

fn match_params(level: u32) -> MatchParams {
    MatchParams {
        window: 1 << 15,
        min_match: 4,
        max_match: 258, // DEFLATE's limit — one reason gzip loses on trace data
        max_chain: (1usize << level).min(256),
        lazy: level >= 4,
        nice_match: 16 + 16 * level as usize,
    }
}

pub(crate) fn compress(data: &[u8], level: u32) -> Vec<u8> {
    block::compress(data, Codec::Mgz.magic(), &match_params(level))
}

pub(crate) fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    block::decompress::<BitwiseDecoder>(data, Codec::Mgz.magic())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let data = "BT9_SPA_TRACE_FORMAT\n".repeat(500).into_bytes();
        let packed = compress(&data, 6);
        assert!(packed.len() < data.len() / 5);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn window_is_32k() {
        assert_eq!(match_params(6).window, 32768);
    }
}
