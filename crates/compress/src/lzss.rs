//! Hash-chain LZSS match finder shared by both codecs.

/// One parsed LZ step: a run of literals followed by an optional match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Sequence {
    /// Start offset of the literal run in the input.
    pub lit_start: usize,
    /// Length of the literal run.
    pub lit_len: usize,
    /// Match length; 0 only for the terminal sequence.
    pub match_len: usize,
    /// Match distance (1 = previous byte). Unused when `match_len == 0`.
    pub match_dist: usize,
}

/// Search effort and format limits for the match finder.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MatchParams {
    /// Matches may reach at most this far back.
    pub window: usize,
    /// Minimum useful match length.
    pub min_match: usize,
    /// Maximum encodable match length.
    pub max_match: usize,
    /// Hash-chain candidates examined per position.
    pub max_chain: usize,
    /// Whether to try one-position-lazy matching.
    pub lazy: bool,
    /// Stop searching once a match at least this long is found (zlib's
    /// `nice_match` heuristic; keeps high levels tractable).
    pub nice_match: usize,
}

const HASH_BITS: u32 = 16;
const NO_POS: u32 = u32::MAX;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy/lazy LZ parse of `data` into sequences.
///
/// The returned sequences tile the input exactly: concatenating each literal
/// run and match expansion reproduces `data`. The final sequence always has
/// `match_len == 0` and carries any trailing literals.
pub(crate) fn parse(data: &[u8], params: &MatchParams) -> Vec<Sequence> {
    let mut seqs = Vec::new();
    let n = data.len();
    if n == 0 {
        seqs.push(Sequence {
            lit_start: 0,
            lit_len: 0,
            match_len: 0,
            match_dist: 0,
        });
        return seqs;
    }

    let mut head = vec![NO_POS; 1 << HASH_BITS];
    let mut prev = vec![NO_POS; n];
    let mut lit_start = 0usize;
    let mut pos = 0usize;
    // Next position to be indexed in the hash chains. Every position below
    // `ins_pos` is indexed; `find_best(p)` therefore only sees candidates
    // strictly before `p`, so distances are always >= 1.
    let mut ins_pos = 0usize;

    macro_rules! insert_upto {
        ($target:expr) => {
            while ins_pos < $target {
                if ins_pos + 4 <= n {
                    let h = hash4(data, ins_pos);
                    prev[ins_pos] = head[h];
                    head[h] = ins_pos as u32;
                }
                ins_pos += 1;
            }
        };
    }

    let find_best = |head: &[u32], prev: &[u32], p: usize| -> (usize, usize) {
        if p + params.min_match > n || p + 4 > n {
            return (0, 0);
        }
        let h = hash4(data, p);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let max_len = params.max_match.min(n - p);
        let mut chain = params.max_chain;
        while cand != NO_POS && chain > 0 {
            let c = cand as usize;
            if p - c > params.window {
                break;
            }
            // Quick reject: compare the byte just past the current best.
            if best_len == 0 || data[c + best_len] == data[p + best_len] {
                let mut len = 0usize;
                while len < max_len && data[c + len] == data[p + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = p - c;
                    if len == max_len || len >= params.nice_match {
                        break;
                    }
                }
            }
            cand = prev[c];
            chain -= 1;
        }
        if best_len >= params.min_match {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    };

    while pos < n {
        insert_upto!(pos);
        let (mut len, mut dist) = find_best(&head, &prev, pos);
        if len == 0 {
            pos += 1;
            continue;
        }
        if params.lazy && pos + 1 < n {
            // Peek one position ahead; if it yields a strictly longer match,
            // emit the current byte as a literal instead.
            insert_upto!(pos + 1);
            let (len2, dist2) = find_best(&head, &prev, pos + 1);
            if len2 > len {
                pos += 1;
                len = len2;
                dist = dist2;
            }
        }
        seqs.push(Sequence {
            lit_start,
            lit_len: pos - lit_start,
            match_len: len,
            match_dist: dist,
        });
        insert_upto!((pos + len).min(n));
        pos += len;
        lit_start = pos;
    }

    // Terminal literals.
    seqs.push(Sequence {
        lit_start,
        lit_len: n - lit_start,
        match_len: 0,
        match_dist: 0,
    });
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_utils::Xorshift64;

    fn params(max_chain: usize, lazy: bool) -> MatchParams {
        MatchParams {
            window: 1 << 15,
            min_match: 4,
            max_match: 1024,
            max_chain,
            lazy,
            nice_match: 258,
        }
    }

    /// Reconstructs the input from a parse; the fundamental invariant.
    fn reconstruct(data: &[u8], seqs: &[Sequence]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len());
        for s in seqs {
            out.extend_from_slice(&data[s.lit_start..s.lit_start + s.lit_len]);
            for _ in 0..s.match_len {
                let b = out[out.len() - s.match_dist];
                out.push(b);
            }
        }
        out
    }

    #[test]
    fn parses_empty() {
        let seqs = parse(&[], &params(16, false));
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].match_len, 0);
    }

    #[test]
    fn finds_simple_repeat() {
        let data = b"abcdabcdabcdabcd";
        let seqs = parse(data, &params(16, false));
        assert_eq!(reconstruct(data, &seqs), data);
        // Should find at least one real match.
        assert!(seqs.iter().any(|s| s.match_len >= 4), "{seqs:?}");
    }

    #[test]
    fn handles_overlapping_match() {
        // "aaaaaaaa": match with dist 1, the classic RLE-via-LZ case.
        let data = vec![b'a'; 100];
        let seqs = parse(&data, &params(16, true));
        assert_eq!(reconstruct(&data, &seqs), data);
        assert!(seqs.iter().any(|s| s.match_len > 0 && s.match_dist == 1));
    }

    #[test]
    fn respects_window() {
        let mut p = params(64, false);
        p.window = 8;
        let mut data = b"ABCDEFGH".to_vec();
        data.extend(std::iter::repeat_n(b'x', 32));
        data.extend_from_slice(b"ABCDEFGH");
        let seqs = parse(&data, &p);
        assert_eq!(reconstruct(&data, &seqs), data);
        for s in &seqs {
            assert!(s.match_dist <= 8 || s.match_len == 0);
        }
    }

    // Deterministic property sweeps (offline stand-in for proptest).

    #[test]
    fn parse_reconstructs_input() {
        let alphabet = [b'a', b'b', b'c', 0u8, 255u8];
        let mut rng = Xorshift64::new(0x1255_0001);
        for _ in 0..64 {
            let n = rng.below(2000) as usize;
            let data: Vec<u8> = (0..n).map(|_| alphabet[rng.below(5) as usize]).collect();
            let chain = rng.range_inclusive(1, 63) as usize;
            let lazy = rng.next_bool();
            let seqs = parse(&data, &params(chain, lazy));
            assert_eq!(reconstruct(&data, &seqs), data);
        }
    }

    #[test]
    fn parse_reconstructs_random() {
        let mut rng = Xorshift64::new(0x1255_0002);
        for _ in 0..64 {
            let n = rng.below(2000) as usize;
            let data: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let seqs = parse(&data, &params(32, true));
            assert_eq!(reconstruct(&data, &seqs), data);
        }
    }
}
