//! `std::io` adapters so trace readers/writers can be layered over
//! compressed files transparently.

use std::io::{self, Read, Write};

use crate::{compress, decompress, detect, Codec, CompressError};

/// A reader that transparently decompresses its source.
///
/// Mirrors MBPlib's behaviour of accepting traces "compressed with xz, gzip,
/// lz4 or zstd": the source is sniffed for a known magic; raw data passes
/// through unchanged. The whole source is decoded eagerly — trace files in
/// this workspace are small enough that streaming decode would only
/// complicate the hot loop.
///
/// # Examples
///
/// ```
/// use std::io::Read;
/// use mbp_compress::{compress, Codec, DecompressReader};
///
/// let packed = compress(b"branch trace bytes", Codec::Mzst, 3)?;
/// let mut r = DecompressReader::new(std::io::Cursor::new(packed))?;
/// let mut text = String::new();
/// r.read_to_string(&mut text)?;
/// assert_eq!(text, "branch trace bytes");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DecompressReader {
    buf: Vec<u8>,
    pos: usize,
    codec: Option<Codec>,
}

impl DecompressReader {
    /// Reads all of `source`, decompressing it if it starts with a known
    /// codec magic.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `source` and corruption errors from the
    /// codec (as `InvalidData`).
    pub fn new<R: Read>(mut source: R) -> io::Result<Self> {
        let mut raw = Vec::new();
        source.read_to_end(&mut raw)?;
        Self::from_bytes(raw)
    }

    /// Like [`DecompressReader::new`], over an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the buffer has a known magic but is corrupt.
    pub fn from_bytes(raw: Vec<u8>) -> io::Result<Self> {
        let codec = detect(&raw);
        let buf = match codec {
            Some(_) => decompress(&raw).map_err(io::Error::from)?,
            None => raw,
        };
        Ok(Self { buf, pos: 0, codec })
    }

    /// The codec that was detected, or `None` for raw input.
    pub fn codec(&self) -> Option<Codec> {
        self.codec
    }

    /// Total decompressed length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the decompressed content is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrows the full decompressed contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the reader, returning the decompressed contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

impl Read for DecompressReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that buffers everything and compresses on [`finish`].
///
/// [`finish`]: CompressWriter::finish
///
/// # Examples
///
/// ```
/// use std::io::Write;
/// use mbp_compress::{decompress, Codec, CompressWriter};
///
/// let mut w = CompressWriter::new(Vec::new(), Codec::Mgz, 6)?;
/// w.write_all(b"0123456789 0123456789")?;
/// let packed = w.finish()?;
/// assert_eq!(decompress(&packed).unwrap(), b"0123456789 0123456789");
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct CompressWriter<W: Write> {
    sink: W,
    buf: Vec<u8>,
    codec: Codec,
    level: u32,
}

impl<W: Write> CompressWriter<W> {
    /// Creates a compressing writer over `sink`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` if the level is not valid for the codec.
    pub fn new(sink: W, codec: Codec, level: u32) -> io::Result<Self> {
        if level == 0 || level > codec.max_level() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                CompressError::BadLevel { codec, level },
            ));
        }
        Ok(Self {
            sink,
            buf: Vec::new(),
            codec,
            level,
        })
    }

    /// Compresses the buffered data, writes it to the sink and returns the
    /// sink. Dropping the writer without calling `finish` discards the data.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<W> {
        let packed = compress(&self.buf, self.codec, self.level).map_err(io::Error::from)?;
        self.sink.write_all(&packed)?;
        self.sink.flush()?;
        Ok(self.sink)
    }

    /// Bytes buffered so far (uncompressed).
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }
}

impl<W: Write> Write for CompressWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_passthrough() {
        let mut r = DecompressReader::new(&b"plain text"[..]).unwrap();
        assert_eq!(r.codec(), None);
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "plain text");
    }

    #[test]
    fn writer_reader_roundtrip() {
        for codec in [Codec::Mgz, Codec::Mzst] {
            let mut w = CompressWriter::new(Vec::new(), codec, 3).unwrap();
            let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
            w.write_all(&payload).unwrap();
            let packed = w.finish().unwrap();
            let mut r = DecompressReader::new(&packed[..]).unwrap();
            assert_eq!(r.codec(), Some(codec));
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn partial_reads() {
        let packed = compress(b"hello world, hello world", Codec::Mzst, 1).unwrap();
        let mut r = DecompressReader::new(&packed[..]).unwrap();
        let mut chunk = [0u8; 5];
        r.read_exact(&mut chunk).unwrap();
        assert_eq!(&chunk, b"hello");
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b" world, hello world");
    }

    #[test]
    fn corrupt_input_is_io_error() {
        let mut packed = compress(b"hello hello hello hello", Codec::Mgz, 2).unwrap();
        packed.truncate(10);
        let err = DecompressReader::new(&packed[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn writer_rejects_bad_level() {
        assert!(CompressWriter::new(Vec::new(), Codec::Mgz, 0).is_err());
        assert!(CompressWriter::new(Vec::new(), Codec::Mzst, 23).is_err());
    }
}
