//! Trace compression codecs for MBPlib.
//!
//! The paper distributes SBBT traces compressed with zstandard and lets the
//! simulator decompress them on the fly; the original CBP5 traces shipped
//! gzip-compressed (§IV, §VII-D). Neither binding is available offline, so
//! this crate implements two codecs from scratch that preserve the
//! *structural* difference the paper's evaluation depends on:
//!
//! * [`Codec::Mgz`] — LZSS matches entropy-coded with canonical Huffman
//!   codes over a 32 KiB window, decoded **bit by bit**. Like gzip/DEFLATE:
//!   decent ratio, slow decoder.
//! * [`Codec::Mzst`] — the same coding family over a 1 MiB window with
//!   deeper, level-scaled match search, decoded with a **flat lookup
//!   table** (one peek per symbol). Like zstd: better ratio (the window),
//!   much faster decoding (the table), and — crucially for Table IV — a
//!   decode speed that does not depend on the compression level used.
//!
//! Both codecs share the same hash-chain match finder (`lzss` internally)
//! and a common framing: a 4-byte magic, the uncompressed size, and a
//! sequence of self-describing blocks. [`decompress`] auto-detects the codec
//! from the magic, mirroring MBPlib's ability to read traces compressed with
//! any of its supported algorithms.
//!
//! # Examples
//!
//! ```
//! use mbp_compress::{compress, decompress, Codec};
//!
//! let data = b"abcabcabcabcABCabcabcabc".to_vec();
//! let packed = compress(&data, Codec::Mzst, 19)?;
//! assert_eq!(decompress(&packed)?, data);
//! # Ok::<(), mbp_compress::CompressError>(())
//! ```

mod block;
mod entropy;
mod error;
mod lzss;
mod mgz;
mod mzst;
mod stream;

pub use error::CompressError;
pub use stream::{CompressWriter, DecompressReader};

/// The compression algorithms understood by the trace tooling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Codec {
    /// LZSS + canonical Huffman (gzip-like). Levels 1..=9.
    Mgz,
    /// Byte-aligned LZ (zstd-like). Levels 1..=22.
    Mzst,
}

impl Codec {
    /// The 4-byte magic that opens a compressed stream of this codec.
    pub fn magic(self) -> [u8; 4] {
        match self {
            Codec::Mgz => *b"MGZ1",
            Codec::Mzst => *b"MZS1",
        }
    }

    /// The highest supported compression level.
    pub fn max_level(self) -> u32 {
        match self {
            Codec::Mgz => 9,
            Codec::Mzst => 22,
        }
    }

    /// File-name extension conventionally used for this codec.
    pub fn extension(self) -> &'static str {
        match self {
            Codec::Mgz => "mgz",
            Codec::Mzst => "mzst",
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Codec::Mgz => "mgz",
            Codec::Mzst => "mzst",
        })
    }
}

/// Identifies the codec of a compressed buffer from its magic bytes.
///
/// Returns `None` for raw (uncompressed) data.
pub fn detect(data: &[u8]) -> Option<Codec> {
    if data.starts_with(&Codec::Mgz.magic()) {
        Some(Codec::Mgz)
    } else if data.starts_with(&Codec::Mzst.magic()) {
        Some(Codec::Mzst)
    } else {
        None
    }
}

/// Compresses `data` with the given codec and level.
///
/// # Errors
///
/// Returns [`CompressError::BadLevel`] if `level` is zero or above the
/// codec's [`max_level`](Codec::max_level).
pub fn compress(data: &[u8], codec: Codec, level: u32) -> Result<Vec<u8>, CompressError> {
    if level == 0 || level > codec.max_level() {
        return Err(CompressError::BadLevel { codec, level });
    }
    Ok(match codec {
        Codec::Mgz => mgz::compress(data, level),
        Codec::Mzst => mzst::compress(data, level),
    })
}

/// Decompresses a buffer produced by [`compress`], auto-detecting the codec.
///
/// # Errors
///
/// Returns [`CompressError::BadMagic`] if the buffer does not start with a
/// known magic, or a corruption error if the stream is malformed.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    match detect(data) {
        Some(Codec::Mgz) => mgz::decompress(data),
        Some(Codec::Mzst) => mzst::decompress(data),
        None => Err(CompressError::BadMagic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_utils::Xorshift64;

    fn trace_like_data(n: usize) -> Vec<u8> {
        // Synthetic SBBT-like content: repeating 16-byte records drawn from a
        // small working set of "branches", exercising realistic match
        // structure instead of pure noise.
        let mut rng = Xorshift64::new(42);
        let branches: Vec<[u8; 16]> = (0..64)
            .map(|_| {
                let mut r = [0u8; 16];
                for chunk in r.chunks_mut(8) {
                    chunk.copy_from_slice(&rng.next_u64().to_le_bytes()[..chunk.len()]);
                }
                r
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let b = &branches[rng.below(branches.len() as u64) as usize];
            out.extend_from_slice(b);
        }
        out.truncate(n);
        out
    }

    #[test]
    fn roundtrip_both_codecs() {
        let data = trace_like_data(100_000);
        for (codec, level) in [(Codec::Mgz, 6), (Codec::Mzst, 19)] {
            let packed = compress(&data, codec, level).unwrap();
            assert!(packed.len() < data.len() / 2, "{codec} ratio too poor");
            assert_eq!(decompress(&packed).unwrap(), data, "{codec} roundtrip");
        }
    }

    #[test]
    fn empty_input() {
        for codec in [Codec::Mgz, Codec::Mzst] {
            let packed = compress(&[], codec, 1).unwrap();
            assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn incompressible_input_survives() {
        let mut rng = Xorshift64::new(7);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        for codec in [Codec::Mgz, Codec::Mzst] {
            let packed = compress(&data, codec, 3).unwrap();
            assert_eq!(decompress(&packed).unwrap(), data);
            // Expansion must be bounded (raw-block fallback).
            assert!(packed.len() < data.len() + data.len() / 8 + 64);
        }
    }

    #[test]
    fn rejects_bad_level() {
        assert!(matches!(
            compress(b"x", Codec::Mgz, 0),
            Err(CompressError::BadLevel { .. })
        ));
        assert!(compress(b"x", Codec::Mgz, 10).is_err());
        assert!(compress(b"x", Codec::Mzst, 23).is_err());
        assert!(compress(b"x", Codec::Mzst, 22).is_ok());
    }

    #[test]
    fn rejects_unknown_magic() {
        assert!(matches!(
            decompress(b"NOPE1234"),
            Err(CompressError::BadMagic)
        ));
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn detect_identifies_codecs() {
        let a = compress(b"hello", Codec::Mgz, 1).unwrap();
        let b = compress(b"hello", Codec::Mzst, 1).unwrap();
        assert_eq!(detect(&a), Some(Codec::Mgz));
        assert_eq!(detect(&b), Some(Codec::Mzst));
        assert_eq!(detect(b"hello"), None);
    }

    #[test]
    fn truncated_streams_error_not_panic() {
        let data = trace_like_data(10_000);
        for codec in [Codec::Mgz, Codec::Mzst] {
            let packed = compress(&data, codec, 5).unwrap();
            for cut in [4, 8, 12, packed.len() / 2, packed.len() - 1] {
                assert!(
                    decompress(&packed[..cut]).is_err(),
                    "{codec} truncated at {cut} should error"
                );
            }
        }
    }

    #[test]
    fn higher_level_not_worse_ratio() {
        let data = trace_like_data(200_000);
        for codec in [Codec::Mgz, Codec::Mzst] {
            let low = compress(&data, codec, 1).unwrap().len();
            let high = compress(&data, codec, codec.max_level()).unwrap().len();
            assert!(
                high <= low + low / 50,
                "{codec}: level {} gave {high}B vs level 1 {low}B",
                codec.max_level()
            );
        }
    }

    #[test]
    fn checksum_catches_content_corruption() {
        // Real gzip/zstd carry CRC32/XXH64 trailers for exactly this: a bit
        // flip that still decodes structurally must not yield wrong data.
        let data = trace_like_data(20_000);
        for codec in [Codec::Mgz, Codec::Mzst] {
            let packed = compress(&data, codec, 5).unwrap();
            let mut flips = 0;
            let mut caught = 0;
            for pos in (12..packed.len()).step_by(97) {
                let mut bad = packed.clone();
                bad[pos] ^= 0x10;
                flips += 1;
                match decompress(&bad) {
                    Err(_) => caught += 1,
                    Ok(out) => {
                        assert_eq!(out, data, "{codec}: silent wrong output at byte {pos}");
                        caught += 1; // flip landed in dead padding bits
                    }
                }
            }
            assert_eq!(flips, caught, "{codec}");
        }
    }

    #[test]
    fn checksum_trailer_is_present_and_checked() {
        let data = b"checksum me, please, twelve times over".repeat(12);
        let mut packed = compress(&data, Codec::Mzst, 9).unwrap();
        let last = packed.len() - 1;
        packed[last] ^= 0xFF;
        assert!(matches!(
            decompress(&packed),
            Err(CompressError::Corrupt("content checksum mismatch"))
        ));
    }

    // Deterministic property sweeps (offline stand-in for proptest).

    #[test]
    fn roundtrip_arbitrary_bytes() {
        let mut rng = Xorshift64::new(0xa5b1_0001);
        for case in 0..64u32 {
            let n = rng.below(4096) as usize;
            let data: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let mzst_level = 1 + case % 22;
            let packed = compress(&data, Codec::Mzst, mzst_level).unwrap();
            assert_eq!(decompress(&packed).unwrap(), data);
            let packed = compress(&data, Codec::Mgz, 1 + mzst_level % 9).unwrap();
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_repetitive() {
        let mut rng = Xorshift64::new(0xa5b1_0002);
        let alphabet = [b'a', b'b', b'c', b'd'];
        for _ in 0..24 {
            let n = rng.below(20_000) as usize;
            let data: Vec<u8> = (0..n).map(|_| alphabet[rng.below(4) as usize]).collect();
            for codec in [Codec::Mgz, Codec::Mzst] {
                let packed = compress(&data, codec, 4).unwrap();
                assert_eq!(&decompress(&packed).unwrap(), &data);
            }
        }
    }
}
