//! The [`json!`] macro for constructing [`Value`](crate::Value)s inline.

/// Builds a [`Value`](crate::Value) from JSON-like syntax.
///
/// Object values and array elements may be arbitrary expressions implementing
/// `Into<Value>`. Trailing commas are accepted. The implementation follows
/// the classic token-munching structure popularized by `serde_json`.
///
/// # Examples
///
/// ```
/// use mbp_json::json;
///
/// let h = 25;
/// let v = json!({
///     "name": "MBPlib GShare",
///     "history_length": h,
///     "tables": [1 << 4, 2, 3],
///     "nested": { "ok": true, "missing": null },
/// });
/// assert_eq!(v["history_length"].as_i64(), Some(25));
/// ```
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Array munching: accumulate parsed elements in `[$($elems:expr,)*]`.
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Object munching: `@object $map (key tokens) (remaining) (copy)`.
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // Entry points.
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn macro_in_function_scope() {
        let v = json!({});
        assert_eq!(v, Value::object());
    }

    #[test]
    fn macro_with_expressions() {
        let n = 3;
        let v = json!({ "sum": n + 1, "list": [n, n * 2] });
        assert_eq!(v["sum"], Value::from(4));
        assert_eq!(v["list"][1], Value::from(6));
    }

    #[test]
    fn macro_trailing_commas() {
        let v = json!({ "a": 1, "b": [1, 2,], });
        assert_eq!(v["b"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn macro_null_and_bools() {
        let v = json!([null, true, false]);
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Bool(true));
        assert_eq!(v[2], Value::Bool(false));
    }

    #[test]
    fn macro_computed_keys() {
        let key = format!("table_{}", 3);
        let v = json!({ (key.as_str()): 7 });
        assert_eq!(v["table_3"], Value::from(7));
    }

    #[test]
    fn macro_nested_structures() {
        let v = json!({
            "metadata": { "predictor": { "name": "x", "sizes": [1, 2] } },
            "empty_obj": {},
            "empty_arr": [],
        });
        assert_eq!(v["metadata"]["predictor"]["sizes"][0], Value::from(1));
        assert_eq!(v["empty_obj"], Value::object());
        assert_eq!(v["empty_arr"], Value::array());
    }
}
