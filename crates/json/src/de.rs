//! A strict, recursive-descent JSON parser.

use crate::error::ParseJsonError;
use crate::value::{Map, Number, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(input: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseJsonError {
        ParseJsonError::new(msg, self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseJsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(msg))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseJsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &'static str, v: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{', "expected '{'")?;
        self.depth += 1;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn parse_array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn parse_string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        s.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the sequence verbatim. The input
                    // was a &str, so it is guaranteed valid.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 sequence"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| ParseJsonError::new("number out of range", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_scalars() {
        assert_eq!("null".parse::<Value>().unwrap(), Value::Null);
        assert_eq!("true".parse::<Value>().unwrap(), Value::Bool(true));
        assert_eq!("-42".parse::<Value>().unwrap(), Value::from(-42));
        assert_eq!(
            "18446744073709551615".parse::<Value>().unwrap(),
            Value::from(u64::MAX)
        );
        assert_eq!("1.5e3".parse::<Value>().unwrap(), Value::from(1500.0));
        assert_eq!("\"hi\"".parse::<Value>().unwrap(), Value::from("hi"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = r#""a\n\té😀""#.parse().unwrap();
        assert_eq!(v.as_str(), Some("a\n\té😀"));
        let v: Value = "\"caña\"".parse().unwrap();
        assert_eq!(v.as_str(), Some("caña"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"",
            "[1]x",
            "{\"a\" 1}",
            "nan",
        ] {
            assert!(bad.parse::<Value>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(r#""\ud800""#.parse::<Value>().is_err());
        assert!(r#""\ud800A""#.parse::<Value>().is_err());
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(deep.parse::<Value>().is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v: Value = r#"{"a":1,"a":2}"#.parse().unwrap();
        assert_eq!(v["a"], Value::from(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn whitespace_everywhere() {
        let v: Value = " { \"a\" : [ 1 , 2 ] } ".parse().unwrap();
        assert_eq!(v, json!({"a": [1, 2]}));
    }

    // Deterministic random-document roundtrips (offline stand-in for
    // proptest). The generator below is a tiny self-contained xorshift64*
    // stream so mbp-json keeps zero dependencies, dev or otherwise.
    struct TestRng(u64);

    impl TestRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    fn arb_value(rng: &mut TestRng, depth: u32) -> Value {
        let containers_allowed = depth < 4;
        match rng.below(if containers_allowed { 9 } else { 7 }) {
            0 => Value::Null,
            1 => Value::from(rng.next_u64() & 1 == 0),
            2 => Value::from(rng.next_u64() as i64),
            3 => Value::from(rng.next_u64()),
            4 => Value::from((rng.next_u64() % 2_000_000_000_000) as f64 - 1e12),
            5 => {
                // Printable ASCII, including spaces, quotes and backslashes.
                let n = rng.below(13);
                Value::from(
                    (0..n)
                        .map(|_| (b' ' + rng.below(95) as u8) as char)
                        .collect::<String>(),
                )
            }
            6 => {
                // Arbitrary unicode scalar values, escapes and surrogates
                // pairs included.
                let n = rng.below(9);
                Value::from(
                    (0..n)
                        .filter_map(|_| char::from_u32(rng.below(0x11_0000) as u32))
                        .collect::<String>(),
                )
            }
            7 => Value::from(
                (0..rng.below(6))
                    .map(|_| arb_value(rng, depth + 1))
                    .collect::<Vec<_>>(),
            ),
            _ => Value::Object(
                (0..rng.below(6))
                    .map(|i| {
                        let len = 1 + rng.below(6);
                        let key: String = (0..len)
                            .map(|_| (b'a' + rng.below(26) as u8) as char)
                            .chain(std::iter::once((b'0' + i as u8) as char))
                            .collect();
                        (key, arb_value(rng, depth + 1))
                    })
                    .collect(),
            ),
        }
    }

    #[test]
    fn compact_roundtrip() {
        let mut rng = TestRng(0x4a50_0001);
        for _ in 0..256 {
            let v = arb_value(&mut rng, 0);
            let text = v.to_compact_string();
            let back: Value = text.parse().unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_roundtrip() {
        let mut rng = TestRng(0x4a50_0002);
        for _ in 0..256 {
            let v = arb_value(&mut rng, 0);
            let text = v.to_pretty_string();
            let back: Value = text.parse().unwrap();
            assert_eq!(back, v);
        }
    }
}
