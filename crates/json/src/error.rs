//! Error type for JSON parsing.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a JSON document fails.
///
/// Carries a static description and the byte offset at which the parser gave
/// up, to make malformed simulator output easy to locate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJsonError {
    msg: &'static str,
    offset: usize,
}

impl ParseJsonError {
    pub(crate) fn new(msg: &'static str, offset: usize) -> Self {
        Self { msg, offset }
    }

    /// Byte offset in the input where the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl Error for ParseJsonError {}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn error_reports_offset() {
        let err = "[1, ?]".parse::<Value>().unwrap_err();
        assert_eq!(err.offset(), 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
