//! Minimal JSON support for MBPlib simulator output.
//!
//! The MBPlib paper (§IV-E) specifies that simulators return a JSON object so
//! that user data — both static configuration recorded in `metadata` and
//! dynamic statistics recorded in `predictor_statistics` — can be embedded in
//! the output and parsed by downstream tooling. This crate provides the small
//! JSON kernel the rest of the workspace builds on: a [`Value`] type, a
//! compact and a pretty serializer, and a strict parser.
//!
//! # Examples
//!
//! ```
//! use mbp_json::{json, Value};
//!
//! let v = json!({
//!     "name": "MBPlib GShare",
//!     "history_length": 25,
//!     "tables": [1, 2, 3],
//! });
//! assert_eq!(v["history_length"], Value::from(25));
//! let text = v.to_string();
//! let back: Value = text.parse()?;
//! assert_eq!(back, v);
//! # Ok::<(), mbp_json::ParseJsonError>(())
//! ```

mod de;
mod error;
mod macros;
mod ser;
mod value;

pub use error::ParseJsonError;
pub use value::{Map, Number, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "metadata": {
                "simulator": "MBPlib std simulator",
                "warmup_instr": 0,
                "exhausted_trace": true,
            },
            "metrics": { "mpki": 3.312043080187229, "mispredictions": 4252480 },
            "most_failed": [ { "ip": 1995000000, "accuracy": 0.91 } ],
        });
        let text = v.to_pretty_string();
        let back: Value = text.parse().unwrap();
        assert_eq!(back, v);
    }
}
