//! The [`Value`] type: a parsed or constructed JSON document.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::error::ParseJsonError;

/// An ordered JSON object.
///
/// Keys are kept in insertion order so that the simulator output sections
/// appear in the same order as in the paper's Listing 1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    keys: Vec<String>,
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Inserts a key/value pair, returning the previous value for `key` if
    /// one existed. Insertion order is preserved; re-inserting an existing
    /// key keeps its original position.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let old = self.entries.insert(key.clone(), value.into());
        if old.is_none() {
            self.keys.push(key);
        }
        old
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Looks up a value by key, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let v = self.entries.remove(key);
        if v.is_some() {
            self.keys.retain(|k| k != key);
        }
        v
    }

    /// Whether the object contains `key`.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.keys
            .iter()
            .map(move |k| (k.as_str(), &self.entries[k]))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Map {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: Into<String>, V: Into<Value>> Extend<(K, V)> for Map {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// A JSON number: either an integer (preserved exactly up to 64 bits) or a
/// binary64 float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer that does not fit in `i64`.
    UInt(u64),
    /// A floating-point number. NaN and infinities are not representable in
    /// JSON and are serialized as `null` by the writer.
    Float(f64),
}

impl Number {
    /// Returns the value as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// A JSON document node.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Creates an empty object value.
    pub fn object() -> Value {
        Value::Object(Map::new())
    }

    /// Creates an empty array value.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Returns the value as `i64` if this is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Returns the value as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array slice if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the object mutably if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object; returns `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serializes to a compact, single-line JSON string.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        crate::ser::write_compact(self, &mut out);
        out
    }

    /// Serializes to an indented, human-friendly JSON string.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        crate::ser::write_pretty(self, 0, &mut out);
        out
    }
}

/// Indexing an object by key. Panics if the key is missing or the value is
/// not an object (mirrors `serde_json`'s ergonomics for tests and examples).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in JSON value"))
    }
}

/// Indexing an array by position. Panics when out of bounds or not an array.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            other => panic!("cannot index {other:?} with {idx}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            f.write_str(&self.to_pretty_string())
        } else {
            f.write_str(&self.to_compact_string())
        }
    }
}

impl FromStr for Value {
    type Err = ParseJsonError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::de::parse(s)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::from(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("zebra", 1);
        m.insert("alpha", 2);
        m.insert("middle", 3);
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, ["zebra", "alpha", "middle"]);
    }

    #[test]
    fn map_reinsert_keeps_position() {
        let mut m = Map::new();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.insert("a", 10), Some(Value::from(1)));
        let keys: Vec<_> = m.keys().collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.get("a"), Some(&Value::from(10)));
    }

    #[test]
    fn map_remove() {
        let mut m = Map::new();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.remove("a"), Some(Value::from(1)));
        assert_eq!(m.remove("a"), None);
        assert_eq!(m.len(), 1);
        assert!(!m.contains_key("a"));
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Value::from(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Value::from(u64::MAX).as_i64(), None);
        assert_eq!(Value::from(-3).as_i64(), Some(-3));
        assert_eq!(Value::from(-3).as_u64(), None);
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(7u32).as_f64(), Some(7.0));
    }

    #[test]
    fn from_option_and_vec() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(4)), Value::from(4));
        let arr = Value::from(vec![1, 2, 3]);
        assert_eq!(arr[2], Value::from(3));
    }

    #[test]
    #[should_panic(expected = "no key")]
    fn index_missing_key_panics() {
        let v = Value::object();
        let _ = &v["missing"];
    }
}
