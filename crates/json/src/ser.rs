//! JSON serialization (compact and pretty writers).

use crate::value::{Number, Value};

const INDENT: &str = "  ";

/// Writes `v` in compact form (no whitespace) into `out`.
pub(crate) fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Writes `v` with two-space indentation at nesting `level` into `out`.
pub(crate) fn write_pretty(v: &Value, level: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(level + 1, out);
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            push_indent(level, out);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(level + 1, out);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(item, level + 1, out);
            }
            out.push('\n');
            push_indent(level, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str(INDENT);
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Number::UInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest representation that
                // roundtrips, which is exactly what we want for metrics.
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep a trailing `.0` so floats stay floats on re-parse.
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                // JSON cannot represent NaN/Inf.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{json, Value};

    #[test]
    fn compact_matches_expected() {
        let v = json!({"a": 1, "b": [true, null], "c": "x\"y"});
        assert_eq!(
            v.to_compact_string(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"a": {"b": 1}});
        let text = v.to_pretty_string();
        assert_eq!(text, "{\n  \"a\": {\n    \"b\": 1\n  }\n}");
    }

    #[test]
    fn empty_containers_are_compact() {
        let v = json!({"obj": {}, "arr": []});
        assert_eq!(v.to_pretty_string(), "{\n  \"obj\": {},\n  \"arr\": []\n}");
    }

    #[test]
    fn floats_keep_roundtrip_precision() {
        let v = Value::from(3.312043080187229_f64);
        let text = v.to_compact_string();
        let back: Value = text.parse().unwrap();
        assert_eq!(back.as_f64(), Some(3.312043080187229));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(Value::from(2.0).to_compact_string(), "2.0");
        let back: Value = "2.0".parse::<Value>().unwrap();
        assert!(matches!(back, Value::Number(crate::Number::Float(_))));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::from(f64::NAN).to_compact_string(), "null");
        assert_eq!(Value::from(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let v = Value::from("a\u{01}b");
        assert_eq!(v.to_compact_string(), "\"a\\u0001b\"");
    }
}
