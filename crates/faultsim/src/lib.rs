//! Deterministic fault injection for trace decoders.
//!
//! The trace formats MBPlib reads — SBBT, BT9, ChampSim, and their
//! compressed envelopes — arrive from the filesystem, which means they
//! arrive from *anywhere*: interrupted downloads, bad disks, buggy
//! translators, or simply the wrong file. The robustness contract of the
//! workspace is that every decoder **fails closed** on such input: it
//! returns a typed error, it never panics, and it never sizes an allocation
//! from an untrusted declared length.
//!
//! This crate is the harness that enforces the contract. It takes a
//! known-good byte stream and derives *mutants* from it:
//!
//! * [`cuts_at`] / [`cuts_at_every_offset`] — truncation at structural
//!   boundaries (mid-header, mid-packet, mid-compressed-block) or at every
//!   byte offset;
//! * [`bit_flips`] — seeded pseudo-random single-bit corruption, via the
//!   workspace's own [`Xorshift64`] so runs are reproducible offline with
//!   no dev-dependencies;
//! * [`overwrite`] — targeted corruption of a specific field (a count, a
//!   signature byte, a version byte).
//!
//! Each mutant carries an [`Expect`]ation: `Reject` when the corruption is
//! structurally guaranteed to be detectable, or `NoPanic` when a decoder
//! may legitimately still produce *a* result (a bit flip in an SBBT packet
//! body yields a different but well-formed packet). [`run_suite`] drives a
//! decoder over a whole mutant set under `catch_unwind` and returns a
//! [`SuiteReport`] listing every contract violation.
//!
//! The integration tests of this crate (`tests/fault_injection.rs`,
//! `tests/alloc_bounds.rs`) apply the harness to every reader in
//! `mbp-trace` and every codec in `mbp-compress`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mbp_utils::Xorshift64;

/// What a decoder is allowed to do with a mutant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The corruption is structurally detectable: decoding must return an
    /// error. Panicking or decoding successfully are both violations.
    Reject,
    /// The mutant may still be valid under the format's rules (e.g. a bit
    /// flip inside an address field). Decoding may succeed or error, but
    /// panicking is a violation.
    NoPanic,
}

/// One corrupted input derived from a known-good stream.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// Human-readable provenance, e.g. `"cut at 17/1944"` — reported
    /// verbatim on violation so a failure is reproducible by eye.
    pub description: String,
    /// The corrupted bytes to feed the decoder.
    pub bytes: Vec<u8>,
    /// The contract this mutant checks.
    pub expect: Expect,
}

/// What a decoder did with one mutant.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Decoded without error.
    Decoded,
    /// Returned a typed error (the `Display` rendering).
    Rejected(String),
    /// Panicked (the extracted panic message).
    Panicked(String),
}

/// Runs one decode attempt under `catch_unwind` and classifies the result.
///
/// The decoder closure maps its own error type to `String` (typically via
/// `.map_err(|e| e.to_string())`), which keeps this crate free of
/// dependencies on the crates under test.
pub fn drive<T>(bytes: &[u8], decode: impl FnOnce(&[u8]) -> Result<T, String>) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| decode(bytes))) {
        Ok(Ok(_)) => Outcome::Decoded,
        Ok(Err(message)) => Outcome::Rejected(message),
        Err(payload) => Outcome::Panicked(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The result of driving a decoder over a mutant set.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    /// Mutants driven.
    pub total: usize,
    /// Mutants the decoder rejected with a typed error.
    pub rejected: usize,
    /// Mutants the decoder accepted.
    pub decoded: usize,
    /// Contract violations: `(mutant description, what went wrong)`.
    pub violations: Vec<(String, String)>,
}

impl SuiteReport {
    /// Panics with a readable digest if any mutant violated its contract.
    /// Use from tests: `report.assert_clean("sbbt raw")`.
    pub fn assert_clean(&self, label: &str) {
        assert!(
            self.violations.is_empty(),
            "{label}: {} of {} mutants violated the fail-closed contract:\n{}",
            self.violations.len(),
            self.total,
            self.violations
                .iter()
                .map(|(who, what)| format!("  {who}: {what}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Merges another report into this one (for totalling across suites).
    pub fn absorb(&mut self, other: SuiteReport) {
        self.total += other.total;
        self.rejected += other.rejected;
        self.decoded += other.decoded;
        self.violations.extend(other.violations);
    }
}

/// Drives `decode` over every mutant and collects a [`SuiteReport`].
///
/// A panic is always a violation. A successful decode is a violation only
/// for [`Expect::Reject`] mutants.
pub fn run_suite<T>(
    mutants: &[Mutant],
    mut decode: impl FnMut(&[u8]) -> Result<T, String>,
) -> SuiteReport {
    let mut report = SuiteReport {
        total: mutants.len(),
        ..SuiteReport::default()
    };
    for mutant in mutants {
        match drive(&mutant.bytes, &mut decode) {
            Outcome::Rejected(_) => report.rejected += 1,
            Outcome::Decoded => {
                report.decoded += 1;
                if mutant.expect == Expect::Reject {
                    report
                        .violations
                        .push((mutant.description.clone(), "decoded successfully".into()));
                }
            }
            Outcome::Panicked(message) => {
                report
                    .violations
                    .push((mutant.description.clone(), format!("panicked: {message}")));
            }
        }
    }
    report
}

/// Truncation mutants at the given byte offsets (offsets at or past the end
/// are skipped — a full-length "cut" is the identity, not a fault).
pub fn cuts_at(
    base: &[u8],
    offsets: impl IntoIterator<Item = usize>,
    expect: impl Fn(usize) -> Expect,
) -> Vec<Mutant> {
    let mut seen = std::collections::BTreeSet::new();
    offsets
        .into_iter()
        .filter(|&at| at < base.len() && seen.insert(at))
        .map(|at| Mutant {
            description: format!("cut at {at}/{}", base.len()),
            bytes: base[..at].to_vec(),
            expect: expect(at),
        })
        .collect()
}

/// Truncation at *every* byte offset `0..len`. Exhaustive and cheap for
/// the compressed envelopes, whose framing makes any strict prefix
/// detectably incomplete.
pub fn cuts_at_every_offset(base: &[u8], expect: Expect) -> Vec<Mutant> {
    cuts_at(base, 0..base.len(), |_| expect)
}

/// `count` single-bit-flip mutants at seeded pseudo-random positions.
///
/// Deterministic for a given `(seed, count, len)`: reruns and CI always see
/// the same corruption set. `expect` receives the flipped byte offset, so
/// callers can demand rejection for flips in structurally-checked regions
/// (headers, checksums) while only requiring panic-freedom elsewhere.
pub fn bit_flips(
    base: &[u8],
    count: usize,
    seed: u64,
    expect: impl Fn(usize) -> Expect,
) -> Vec<Mutant> {
    assert!(!base.is_empty(), "cannot flip bits in an empty stream");
    let mut rng = Xorshift64::new(seed);
    (0..count)
        .map(|_| {
            let word = rng.next_u64();
            let offset = (word as usize >> 3) % base.len();
            let bit = (word & 7) as u8;
            let mut bytes = base.to_vec();
            bytes[offset] ^= 1 << bit;
            Mutant {
                description: format!("bit flip at {offset}.{bit}/{}", base.len()),
                bytes,
                expect: expect(offset),
            }
        })
        .collect()
}

/// A targeted-corruption mutant: `patch` overwrites the bytes at `offset`.
///
/// # Panics
///
/// If the patch does not fit inside `base` (harness misuse, not a decoder
/// fault).
pub fn overwrite(
    base: &[u8],
    offset: usize,
    patch: &[u8],
    description: impl Into<String>,
    expect: Expect,
) -> Mutant {
    let end = offset
        .checked_add(patch.len())
        .filter(|&end| end <= base.len())
        .expect("overwrite patch must fit inside the base stream");
    let mut bytes = base.to_vec();
    bytes[offset..end].copy_from_slice(patch);
    Mutant {
        description: description.into(),
        bytes,
        expect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A decoder with a known contract: errors on short input, panics on a
    /// magic byte, decodes otherwise.
    fn toy_decode(bytes: &[u8]) -> Result<usize, String> {
        if bytes.len() < 4 {
            return Err("too short".into());
        }
        if bytes[0] == 0xEE {
            panic!("toy decoder bug");
        }
        Ok(bytes.len())
    }

    #[test]
    fn drive_classifies_all_three_outcomes() {
        assert!(matches!(drive(b"ok!!", toy_decode), Outcome::Decoded));
        assert!(matches!(drive(b"x", toy_decode), Outcome::Rejected(_)));
        match drive(&[0xEE, 0, 0, 0], toy_decode) {
            Outcome::Panicked(message) => assert!(message.contains("toy decoder bug")),
            other => panic!("expected panic outcome, got {other:?}"),
        }
    }

    #[test]
    fn run_suite_reports_violations() {
        let mutants = vec![
            Mutant {
                description: "short".into(),
                bytes: b"ab".to_vec(),
                expect: Expect::Reject,
            },
            Mutant {
                description: "valid but expected to fail".into(),
                bytes: b"fine".to_vec(),
                expect: Expect::Reject,
            },
            Mutant {
                description: "panic trigger".into(),
                bytes: vec![0xEE, 0, 0, 0],
                expect: Expect::NoPanic,
            },
        ];
        let report = run_suite(&mutants, toy_decode);
        assert_eq!(report.total, 3);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.decoded, 1);
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].1.contains("decoded successfully"));
        assert!(report.violations[1].1.contains("panicked"));
    }

    #[test]
    fn cuts_skip_identity_and_duplicates() {
        let cuts = cuts_at(b"0123456789", [3, 3, 10, 11, 0], |_| Expect::Reject);
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].bytes, b"012");
        assert!(cuts[1].bytes.is_empty());
        assert_eq!(cuts_at_every_offset(b"0123", Expect::NoPanic).len(), 4);
    }

    #[test]
    fn bit_flips_are_deterministic_and_single_bit() {
        let base = [0u8; 64];
        let a = bit_flips(&base, 50, 7, |_| Expect::NoPanic);
        let b = bit_flips(&base, 50, 7, |_| Expect::NoPanic);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bytes, y.bytes, "same seed, same mutants");
            let flipped: u32 = x.bytes.iter().map(|byte| byte.count_ones()).sum();
            assert_eq!(flipped, 1, "exactly one bit differs");
        }
        let c = bit_flips(&base, 50, 8, |_| Expect::NoPanic);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.bytes != y.bytes),
            "different seeds diverge"
        );
    }

    #[test]
    fn overwrite_patches_in_place() {
        let m = overwrite(b"abcdef", 2, b"XY", "patch", Expect::Reject);
        assert_eq!(m.bytes, b"abXYef");
    }

    #[test]
    fn suite_report_digest_is_actionable() {
        let mutants = vec![Mutant {
            description: "cut at 3/10".into(),
            bytes: b"fine".to_vec(),
            expect: Expect::Reject,
        }];
        let report = run_suite(&mutants, toy_decode);
        let digest = catch_unwind(AssertUnwindSafe(|| report.assert_clean("toy")))
            .expect_err("must flag the violation");
        let digest = panic_message(digest.as_ref());
        assert!(digest.contains("cut at 3/10"), "{digest}");
        assert!(digest.contains("toy"), "{digest}");
    }
}
