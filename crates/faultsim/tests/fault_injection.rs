//! The fault-injection campaign: every trace reader in the workspace is
//! driven through hundreds of deterministically corrupted inputs and must
//! fail closed — typed error or (for semantically-ambiguous mutations) a
//! clean decode, but never a panic.
//!
//! The mutation sets are seeded and offline: the same mutants are generated
//! on every run and in CI, so a violation here is always reproducible from
//! the mutant description alone.

use mbp_faultsim::{bit_flips, cuts_at_every_offset, overwrite, run_suite, Expect, SuiteReport};
use mbp_trace::champsim::{ChampsimReader, ChampsimRecord, ChampsimWriter, OperandSynth};
use mbp_trace::sbbt::{SbbtReader, SbbtWriter, BATCH_RECORDS};
use mbp_trace::{bt9, Branch, BranchBatch, BranchKind, BranchRecord, Opcode};
use mbp_utils::Xorshift64;

const SBBT_HEADER_BYTES: usize = 24;
const SBBT_PACKET_BYTES: usize = 16;
const CHAMPSIM_RECORD_BYTES: usize = 64;

/// A deterministic, structurally varied branch stream: conditionals with
/// both outcomes, calls, returns and an indirect jump.
fn sample_records(n: usize) -> Vec<BranchRecord> {
    let mut rng = Xorshift64::new(0xB07_7E57);
    (0..n)
        .map(|i| {
            let r = rng.next_u64();
            let ip = 0x40_0000 + (r % 4096) * 4;
            let (opcode, target, taken) = match i % 5 {
                0 | 1 => (Opcode::conditional_direct(), ip + 64, r & 1 == 0),
                2 => (Opcode::call(), ip + 0x1000, true),
                3 => (Opcode::ret(), ip.wrapping_sub(0x800), true),
                _ => (
                    Opcode::new(false, true, BranchKind::Jump),
                    ip + 0x2000,
                    true,
                ),
            };
            BranchRecord::new(Branch::new(ip, target, opcode, taken), (r % 30) as u32)
        })
        .collect()
}

fn sbbt_raw(records: &[BranchRecord]) -> Vec<u8> {
    let mut w = SbbtWriter::new(Vec::new());
    for r in records {
        w.write_record(r).expect("sample records encode");
    }
    w.finish().expect("in-memory sink")
}

/// Full-depth SBBT decode: construct the reader and drain every record.
fn decode_sbbt(bytes: &[u8]) -> Result<usize, String> {
    let mut reader = SbbtReader::from_bytes(bytes.to_vec()).map_err(|e| e.to_string())?;
    reader
        .read_all()
        .map(|records| records.len())
        .map_err(|e| e.to_string())
}

/// SBBT decode through the simulator's hot path: drain the reader with
/// `fill_batch` into the struct-of-arrays columns of a reused
/// [`BranchBatch`], cross-checking the scalar packet decoder on every
/// input. The two paths must agree on accept/reject *and* on the record
/// count; divergence panics, which [`run_suite`] counts as a violation
/// under every [`Expect`].
fn decode_sbbt_soa(bytes: &[u8]) -> Result<usize, String> {
    let batched = (|| {
        let mut reader = SbbtReader::from_bytes(bytes.to_vec()).map_err(|e| e.to_string())?;
        let mut batch = BranchBatch::new();
        let mut total = 0usize;
        loop {
            let n = reader.fill_batch(&mut batch).map_err(|e| e.to_string())?;
            assert_eq!(batch.len(), n, "batch length out of step with fill_batch");
            total += n;
            if n < BATCH_RECORDS {
                return Ok(total);
            }
        }
    })();
    match (&batched, decode_sbbt(bytes)) {
        (Ok(soa), Ok(scalar)) => {
            assert_eq!(*soa, scalar, "SoA and scalar decoders disagree on count");
        }
        (Err(_), Err(_)) => {}
        (soa, scalar) => panic!("SoA/scalar divergence: soa={soa:?} scalar={scalar:?}"),
    }
    batched
}

fn decode_bt9(bytes: &[u8]) -> Result<usize, String> {
    let trace = bt9::parse(bytes).map_err(|e| e.to_string())?;
    Ok(trace.records().count())
}

fn decode_champsim(bytes: &[u8]) -> Result<usize, String> {
    let reader = ChampsimReader::from_bytes(bytes.to_vec()).map_err(|e| e.to_string())?;
    Ok(reader.to_branch_records().len())
}

#[test]
fn campaign_every_reader_fails_closed() {
    let records = sample_records(96);
    let mut grand_total = SuiteReport::default();

    // --- SBBT, raw container -------------------------------------------
    let raw = sbbt_raw(&records);
    assert!(decode_sbbt(&raw).is_ok(), "baseline must decode");

    // Any strict prefix leaves fewer packets than the header declares, so
    // every single truncation point — mid-header, at a packet boundary,
    // mid-packet — must be rejected.
    let report = run_suite(&cuts_at_every_offset(&raw, Expect::Reject), decode_sbbt);
    report.assert_clean("sbbt raw cuts");
    grand_total.absorb(report);

    // Bit flips: flips in the signature, the version major or the branch
    // count are structurally detectable; flips elsewhere may still decode
    // (a different address is still an address) but must never panic.
    let flips = bit_flips(&raw, 160, 0x5EED_0001, |offset| match offset {
        0..=5 => Expect::Reject,   // signature or major version
        16..=23 => Expect::Reject, // branch count vs actual packets
        _ => Expect::NoPanic,      // minor/patch, instr count, body
    });
    let report = run_suite(&flips, decode_sbbt);
    report.assert_clean("sbbt raw bit flips");
    grand_total.absorb(report);

    // Targeted header-field corruption.
    let n = records.len() as u64;
    let mut targeted = Vec::new();
    for i in 0..5 {
        let patch = [raw[i] ^ 0xFF];
        targeted.push(overwrite(
            &raw,
            i,
            &patch,
            format!("signature byte {i} inverted"),
            Expect::Reject,
        ));
    }
    targeted.push(overwrite(&raw, 5, &[2], "major version 2", Expect::Reject));
    for (what, value, expect) in [
        ("branch count zeroed", 0u64, Expect::Reject),
        ("branch count off by one", n + 1, Expect::Reject),
        ("branch count maxed", u64::MAX, Expect::Reject),
    ] {
        targeted.push(overwrite(&raw, 16, &value.to_le_bytes(), what, expect));
    }
    // An instruction count below the branch count is impossible (every
    // branch is an instruction); a huge one is odd but not provably wrong.
    targeted.push(overwrite(
        &raw,
        8,
        &0u64.to_le_bytes(),
        "instruction count zeroed",
        Expect::Reject,
    ));
    targeted.push(overwrite(
        &raw,
        8,
        &u64::MAX.to_le_bytes(),
        "instruction count maxed",
        Expect::NoPanic,
    ));
    let report = run_suite(&targeted, decode_sbbt);
    report.assert_clean("sbbt header corruption");
    grand_total.absorb(report);

    // --- SBBT through the SoA block decoder -----------------------------
    // The same corpus again, but drained through `fill_batch` into the
    // struct-of-arrays columns — the simulator's hot path — with the
    // scalar decoder cross-checked mutant by mutant (see decode_sbbt_soa).
    let report = run_suite(&cuts_at_every_offset(&raw, Expect::Reject), decode_sbbt_soa);
    report.assert_clean("sbbt soa cuts");
    grand_total.absorb(report);

    let flips = bit_flips(&raw, 160, 0x5EED_0005, |offset| match offset {
        0..=5 => Expect::Reject,
        16..=23 => Expect::Reject,
        _ => Expect::NoPanic,
    });
    let report = run_suite(&flips, decode_sbbt_soa);
    report.assert_clean("sbbt soa bit flips");
    grand_total.absorb(report);

    let report = run_suite(&targeted, decode_sbbt_soa);
    report.assert_clean("sbbt soa header corruption");
    grand_total.absorb(report);

    // A trace longer than one block, so `fill_batch` commits a full block
    // and then fails (or finishes) in the *second* one — the cursor-commit
    // and truncate paths that single-block inputs never reach. Full cuts
    // at every offset would be quadratic here; target the block seam and a
    // spread of interior packets instead.
    let long = sbbt_raw(&sample_records(BATCH_RECORDS + 64));
    assert!(
        decode_sbbt_soa(&long).is_ok(),
        "multi-block baseline decodes"
    );
    let seam = SBBT_HEADER_BYTES + BATCH_RECORDS * SBBT_PACKET_BYTES;
    let cuts = mbp_faultsim::cuts_at(
        &long,
        (seam.saturating_sub(2 * SBBT_PACKET_BYTES)..long.len())
            .chain((SBBT_HEADER_BYTES..seam).step_by(997)),
        |_| Expect::Reject,
    );
    let report = run_suite(&cuts, decode_sbbt_soa);
    report.assert_clean("sbbt soa multi-block cuts");
    grand_total.absorb(report);

    let flips = bit_flips(&long, 96, 0x5EED_0006, |offset| match offset {
        0..=5 => Expect::Reject,
        16..=23 => Expect::Reject,
        _ => Expect::NoPanic,
    });
    let report = run_suite(&flips, decode_sbbt_soa);
    report.assert_clean("sbbt soa multi-block bit flips");
    grand_total.absorb(report);

    // --- SBBT through both compressed envelopes ------------------------
    for codec in [mbp_compress::Codec::Mgz, mbp_compress::Codec::Mzst] {
        let packed = mbp_compress::compress(&raw, codec, 3).expect("compress");
        assert!(decode_sbbt(&packed).is_ok(), "{codec}: baseline decodes");

        // The framing (declared size + checksum trailer) makes any strict
        // prefix detectable.
        let report = run_suite(&cuts_at_every_offset(&packed, Expect::Reject), decode_sbbt);
        report.assert_clean(&format!("sbbt {codec} cuts"));
        grand_total.absorb(report);

        // Entropy blocks are bit-streams with byte-aligned padding, so a
        // flip can land in dead bits and decode identically — require only
        // panic-freedom here (the checksum cases are pinned separately in
        // mbp-compress's error-taxonomy test).
        let flips = bit_flips(&packed, 128, 0x5EED_0002, |_| Expect::NoPanic);
        let report = run_suite(&flips, decode_sbbt);
        report.assert_clean(&format!("sbbt {codec} bit flips"));
        grand_total.absorb(report);
    }

    // --- BT9, plain text and compressed --------------------------------
    let mut w = bt9::Bt9Writer::new();
    for r in &records {
        w.write_record(r);
    }
    let text = w.to_text().into_bytes();
    assert!(decode_bt9(&text).is_ok(), "baseline bt9 decodes");

    // The grammar requires a final EOF token, so any cut before the end of
    // that token must be rejected; cuts that only shave the trailing
    // newline still parse and are merely panic-checked.
    let eof_at = text
        .windows(4)
        .rposition(|w| w == b"\nEOF")
        .expect("writer emits EOF")
        + 4;
    let cuts = mbp_faultsim::cuts_at(&text, 0..text.len(), |at| {
        if at < eof_at {
            Expect::Reject
        } else {
            Expect::NoPanic
        }
    });
    let report = run_suite(&cuts, decode_bt9);
    report.assert_clean("bt9 cuts");
    grand_total.absorb(report);

    let flips = bit_flips(&text, 128, 0x5EED_0003, |_| Expect::NoPanic);
    let report = run_suite(&flips, decode_bt9);
    report.assert_clean("bt9 bit flips");
    grand_total.absorb(report);

    let packed = mbp_compress::compress(&text, mbp_compress::Codec::Mgz, 3).expect("compress");
    assert!(decode_bt9(&packed).is_ok(), "compressed bt9 decodes");
    let report = run_suite(&cuts_at_every_offset(&packed, Expect::Reject), decode_bt9);
    report.assert_clean("bt9 mgz cuts");
    grand_total.absorb(report);

    // --- ChampSim, raw and compressed ----------------------------------
    let mut w = ChampsimWriter::new(Vec::new());
    let mut synth = OperandSynth::new(7);
    for (i, r) in records.iter().enumerate() {
        for _ in 0..(i % 3) {
            w.write_instr(&synth.filler(0x50_0000 + i as u64 * 4))
                .expect("in-memory sink");
        }
        w.write_instr(&ChampsimRecord::branch(
            r.branch.ip(),
            r.branch.opcode(),
            r.branch.is_taken(),
        ))
        .expect("in-memory sink");
    }
    let champ = w.finish().expect("in-memory sink");
    assert!(decode_champsim(&champ).is_ok(), "baseline champsim decodes");

    // The container is a bare array of 64-byte records: cuts on a record
    // boundary are just shorter traces, anything else must be rejected.
    let cuts = mbp_faultsim::cuts_at(&champ, 0..champ.len(), |at| {
        if at % CHAMPSIM_RECORD_BYTES == 0 {
            Expect::NoPanic
        } else {
            Expect::Reject
        }
    });
    let report = run_suite(&cuts, decode_champsim);
    report.assert_clean("champsim cuts");
    grand_total.absorb(report);

    let flips = bit_flips(&champ, 128, 0x5EED_0004, |_| Expect::NoPanic);
    let report = run_suite(&flips, decode_champsim);
    report.assert_clean("champsim bit flips");
    grand_total.absorb(report);

    let packed = mbp_compress::compress(&champ, mbp_compress::Codec::Mzst, 3).expect("compress");
    // The empty prefix is a degenerate but *valid* ChampSim trace (zero
    // records, no magic); every non-empty strict prefix must be rejected.
    let cuts = mbp_faultsim::cuts_at(&packed, 0..packed.len(), |at| {
        if at == 0 {
            Expect::NoPanic
        } else {
            Expect::Reject
        }
    });
    let report = run_suite(&cuts, decode_champsim);
    report.assert_clean("champsim mzst cuts");
    grand_total.absorb(report);

    // --- the campaign itself must be substantial ------------------------
    assert!(
        grand_total.total >= 500,
        "campaign shrank to {} mutants; structural coverage lost",
        grand_total.total
    );
    assert!(
        grand_total.rejected > grand_total.total / 2,
        "most mutants are structurally detectable ({}/{} rejected)",
        grand_total.rejected,
        grand_total.total
    );
}

/// Pin the structural layout assumed by the campaign: if the formats grow,
/// the boundary-targeting mutation sets above must be revisited.
#[test]
fn format_layout_assumptions_hold() {
    let records = sample_records(3);
    let raw = sbbt_raw(&records);
    assert_eq!(
        raw.len(),
        SBBT_HEADER_BYTES + 3 * SBBT_PACKET_BYTES,
        "SBBT layout changed; revisit the cut offsets"
    );
    let mut w = ChampsimWriter::new(Vec::new());
    w.write_instr(&ChampsimRecord::branch(
        0x40_0000,
        Opcode::conditional_direct(),
        true,
    ))
    .expect("in-memory sink");
    assert_eq!(w.finish().expect("sink").len(), CHAMPSIM_RECORD_BYTES);
}
