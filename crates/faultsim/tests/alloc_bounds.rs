//! Proof that corrupt declared-length fields cannot drive allocations.
//!
//! A 24-byte SBBT header or a 12-byte codec frame can *declare* terabytes;
//! the decoders must cross-check the declaration against the actual stream
//! before sizing any buffer from it. This test wraps the system allocator
//! in a peak-tracking shim and decodes a set of corrupt-header mutants,
//! asserting the peak heap growth stays proportional to the *input* size —
//! not the declared size.
//!
//! It lives in its own integration-test binary on purpose: a single
//! `#[test]` means a single thread, so the global peak counter measures
//! exactly the decode under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct PeakTracking;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        unsafe { System.dealloc(p, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = unsafe { System.realloc(p, layout, new_size) };
        if !q.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        q
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Runs `decode`, returning its peak heap growth in bytes.
fn peak_growth(decode: impl FnOnce()) -> usize {
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    decode();
    PEAK.load(Ordering::Relaxed).saturating_sub(baseline)
}

#[test]
fn corrupt_length_fields_cannot_inflate_allocations() {
    use mbp_trace::sbbt::{SbbtReader, SbbtWriter};
    use mbp_trace::{Branch, BranchRecord, Opcode};

    // A small valid trace to corrupt.
    let mut w = SbbtWriter::new(Vec::new());
    for i in 0..32u64 {
        w.write_record(&BranchRecord::new(
            Branch::new(
                0x40_0000 + i * 8,
                0x40_2000,
                Opcode::conditional_direct(),
                i % 3 != 0,
            ),
            2,
        ))
        .expect("encode");
    }
    let raw = w.finish().expect("in-memory sink");

    // Decoding the *valid* trace allocates a few multiples of the input
    // (the owned buffer plus the decoded records); measure it as a sanity
    // reference for the bound used below.
    let valid_peak = peak_growth(|| {
        let mut r = SbbtReader::from_bytes(raw.clone()).expect("valid");
        let records = r.read_all().expect("valid");
        assert_eq!(records.len(), 32);
    });

    // The bound corrupt decodes must stay under: room for a copy of the
    // input and bookkeeping, nowhere near the declared terabytes. The
    // valid decode itself must fit too, or the bound proves nothing.
    let budget = 16 * raw.len() + 4096;
    assert!(
        valid_peak <= budget,
        "valid decode peaked at {valid_peak} bytes; bound {budget} is miscalibrated"
    );

    // SBBT header mutants: counts declaring up to u64::MAX records. A
    // naive `Vec::with_capacity(branch_count)` would request 2^64 * 24
    // bytes here.
    for (what, offset, value, rejected) in [
        ("branch count maxed", 16, u64::MAX, true),
        ("branch count huge", 16, 1 << 40, true),
        // A maxed instruction count is not provably wrong (it only has to
        // be >= the branch count), so the reader accepts it — what matters
        // is that nothing sizes an allocation from it.
        ("instruction count maxed", 8, u64::MAX, false),
    ] {
        let mut bad = raw.clone();
        bad[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
        let grew = peak_growth(|| {
            let result = SbbtReader::from_bytes(bad.clone()).and_then(|mut r| r.read_all());
            assert_eq!(result.is_err(), rejected, "{what}");
        });
        assert!(
            grew <= budget,
            "{what}: peak heap growth {grew} exceeds input-proportional budget {budget}"
        );
    }

    // Codec frame mutants: the declared uncompressed size is the first
    // field after the magic; max it out for both codecs.
    for codec in [mbp_compress::Codec::Mgz, mbp_compress::Codec::Mzst] {
        let packed = mbp_compress::compress(&raw, codec, 3).expect("compress");
        let mut bad = packed.clone();
        bad[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        let budget = 16 * packed.len() + 4096;
        let grew = peak_growth(|| {
            assert!(
                mbp_compress::decompress(&bad).is_err(),
                "{codec}: maxed size field must be rejected"
            );
        });
        assert!(
            grew <= budget,
            "{codec}: peak heap growth {grew} exceeds input-proportional budget {budget}"
        );

        // Same through the full trace-reader path.
        let grew = peak_growth(|| {
            assert!(
                SbbtReader::from_bytes(bad.clone()).is_err(),
                "{codec}: reader must reject the frame"
            );
        });
        assert!(grew <= budget, "{codec}: reader path peaked at {grew}");
    }
}
