//! The MBPlib *simulation library* (§III–§IV of the paper) — the paper's
//! primary contribution, rebuilt in Rust.
//!
//! MBPlib is a **library, not a framework**: your code owns `main`, builds a
//! predictor, and calls [`simulate`] (or [`simulate_comparison`]) on a trace
//! source. The result is a structured [`SimResult`] that renders to the JSON
//! document of the paper's Listing 1.
//!
//! The predictor interface is the paper's three-method contract
//! ([`Predictor`]): `predict` guesses an outcome from the branch address,
//! `train` updates the prediction structures with the resolved outcome, and
//! `track` updates the *scenario* (global history and friends). Keeping
//! `train` and `track` separate is what makes predictors composable into
//! meta-predictors with partial-update policies (§IV-B, §VI-D).
//!
//! # Examples
//!
//! A minimal always-taken predictor run over an in-memory trace:
//!
//! ```
//! use mbp_core::{simulate, Predictor, SimConfig, SliceSource};
//! use mbp_trace::{Branch, BranchRecord, Opcode};
//!
//! struct AlwaysTaken;
//! impl Predictor for AlwaysTaken {
//!     fn predict(&mut self, _ip: u64) -> bool { true }
//!     fn train(&mut self, _b: &Branch) {}
//!     fn track(&mut self, _b: &Branch) {}
//! }
//!
//! let recs = vec![
//!     BranchRecord::new(Branch::new(0x10, 0x20, Opcode::conditional_direct(), true), 4),
//!     BranchRecord::new(Branch::new(0x10, 0x20, Opcode::conditional_direct(), false), 4),
//! ];
//! let mut source = SliceSource::new(&recs);
//! let result = simulate(&mut source, &mut AlwaysTaken, &SimConfig::default())?;
//! assert_eq!(result.metrics.mispredictions, 1);
//! println!("{}", result.to_json().to_pretty_string());
//! # Ok::<(), mbp_trace::TraceError>(())
//! ```

mod checkpoint;
mod compare;
mod forensics;
mod introspect;
mod metrics;
mod output;
mod predictor;
mod simpoint;
mod simulator;
mod source;
mod status;
mod sweep;
mod timeseries;

pub use checkpoint::{load_checkpoint, CheckpointLoad, CheckpointWriter, CHECKPOINT_VERSION};
pub use compare::{simulate_comparison, ComparisonResult, DivergingBranch};
pub use forensics::{
    Forensics, ForensicsConfig, FORENSICS_SCHEMA_VERSION, H2P_MIN_MISPREDICTION_RATE,
    H2P_MIN_OCCURRENCES,
};
pub use introspect::{probe_counter_table, probes_to_json, TableProbe};
pub use metrics::{
    BranchStat, BranchTaxonomy, ClassStat, Metrics, MostFailed, ENTROPY_CLASSES, TRANSITION_CLASSES,
};
pub use predictor::{PredictionBits, Predictor};
pub use simpoint::{
    extract_bbv, extract_phases, extract_phases_with_warmup, kmeans, simulate_sampled, BbvWindow,
    Phase, PhasesDoc, BBV_FEATURE_DIM, KMEANS_MAX_ITERATIONS, PHASES_SCHEMA_VERSION,
};
pub use simulator::{simulate, simulate_scalar, SimConfig, SimMetadata, SimResult};
pub use source::{SliceSource, TraceSource, VecSource, BATCH_RECORDS};
pub use status::{PredictorState, PredictorStatus, StatusPredictor, SweepStatusBoard};
pub use sweep::{simulate_many, FailureKind, SweepConfig, SweepEntry, SweepFailure, SweepResult};
pub use timeseries::{TimeSeries, TimeSeriesBuilder, Window, DEFAULT_WINDOW_INSTRUCTIONS};

// Re-export the vocabulary types so predictor crates depend on `mbp-core`
// alone.
pub use mbp_json::{json, Map, Number, Value};
pub use mbp_trace::{Branch, BranchBatch, BranchKind, BranchRecord, Opcode, TraceError};

/// Simulator identification embedded in every result (Listing 1).
pub const SIMULATOR_NAME: &str = "MBPlib std simulator";
/// Version string embedded in every result.
pub const SIMULATOR_VERSION: &str = concat!("v", env!("CARGO_PKG_VERSION"));
