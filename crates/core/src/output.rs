//! JSON rendering of simulation results (Listing 1 of the paper).

use mbp_json::{json, Value};

use crate::metrics::{BranchTaxonomy, ClassStat, ENTROPY_CLASSES, TRANSITION_CLASSES};
use crate::SimResult;

/// Renders one taxonomy class table as a name-keyed object.
fn classes_json(names: &[&str], stats: &[ClassStat]) -> Value {
    let mut obj = json!({});
    if let Some(map) = obj.as_object_mut() {
        for (name, s) in names.iter().zip(stats) {
            map.insert(
                *name,
                json!({
                    "branches": s.branches,
                    "occurrences": s.occurrences,
                    "mispredictions": s.mispredictions,
                }),
            );
        }
    }
    obj
}

impl BranchTaxonomy {
    /// Renders the taxonomy as the `metrics.branch_taxonomy` JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "measured_branches": self.measured_branches,
            "mean_direction_entropy": self.mean_direction_entropy,
            "mean_transition_rate": self.mean_transition_rate,
            "entropy_classes": classes_json(&ENTROPY_CLASSES, &self.entropy_classes),
            "transition_classes": classes_json(&TRANSITION_CLASSES, &self.transition_classes),
        })
    }
}

impl SimResult {
    /// Renders the result as the JSON document of Listing 1: `metadata`,
    /// `metrics`, `predictor_statistics` and `most_failed` sections, with
    /// the predictor's own metadata embedded under `metadata.predictor`.
    ///
    /// Two opt-in extensions ride along without disturbing the Listing-1
    /// shape: windowed telemetry renders under `metrics.timeseries`, and
    /// table-health probes append a trailing `introspection` section —
    /// both only when the run collected them.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mbp_core::{simulate, Predictor, SimConfig, SliceSource};
    /// # use mbp_trace::{Branch, BranchRecord, Opcode};
    /// # struct P;
    /// # impl Predictor for P {
    /// #     fn predict(&mut self, _: u64) -> bool { true }
    /// #     fn train(&mut self, _: &Branch) {}
    /// #     fn track(&mut self, _: &Branch) {}
    /// # }
    /// # let recs = vec![BranchRecord::new(
    /// #     Branch::new(0x10, 0, Opcode::conditional_direct(), true), 0)];
    /// # let r = simulate(&mut SliceSource::new(&recs), &mut P, &SimConfig::default())?;
    /// let doc = r.to_json();
    /// assert!(doc["metrics"]["mpki"].as_f64().is_some());
    /// assert_eq!(doc["metadata"]["simulator"].as_str(), Some("MBPlib std simulator"));
    /// # Ok::<(), mbp_trace::TraceError>(())
    /// ```
    pub fn to_json(&self) -> Value {
        let m = &self.metadata;
        let mut doc = json!({
            "metadata": {
                "simulator": m.simulator,
                "version": m.version,
                "trace": m.trace.clone(),
                "warmup_instr": m.warmup_instr,
                "simulation_instr": m.simulation_instr,
                "exhausted_trace": m.exhausted_trace,
                "num_conditional_branches": m.num_conditional_branches,
                "num_branch_instructions": m.num_branch_instructions,
                "track_only_conditional": m.track_only_conditional,
                "predictor": m.predictor.clone(),
            },
            "metrics": {
                "mpki": self.metrics.mpki,
                "mispredictions": self.metrics.mispredictions,
                "accuracy": self.metrics.accuracy,
                "num_most_failed_branches": self.metrics.num_most_failed_branches,
                "simulation_time": self.metrics.simulation_time,
                "branch_taxonomy": self.branch_taxonomy.to_json(),
            },
            "predictor_statistics": self.predictor_statistics.clone(),
            "most_failed": self.most_failed.iter().map(|s| json!({
                "ip": s.ip,
                "occurrences": s.occurrences,
                "mispredictions": s.mispredictions,
                "taken": s.taken,
                "mpki": s.mpki,
                "accuracy": s.accuracy,
                "direction_entropy": s.direction_entropy,
                "transition_rate": s.transition_rate,
            })).collect::<Vec<_>>(),
        });
        if let Some(ts) = &self.timeseries {
            if let Some(metrics) = doc
                .as_object_mut()
                .and_then(|d| d.get_mut("metrics"))
                .and_then(Value::as_object_mut)
            {
                metrics.insert("timeseries", ts.to_json());
            }
        }
        if !self.table_probes.is_empty() {
            if let Some(d) = doc.as_object_mut() {
                d.insert(
                    "introspection",
                    json!({ "probes": crate::probes_to_json(&self.table_probes) }),
                );
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use crate::{simulate, Predictor, SimConfig, SliceSource};
    use mbp_json::{json, Value};
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Always(bool);

    impl Predictor for Always {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "MBPlib GShare", "history_length": 25, "log_table_size": 18})
        }
    }

    #[test]
    fn output_has_all_listing1_sections() {
        let recs = vec![
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), true), 3),
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), false), 3),
        ];
        let r = simulate(
            &mut SliceSource::named(&recs, "traces/SHORT_SERVER-1.sbbt.mzst"),
            &mut Always(true),
            &SimConfig::default(),
        )
        .unwrap();
        let doc = r.to_json();

        // Section presence and ordering per Listing 1.
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            ["metadata", "metrics", "predictor_statistics", "most_failed"]
        );

        let meta = doc["metadata"].as_object().unwrap();
        for key in [
            "simulator",
            "version",
            "trace",
            "warmup_instr",
            "simulation_instr",
            "exhausted_trace",
        ] {
            assert!(meta.contains_key(key), "missing metadata.{key}");
        }
        // Listing 1 contains a typo ("num_conditonal_branches"); we use the
        // corrected spelling.
        assert!(meta.contains_key("num_conditional_branches"));
        assert!(meta.contains_key("num_branch_instructions"));
        assert_eq!(
            doc["metadata"]["predictor"]["history_length"],
            Value::from(25)
        );
        assert_eq!(
            doc["metadata"]["trace"].as_str(),
            Some("traces/SHORT_SERVER-1.sbbt.mzst")
        );

        let metrics = doc["metrics"].as_object().unwrap();
        for key in [
            "mpki",
            "mispredictions",
            "accuracy",
            "num_most_failed_branches",
            "simulation_time",
        ] {
            assert!(metrics.contains_key(key), "missing metrics.{key}");
        }

        assert_eq!(doc["most_failed"][0]["ip"], Value::from(0x10));
        // The document parses back (machine-friendly requirement).
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn opt_in_sections_render_after_listing1_sections() {
        struct Probed;
        impl Predictor for Probed {
            fn predict(&mut self, _: u64) -> bool {
                true
            }
            fn train(&mut self, _: &Branch) {}
            fn track(&mut self, _: &Branch) {}
            fn table_probes(&self) -> Vec<crate::TableProbe> {
                vec![crate::TableProbe::new("table", 16)]
            }
        }
        let recs = vec![BranchRecord::new(
            Branch::new(0x10, 0, Opcode::conditional_direct(), true),
            9,
        )];
        let cfg = SimConfig {
            timeseries_window: Some(5),
            collect_probes: true,
            ..SimConfig::default()
        };
        let r = simulate(&mut SliceSource::new(&recs), &mut Probed, &cfg).unwrap();
        let doc = r.to_json();
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            [
                "metadata",
                "metrics",
                "predictor_statistics",
                "most_failed",
                "introspection"
            ],
            "introspection appends after the Listing-1 sections"
        );
        let ts = &doc["metrics"]["timeseries"];
        assert_eq!(ts["window_size"].as_u64(), Some(5));
        assert_eq!(ts["num_windows"].as_u64(), Some(1));
        assert_eq!(
            doc["introspection"]["probes"][0]["name"].as_str(),
            Some("table")
        );
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }
}
