//! JSON rendering of simulation results (Listing 1 of the paper), and the
//! inverse parse used by checkpoint resume.

use mbp_json::{json, Value};

use crate::metrics::{
    BranchStat, BranchTaxonomy, ClassStat, Metrics, ENTROPY_CLASSES, TRANSITION_CLASSES,
};
use crate::simulator::SimMetadata;
use crate::timeseries::{TimeSeries, Window};
use crate::{SimResult, TableProbe};

/// Renders one taxonomy class table as a name-keyed object.
fn classes_json(names: &[&str], stats: &[ClassStat]) -> Value {
    let mut obj = json!({});
    if let Some(map) = obj.as_object_mut() {
        for (name, s) in names.iter().zip(stats) {
            map.insert(
                *name,
                json!({
                    "branches": s.branches,
                    "occurrences": s.occurrences,
                    "mispredictions": s.mispredictions,
                }),
            );
        }
    }
    obj
}

impl BranchTaxonomy {
    /// Renders the taxonomy as the `metrics.branch_taxonomy` JSON object.
    pub fn to_json(&self) -> Value {
        json!({
            "measured_branches": self.measured_branches,
            "mean_direction_entropy": self.mean_direction_entropy,
            "mean_transition_rate": self.mean_transition_rate,
            "entropy_classes": classes_json(&ENTROPY_CLASSES, &self.entropy_classes),
            "transition_classes": classes_json(&TRANSITION_CLASSES, &self.transition_classes),
        })
    }
}

impl SimResult {
    /// Renders the result as the JSON document of Listing 1: `metadata`,
    /// `metrics`, `predictor_statistics` and `most_failed` sections, with
    /// the predictor's own metadata embedded under `metadata.predictor`.
    ///
    /// Two opt-in extensions ride along without disturbing the Listing-1
    /// shape: windowed telemetry renders under `metrics.timeseries`, and
    /// table-health probes append a trailing `introspection` section —
    /// both only when the run collected them.
    ///
    /// # Examples
    ///
    /// ```
    /// # use mbp_core::{simulate, Predictor, SimConfig, SliceSource};
    /// # use mbp_trace::{Branch, BranchRecord, Opcode};
    /// # struct P;
    /// # impl Predictor for P {
    /// #     fn predict(&mut self, _: u64) -> bool { true }
    /// #     fn train(&mut self, _: &Branch) {}
    /// #     fn track(&mut self, _: &Branch) {}
    /// # }
    /// # let recs = vec![BranchRecord::new(
    /// #     Branch::new(0x10, 0, Opcode::conditional_direct(), true), 0)];
    /// # let r = simulate(&mut SliceSource::new(&recs), &mut P, &SimConfig::default())?;
    /// let doc = r.to_json();
    /// assert!(doc["metrics"]["mpki"].as_f64().is_some());
    /// assert_eq!(doc["metadata"]["simulator"].as_str(), Some("MBPlib std simulator"));
    /// # Ok::<(), mbp_trace::TraceError>(())
    /// ```
    pub fn to_json(&self) -> Value {
        let m = &self.metadata;
        let mut doc = json!({
            "metadata": {
                "simulator": m.simulator,
                "version": m.version,
                "trace": m.trace.clone(),
                "warmup_instr": m.warmup_instr,
                "simulation_instr": m.simulation_instr,
                "exhausted_trace": m.exhausted_trace,
                "num_conditional_branches": m.num_conditional_branches,
                "num_branch_instructions": m.num_branch_instructions,
                "track_only_conditional": m.track_only_conditional,
                "predictor": m.predictor.clone(),
            },
            "metrics": {
                "mpki": self.metrics.mpki,
                "mispredictions": self.metrics.mispredictions,
                "accuracy": self.metrics.accuracy,
                "num_most_failed_branches": self.metrics.num_most_failed_branches,
                "simulation_time": self.metrics.simulation_time,
                "branch_taxonomy": self.branch_taxonomy.to_json(),
            },
            "predictor_statistics": self.predictor_statistics.clone(),
            "most_failed": self.most_failed.iter().map(|s| json!({
                "ip": s.ip,
                "occurrences": s.occurrences,
                "mispredictions": s.mispredictions,
                "taken": s.taken,
                "mpki": s.mpki,
                "accuracy": s.accuracy,
                "direction_entropy": s.direction_entropy,
                "transition_rate": s.transition_rate,
            })).collect::<Vec<_>>(),
        });
        if let Some(ts) = &self.timeseries {
            if let Some(metrics) = doc
                .as_object_mut()
                .and_then(|d| d.get_mut("metrics"))
                .and_then(Value::as_object_mut)
            {
                metrics.insert("timeseries", ts.to_json());
            }
        }
        if let Some(forensics) = &self.forensics {
            if let Some(d) = doc.as_object_mut() {
                d.insert("forensics", forensics.clone());
            }
        }
        if let Some(sampling) = &self.sampling {
            if let Some(d) = doc.as_object_mut() {
                d.insert("simpoint", sampling.clone());
            }
        }
        if !self.table_probes.is_empty() {
            if let Some(d) = doc.as_object_mut() {
                d.insert(
                    "introspection",
                    json!({ "probes": crate::probes_to_json(&self.table_probes) }),
                );
            }
        }
        doc
    }

    /// Parses a document rendered by [`SimResult::to_json`] back into a
    /// [`SimResult`] — the inverse used by sweep checkpoint resume, so a
    /// predictor completed before a crash is not re-simulated.
    ///
    /// The parse is strict about identity: a document whose
    /// `metadata.simulator` or `metadata.version` does not match this build
    /// is rejected (resume re-runs the predictor instead of mixing results
    /// from different simulator versions into one leaderboard). Re-rendering
    /// the parsed result reproduces the input document byte-for-byte, which
    /// is what makes resumed sweeps indistinguishable from uninterrupted
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first missing, mistyped or
    /// mismatched field.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let meta = req(doc, "metadata")?;
        let simulator = req_str(meta, "simulator")?;
        if simulator != crate::SIMULATOR_NAME {
            return Err(format!(
                "metadata.simulator is {simulator:?}, not {:?}",
                crate::SIMULATOR_NAME
            ));
        }
        let version = req_str(meta, "version")?;
        if version != crate::SIMULATOR_VERSION {
            return Err(format!(
                "metadata.version is {version:?}, not {:?}",
                crate::SIMULATOR_VERSION
            ));
        }
        let metadata = SimMetadata {
            simulator: crate::SIMULATOR_NAME,
            version: crate::SIMULATOR_VERSION,
            trace: req(meta, "trace")?.clone(),
            warmup_instr: req_u64(meta, "warmup_instr")?,
            simulation_instr: req_u64(meta, "simulation_instr")?,
            exhausted_trace: req_bool(meta, "exhausted_trace")?,
            num_conditional_branches: req_u64(meta, "num_conditional_branches")?,
            num_branch_instructions: req_u64(meta, "num_branch_instructions")?,
            track_only_conditional: req_bool(meta, "track_only_conditional")?,
            predictor: req(meta, "predictor")?.clone(),
        };

        let m = req(doc, "metrics")?;
        let metrics = Metrics {
            mpki: req_f64(m, "mpki")?,
            mispredictions: req_u64(m, "mispredictions")?,
            accuracy: req_f64(m, "accuracy")?,
            num_most_failed_branches: req_u64(m, "num_most_failed_branches")?,
            simulation_time: req_f64(m, "simulation_time")?,
        };
        let branch_taxonomy = BranchTaxonomy::from_json(req(m, "branch_taxonomy")?)?;
        let timeseries = match m.get("timeseries") {
            Some(ts) => Some(timeseries_from_json(ts)?),
            None => None,
        };

        let most_failed = req(doc, "most_failed")?
            .as_array()
            .ok_or("most_failed is not an array")?
            .iter()
            .map(branch_stat_from_json)
            .collect::<Result<Vec<_>, _>>()?;

        let table_probes = match doc.get("introspection") {
            Some(intro) => req(intro, "probes")?
                .as_array()
                .ok_or("introspection.probes is not an array")?
                .iter()
                .map(probe_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };

        Ok(SimResult {
            metadata,
            metrics,
            predictor_statistics: req(doc, "predictor_statistics")?.clone(),
            most_failed,
            branch_taxonomy,
            timeseries,
            table_probes,
            sampling: doc.get("simpoint").cloned(),
            forensics: doc.get("forensics").cloned(),
        })
    }
}

impl BranchTaxonomy {
    /// Parses the `metrics.branch_taxonomy` object back (inverse of
    /// [`BranchTaxonomy::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        Ok(Self {
            measured_branches: req_u64(v, "measured_branches")?,
            mean_direction_entropy: req_f64(v, "mean_direction_entropy")?,
            mean_transition_rate: req_f64(v, "mean_transition_rate")?,
            entropy_classes: classes_from_json(&ENTROPY_CLASSES, req(v, "entropy_classes")?)?,
            transition_classes: classes_from_json(
                &TRANSITION_CLASSES,
                req(v, "transition_classes")?,
            )?,
        })
    }
}

fn req<'a>(obj: &'a Value, key: &'static str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn req_str<'a>(obj: &'a Value, key: &'static str) -> Result<&'a str, String> {
    req(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn req_u64(obj: &Value, key: &'static str) -> Result<u64, String> {
    req(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn req_f64(obj: &Value, key: &'static str) -> Result<f64, String> {
    req(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn req_bool(obj: &Value, key: &'static str) -> Result<bool, String> {
    req(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a boolean"))
}

/// Inverse of `classes_json`: reads one taxonomy class table back in the
/// canonical name order.
fn classes_from_json<const N: usize>(
    names: &[&str; N],
    v: &Value,
) -> Result<[ClassStat; N], String> {
    let mut out = [ClassStat::default(); N];
    for (slot, name) in out.iter_mut().zip(names) {
        let c = v
            .get(name)
            .ok_or_else(|| format!("missing taxonomy class `{name}`"))?;
        *slot = ClassStat {
            branches: req_u64(c, "branches")?,
            occurrences: req_u64(c, "occurrences")?,
            mispredictions: req_u64(c, "mispredictions")?,
        };
    }
    Ok(out)
}

fn branch_stat_from_json(v: &Value) -> Result<BranchStat, String> {
    Ok(BranchStat {
        ip: req_u64(v, "ip")?,
        occurrences: req_u64(v, "occurrences")?,
        mispredictions: req_u64(v, "mispredictions")?,
        taken: req_u64(v, "taken")?,
        mpki: req_f64(v, "mpki")?,
        accuracy: req_f64(v, "accuracy")?,
        direction_entropy: req_f64(v, "direction_entropy")?,
        transition_rate: req_f64(v, "transition_rate")?,
    })
}

/// Inverse of `TimeSeries::to_json`. The derived per-window fields (`mpki`,
/// `accuracy`, `taken_rate`) and `num_windows` are recomputed from the raw
/// counts on re-render, so they are validated implicitly by the round-trip.
fn timeseries_from_json(v: &Value) -> Result<TimeSeries, String> {
    let windows = req(v, "windows")?
        .as_array()
        .ok_or("timeseries.windows is not an array")?
        .iter()
        .map(|w| {
            Ok(Window {
                start_instruction: req_u64(w, "start_instruction")?,
                instructions: req_u64(w, "instructions")?,
                conditional: req_u64(w, "conditional_branches")?,
                mispredictions: req_u64(w, "mispredictions")?,
                taken: req_u64(w, "taken_branches")?,
                unique_branches: req_u64(w, "unique_branches")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let warmup_end_window = match req(v, "warmup_end_window")? {
        Value::Null => None,
        w => Some(
            w.as_u64()
                .ok_or("warmup_end_window is neither null nor an unsigned integer")?
                as usize,
        ),
    };
    Ok(TimeSeries {
        window_size: req_u64(v, "window_size")?,
        windows,
        warmup_end_window,
        phase_change_score: req_f64(v, "phase_change_score")?,
        num_phase_changes: req_u64(v, "num_phase_changes")?,
    })
}

/// Inverse of `TableProbe::to_json`. The fixed fields are read by name;
/// `occupancy` is derived and skipped; every other key — predictor-specific
/// extras — is kept in document order so re-rendering preserves it.
fn probe_from_json(v: &Value) -> Result<TableProbe, String> {
    let obj = v.as_object().ok_or("probe is not an object")?;
    let hist = req(v, "counter_histogram")?
        .as_object()
        .ok_or("counter_histogram is not an object")?
        .iter()
        .map(|(label, count)| {
            count
                .as_u64()
                .map(|c| (label.to_string(), c))
                .ok_or_else(|| format!("histogram bucket `{label}` is not an unsigned integer"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let useful_density = match obj.get("useful_density") {
        Some(d) => Some(d.as_f64().ok_or("useful_density is not a number")?),
        None => None,
    };
    const FIXED: [&str; 7] = [
        "name",
        "entries",
        "occupied",
        "occupancy",
        "saturated",
        "counter_histogram",
        "useful_density",
    ];
    let extra = obj
        .iter()
        .filter(|(k, _)| !FIXED.contains(k))
        .map(|(k, val)| (k.to_string(), val.clone()))
        .collect();
    Ok(TableProbe {
        name: req_str(v, "name")?.to_string(),
        entries: req_u64(v, "entries")?,
        occupied: req_u64(v, "occupied")?,
        saturated: req_u64(v, "saturated")?,
        counter_histogram: hist,
        useful_density,
        extra,
    })
}

#[cfg(test)]
mod tests {
    use crate::{simulate, Predictor, SimConfig, SliceSource};
    use mbp_json::{json, Value};
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Always(bool);

    impl Predictor for Always {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "MBPlib GShare", "history_length": 25, "log_table_size": 18})
        }
    }

    #[test]
    fn output_has_all_listing1_sections() {
        let recs = vec![
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), true), 3),
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), false), 3),
        ];
        let r = simulate(
            &mut SliceSource::named(&recs, "traces/SHORT_SERVER-1.sbbt.mzst"),
            &mut Always(true),
            &SimConfig::default(),
        )
        .unwrap();
        let doc = r.to_json();

        // Section presence and ordering per Listing 1.
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            ["metadata", "metrics", "predictor_statistics", "most_failed"]
        );

        let meta = doc["metadata"].as_object().unwrap();
        for key in [
            "simulator",
            "version",
            "trace",
            "warmup_instr",
            "simulation_instr",
            "exhausted_trace",
        ] {
            assert!(meta.contains_key(key), "missing metadata.{key}");
        }
        // Listing 1 contains a typo ("num_conditonal_branches"); we use the
        // corrected spelling.
        assert!(meta.contains_key("num_conditional_branches"));
        assert!(meta.contains_key("num_branch_instructions"));
        assert_eq!(
            doc["metadata"]["predictor"]["history_length"],
            Value::from(25)
        );
        assert_eq!(
            doc["metadata"]["trace"].as_str(),
            Some("traces/SHORT_SERVER-1.sbbt.mzst")
        );

        let metrics = doc["metrics"].as_object().unwrap();
        for key in [
            "mpki",
            "mispredictions",
            "accuracy",
            "num_most_failed_branches",
            "simulation_time",
        ] {
            assert!(metrics.contains_key(key), "missing metrics.{key}");
        }

        assert_eq!(doc["most_failed"][0]["ip"], Value::from(0x10));
        // The document parses back (machine-friendly requirement).
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn opt_in_sections_render_after_listing1_sections() {
        struct Probed;
        impl Predictor for Probed {
            fn predict(&mut self, _: u64) -> bool {
                true
            }
            fn train(&mut self, _: &Branch) {}
            fn track(&mut self, _: &Branch) {}
            fn table_probes(&self) -> Vec<crate::TableProbe> {
                vec![crate::TableProbe::new("table", 16)]
            }
        }
        let recs = vec![BranchRecord::new(
            Branch::new(0x10, 0, Opcode::conditional_direct(), true),
            9,
        )];
        let cfg = SimConfig {
            timeseries_window: Some(5),
            collect_probes: true,
            ..SimConfig::default()
        };
        let r = simulate(&mut SliceSource::new(&recs), &mut Probed, &cfg).unwrap();
        let doc = r.to_json();
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            [
                "metadata",
                "metrics",
                "predictor_statistics",
                "most_failed",
                "introspection"
            ],
            "introspection appends after the Listing-1 sections"
        );
        let ts = &doc["metrics"]["timeseries"];
        assert_eq!(ts["window_size"].as_u64(), Some(5));
        assert_eq!(ts["num_windows"].as_u64(), Some(1));
        assert_eq!(
            doc["introspection"]["probes"][0]["name"].as_str(),
            Some("table")
        );
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    /// A result with every optional section populated, for round-trip tests.
    fn full_result() -> crate::SimResult {
        struct Probed;
        impl Predictor for Probed {
            fn predict(&mut self, ip: u64) -> bool {
                ip & 0x8 == 0
            }
            fn train(&mut self, _: &Branch) {}
            fn track(&mut self, _: &Branch) {}
            fn metadata(&self) -> Value {
                json!({"name": "probed", "log_table_size": 4})
            }
            fn execution_statistics(&self) -> Value {
                json!({"lookups": 64})
            }
            fn table_probes(&self) -> Vec<crate::TableProbe> {
                let mut p = crate::TableProbe::new("t0", 16).with_extra("hist_len", 7u64);
                p.occupied = 3;
                p.saturated = 1;
                p.counter_histogram = vec![("-1".to_string(), 6), ("0".to_string(), 10)];
                p.useful_density = Some(0.375);
                vec![p, crate::TableProbe::new("t1", 4)]
            }
        }
        let recs: Vec<_> = (0..40)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(0x10 + (i % 5), 0, Opcode::conditional_direct(), i % 3 != 0),
                    4,
                )
            })
            .collect();
        let cfg = SimConfig {
            warmup_instructions: 25,
            timeseries_window: Some(50),
            collect_probes: true,
            ..SimConfig::default()
        };
        simulate(
            &mut SliceSource::named(&recs, "traces/RT.sbbt.mzst"),
            &mut Probed,
            &cfg,
        )
        .unwrap()
    }

    #[test]
    fn from_json_round_trips_byte_identically() {
        let result = full_result();
        let doc = result.to_json();
        let parsed = crate::SimResult::from_json(&doc).expect("parses back");
        assert_eq!(
            parsed.to_json().to_pretty_string(),
            doc.to_pretty_string(),
            "re-render reproduces the document byte-for-byte"
        );
        // And through a serialize/parse cycle, as checkpoint resume does.
        let reparsed: Value = doc.to_pretty_string().parse().unwrap();
        let from_text = crate::SimResult::from_json(&reparsed).expect("parses after text cycle");
        assert_eq!(
            from_text.to_json().to_pretty_string(),
            doc.to_pretty_string()
        );
        // Structured fields survive, not just the rendering.
        assert_eq!(parsed.metrics, result.metrics);
        assert_eq!(parsed.most_failed, result.most_failed);
        assert_eq!(parsed.branch_taxonomy, result.branch_taxonomy);
        assert_eq!(parsed.timeseries, result.timeseries);
        assert_eq!(parsed.table_probes, result.table_probes);
    }

    #[test]
    fn from_json_round_trips_minimal_document() {
        let recs = vec![BranchRecord::new(
            Branch::new(0x10, 0, Opcode::conditional_direct(), true),
            0,
        )];
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut Always(true),
            &SimConfig::default(),
        )
        .unwrap();
        let doc = r.to_json();
        let parsed = crate::SimResult::from_json(&doc).unwrap();
        assert!(parsed.timeseries.is_none());
        assert!(parsed.table_probes.is_empty());
        assert_eq!(parsed.to_json().to_pretty_string(), doc.to_pretty_string());
    }

    #[test]
    fn from_json_rejects_foreign_simulator_or_version() {
        fn patch_meta(doc: &Value, key: &str, value: &str) -> Value {
            let mut doc = doc.clone();
            doc.as_object_mut()
                .unwrap()
                .get_mut("metadata")
                .unwrap()
                .as_object_mut()
                .unwrap()
                .insert(key, value);
            doc
        }
        let doc = full_result().to_json();
        let err = crate::SimResult::from_json(&patch_meta(&doc, "simulator", "other")).unwrap_err();
        assert!(err.contains("metadata.simulator"), "{err}");
        let err =
            crate::SimResult::from_json(&patch_meta(&doc, "version", "v0.0.0-other")).unwrap_err();
        assert!(err.contains("metadata.version"), "{err}");
    }

    #[test]
    fn sampled_result_round_trips_with_simpoint_section() {
        let recs: Vec<_> = (0..400)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(0x10 + (i % 7), 0, Opcode::conditional_direct(), i % 3 != 0),
                    9,
                )
            })
            .collect();
        let phases = crate::extract_phases(&recs, 1000, 3);
        let r = crate::simulate_sampled(&recs, &mut Always(true), &phases, &SimConfig::default());
        let doc = r.to_json();
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            [
                "metadata",
                "metrics",
                "predictor_statistics",
                "most_failed",
                "simpoint"
            ],
            "simpoint appends after the Listing-1 sections"
        );
        assert_eq!(
            doc["simpoint"]["doc_hash"].as_str(),
            Some(phases.doc_hash().as_str())
        );
        let parsed = crate::SimResult::from_json(&doc).expect("parses back");
        assert_eq!(parsed.to_json().to_pretty_string(), doc.to_pretty_string());
        assert_eq!(parsed.sampling, r.sampling);
    }

    #[test]
    fn forensic_result_round_trips_with_forensics_section() {
        let recs: Vec<_> = (0..60)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(0x10 + (i % 3), 0, Opcode::conditional_direct(), i % 2 == 0),
                    4,
                )
            })
            .collect();
        let cfg = SimConfig {
            forensics: Some(crate::ForensicsConfig::default()),
            ..SimConfig::default()
        };
        let r = simulate(&mut SliceSource::new(&recs), &mut Always(true), &cfg).unwrap();
        let doc = r.to_json();
        let keys: Vec<_> = doc.as_object().unwrap().keys().collect();
        assert_eq!(
            keys,
            [
                "metadata",
                "metrics",
                "predictor_statistics",
                "most_failed",
                "forensics"
            ],
            "forensics appends after the Listing-1 sections"
        );
        assert_eq!(
            doc["forensics"]["schema_version"].as_u64(),
            Some(crate::FORENSICS_SCHEMA_VERSION)
        );
        assert!(doc["forensics"]["top"]
            .as_array()
            .is_some_and(|t| !t.is_empty()));
        let parsed = crate::SimResult::from_json(&doc).expect("parses back");
        assert_eq!(parsed.to_json().to_pretty_string(), doc.to_pretty_string());
        assert_eq!(parsed.forensics, r.forensics);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let mut doc = full_result().to_json();
        doc.as_object_mut()
            .unwrap()
            .get_mut("metrics")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .remove("mpki");
        let err = crate::SimResult::from_json(&doc).unwrap_err();
        assert!(err.contains("mpki"), "{err}");
        assert!(crate::SimResult::from_json(&json!({})).is_err());
        assert!(crate::SimResult::from_json(&Value::Null).is_err());
    }
}
