//! Append-only sweep checkpointing: one fsync'd JSONL record per settled
//! predictor, so a killed sweep resumes instead of starting over.
//!
//! # File format (schema v1)
//!
//! The checkpoint is a JSON-Lines file. Every line is one self-contained
//! object describing one settled predictor:
//!
//! ```text
//! {"v":1,"predictor":"gshare","status":"ok","result":{ ...Listing-1 doc... }}
//! {"v":1,"predictor":"buggy","status":"failed","kind":"panic","message":"..."}
//! ```
//!
//! * `v` — schema version; readers stop at the first line whose version
//!   they do not understand.
//! * `predictor` — the display name passed to
//!   [`simulate_many`](crate::simulate_many); resume matches on it.
//! * `status` — `"ok"` carries the full [`SimResult`] document under
//!   `result`; `"failed"` carries the [`SweepFailure`] kind and message.
//!
//! Each record is flushed and `fsync`'d before the sweep reports the
//! predictor as done, so the file never claims work that could be lost.
//! The *last* line of a file whose writer was killed mid-append may be
//! truncated; [`load_checkpoint`] stops at the first malformed line by
//! design and treats everything before it as trustworthy.
//!
//! Completed results embed the simulator name and version; a record
//! written by a different build fails [`SimResult::from_json`]'s identity
//! check and is counted in [`CheckpointLoad::stale`] — the predictor is
//! re-run rather than mixing results from two simulator versions into one
//! leaderboard.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use mbp_json::{json, Value};

use crate::simulator::SimResult;
use crate::sweep::{FailureKind, SweepFailure};

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Appends settled-predictor records to a checkpoint file, one fsync per
/// record.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    records: u64,
    sampling: Option<String>,
}

impl CheckpointWriter {
    /// Creates (or truncates) a checkpoint file for a fresh sweep.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            file: File::create(path)?,
            records: 0,
            sampling: None,
        })
    }

    /// Opens a checkpoint file for appending (resumed sweeps). Creates the
    /// file if it does not exist yet.
    ///
    /// # Errors
    ///
    /// Propagates file-open failures.
    pub fn append(path: &Path) -> io::Result<Self> {
        Ok(Self {
            file: OpenOptions::new().create(true).append(true).open(path)?,
            records: 0,
            sampling: None,
        })
    }

    /// Binds subsequent records to a sampling plan: every record carries
    /// the plan's `doc_hash` so a resume under a different plan (or none)
    /// can be refused instead of silently mixing incomparable results.
    pub fn set_sampling(&mut self, sampling: Option<String>) {
        self.sampling = sampling;
    }

    /// Records written through this writer (excludes pre-existing lines of
    /// an appended file).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one completed-predictor record.
    ///
    /// # Errors
    ///
    /// Propagates write or fsync failures; the record must be durable
    /// before the sweep counts the predictor as settled.
    pub fn record_result(&mut self, name: &str, result: &SimResult) -> io::Result<()> {
        let mut record = json!({
            "v": CHECKPOINT_VERSION,
            "predictor": name,
            "status": "ok",
            "result": result.to_json(),
        });
        self.stamp_sampling(&mut record);
        self.write_line(&record)
    }

    /// Appends one failed-predictor record.
    ///
    /// # Errors
    ///
    /// Propagates write or fsync failures.
    pub fn record_failure(&mut self, failure: &SweepFailure) -> io::Result<()> {
        let mut record = json!({
            "v": CHECKPOINT_VERSION,
            "predictor": failure.name.as_str(),
            "status": "failed",
            "kind": failure.kind.as_str(),
            "message": failure.message.as_str(),
        });
        self.stamp_sampling(&mut record);
        self.write_line(&record)
    }

    fn stamp_sampling(&self, record: &mut Value) {
        if let Some(hash) = &self.sampling {
            if let Some(obj) = record.as_object_mut() {
                obj.insert("sampling", hash.as_str());
            }
        }
    }

    fn write_line(&mut self, record: &Value) -> io::Result<()> {
        let mut line = record.to_compact_string();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        // One fsync per record: the durability contract is that a record,
        // once reported, survives a kill. Sweep records settle at predictor
        // granularity (seconds to minutes apart), so this is off any hot
        // path.
        self.file.sync_data()?;
        self.records += 1;
        let stats = &mbp_stats::pipeline().sweep;
        stats.checkpoint_writes.inc();
        mbp_stats::events::instant(mbp_stats::events::EventName::CheckpointWrite, self.records);
        Ok(())
    }
}

/// Everything a checkpoint file yielded on load.
#[derive(Debug, Default)]
pub struct CheckpointLoad {
    /// Completed predictors with their parsed results, in file order,
    /// deduplicated by name (first record wins).
    pub completed: Vec<(String, SimResult)>,
    /// Failed predictors, in file order, deduplicated by name.
    pub failures: Vec<SweepFailure>,
    /// Well-formed records rejected because their result did not parse for
    /// this build (e.g. a checkpoint written by a different simulator
    /// version); the predictors are re-run.
    pub stale: usize,
    /// Lines ignored at the tail of the file: the first malformed line —
    /// usually a record cut short by a kill mid-append — and everything
    /// after it.
    pub ignored_tail_lines: usize,
    /// Sampling-plan hash stamped on the file's records (taken from the
    /// first well-formed record, including stale ones); `None` when the
    /// file is empty or was written by a full (unsampled) sweep.
    pub sampling: Option<String>,
}

impl CheckpointLoad {
    /// Whether the checkpoint already settles `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.completed.iter().any(|(n, _)| n == name)
            || self.failures.iter().any(|f| f.name == name)
    }

    /// Whether the file yielded any well-formed records at all (an empty
    /// checkpoint has no sampling plan to disagree with).
    pub fn has_records(&self) -> bool {
        !self.completed.is_empty() || !self.failures.is_empty() || self.stale > 0
    }
}

/// Reads a checkpoint file, tolerating a corrupt or truncated tail.
///
/// Parsing stops at the first line that is not a well-formed v1 record;
/// everything before it is returned. A missing file loads as empty (a
/// `--resume` against a path that was never written is a fresh sweep, not
/// an error).
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn load_checkpoint(path: &Path) -> io::Result<CheckpointLoad> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CheckpointLoad::default()),
        Err(e) => return Err(e),
    }
    let mut load = CheckpointLoad::default();
    let mut seen: HashSet<String> = HashSet::new();
    let mut first_record = true;
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Some((sampling, record)) => {
                if first_record {
                    load.sampling = sampling;
                    first_record = false;
                }
                match record {
                    Record::Ok(name, result) => {
                        if seen.insert(name.clone()) {
                            load.completed.push((name, *result));
                        }
                    }
                    Record::Failed(failure) => {
                        if seen.insert(failure.name.clone()) {
                            load.failures.push(failure);
                        }
                    }
                    Record::Stale => load.stale += 1,
                }
            }
            None => {
                // Corrupt or truncated from here on: keep the trusted
                // prefix, ignore the tail.
                load.ignored_tail_lines = lines.len() - i;
                break;
            }
        }
    }
    Ok(load)
}

enum Record {
    // Boxed: a SimResult is hundreds of bytes and would dominate the enum.
    Ok(String, Box<SimResult>),
    Failed(SweepFailure),
    /// Well-formed, but not usable by this build; re-run the predictor.
    Stale,
}

/// One line → its sampling stamp plus one record; `None` means the line
/// (and thus the rest of the file) cannot be trusted.
fn parse_record(line: &str) -> Option<(Option<String>, Record)> {
    let doc: Value = line.parse().ok()?;
    if doc.get("v")?.as_u64()? != CHECKPOINT_VERSION {
        return None;
    }
    let sampling = doc
        .get("sampling")
        .and_then(Value::as_str)
        .map(str::to_string);
    let name = doc.get("predictor")?.as_str()?.to_string();
    let record = match doc.get("status")?.as_str()? {
        "ok" => match SimResult::from_json(doc.get("result")?) {
            Ok(result) => Record::Ok(name, Box::new(result)),
            // A complete record from a different simulator build: not
            // corruption, so keep reading the file, but re-run this entry.
            Err(_) => Record::Stale,
        },
        "failed" => {
            let kind = FailureKind::parse(doc.get("kind")?.as_str()?)?;
            Record::Failed(SweepFailure {
                name,
                kind,
                message: doc.get("message")?.as_str()?.to_string(),
            })
        }
        _ => return None,
    };
    Some((sampling, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, Predictor, SimConfig, SliceSource};
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Up;
    impl Predictor for Up {
        fn predict(&mut self, _ip: u64) -> bool {
            true
        }
        fn train(&mut self, _b: &mbp_trace::Branch) {}
        fn track(&mut self, _b: &mbp_trace::Branch) {}
    }

    fn result() -> SimResult {
        let recs = vec![
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), true), 3),
            BranchRecord::new(Branch::new(0x10, 0, Opcode::conditional_direct(), false), 3),
        ];
        simulate(&mut SliceSource::new(&recs), &mut Up, &SimConfig::default()).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mbp-checkpoint-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = tmp("round_trip.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_result("gshare", &r).unwrap();
        w.record_failure(&SweepFailure {
            name: "buggy".to_string(),
            kind: FailureKind::Panic,
            message: "intentional".to_string(),
        })
        .unwrap();
        assert_eq!(w.records(), 2);

        let load = load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 1);
        assert_eq!(load.completed[0].0, "gshare");
        assert_eq!(
            load.completed[0].1.to_json().to_pretty_string(),
            r.to_json().to_pretty_string(),
            "checkpointed result re-renders identically"
        );
        assert_eq!(load.failures.len(), 1);
        assert_eq!(load.failures[0].kind, FailureKind::Panic);
        assert_eq!(load.ignored_tail_lines, 0);
        assert!(load.contains("gshare") && load.contains("buggy"));
        assert!(!load.contains("tage"));
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = tmp("truncated.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_result("a", &r).unwrap();
        w.record_result("b", &r).unwrap();
        // Simulate a kill mid-append: cut the file mid-way through the
        // second record.
        let bytes = std::fs::read(&path).unwrap();
        let first_line_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        std::fs::write(&path, &bytes[..first_line_end + 1 + 40]).unwrap();

        let load = load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 1, "the intact prefix survives");
        assert_eq!(load.completed[0].0, "a");
        assert_eq!(load.ignored_tail_lines, 1);
    }

    #[test]
    fn garbage_line_stops_the_read_but_keeps_the_prefix() {
        let path = tmp("garbage.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_result("a", &r).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"not json at all\n");
        bytes.extend_from_slice(b"{\"v\":1}\n");
        std::fs::write(&path, &bytes).unwrap();
        let load = load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 1);
        assert_eq!(load.ignored_tail_lines, 2);
    }

    #[test]
    fn duplicate_names_first_record_wins() {
        let path = tmp("dupes.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_failure(&SweepFailure {
            name: "p".to_string(),
            kind: FailureKind::Deadline,
            message: "first".to_string(),
        })
        .unwrap();
        w.record_result("p", &r).unwrap();
        let load = load_checkpoint(&path).unwrap();
        assert!(load.completed.is_empty());
        assert_eq!(load.failures.len(), 1);
        assert_eq!(load.failures[0].message, "first");
    }

    #[test]
    fn foreign_version_records_are_stale_not_fatal() {
        let path = tmp("stale.jsonl");
        let r = result();
        let mut doc = r.to_json();
        doc.as_object_mut()
            .unwrap()
            .get_mut("metadata")
            .unwrap()
            .as_object_mut()
            .unwrap()
            .insert("version", "v0.0.0-older");
        let line = json!({
            "v": CHECKPOINT_VERSION,
            "predictor": "old",
            "status": "ok",
            "result": doc,
        });
        let mut text = line.to_compact_string();
        text.push('\n');
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_result("fresh", &r).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(text.as_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let load = load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 1, "stale entry is skipped");
        assert_eq!(load.stale, 1);
        assert_eq!(load.ignored_tail_lines, 0, "the file is still trusted");
        assert!(!load.contains("old"), "stale entries re-run");
    }

    #[test]
    fn missing_file_loads_empty() {
        let load = load_checkpoint(&tmp("never_written.jsonl")).unwrap();
        assert!(load.completed.is_empty() && load.failures.is_empty());
        assert!(!load.has_records());
        assert_eq!(load.sampling, None);
    }

    #[test]
    fn sampling_stamp_round_trips() {
        let path = tmp("sampling_stamp.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.set_sampling(Some("fnv1a64:0123456789abcdef".to_string()));
        w.record_result("gshare", &r).unwrap();
        w.record_failure(&SweepFailure {
            name: "buggy".to_string(),
            kind: FailureKind::Panic,
            message: "intentional".to_string(),
        })
        .unwrap();
        drop(w);

        let load = load_checkpoint(&path).unwrap();
        assert!(load.has_records());
        assert_eq!(
            load.sampling.as_deref(),
            Some("fnv1a64:0123456789abcdef"),
            "sampling plan hash survives the round trip"
        );
    }

    #[test]
    fn unsampled_records_load_with_no_sampling_plan() {
        let path = tmp("no_sampling.jsonl");
        let r = result();
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.record_result("gshare", &r).unwrap();
        drop(w);

        let load = load_checkpoint(&path).unwrap();
        assert!(load.has_records());
        assert_eq!(load.sampling, None);
    }

    #[test]
    fn unknown_schema_version_stops_the_read() {
        let path = tmp("future.jsonl");
        std::fs::write(&path, b"{\"v\":2,\"predictor\":\"x\",\"status\":\"ok\"}\n").unwrap();
        let load = load_checkpoint(&path).unwrap();
        assert!(load.completed.is_empty());
        assert_eq!(load.ignored_tail_lines, 1);
    }
}
