//! Live per-predictor status for the telemetry plane.
//!
//! A [`SweepStatusBoard`] is a fixed set of lock-free slots, one per
//! predictor, that the sweep machinery publishes lifecycle transitions and
//! progress counters into while a serving thread (the `/snapshot` endpoint)
//! reads them with relaxed loads. Nothing here synchronizes readers with
//! writers beyond the atomics themselves: a snapshot is a statistically
//! consistent view, which is all a dashboard needs.
//!
//! Progress counters come from [`StatusPredictor`], a transparent
//! [`Predictor`] wrapper the sweep installs only when a board is attached:
//! it forwards the whole interface bit-identically (metadata, statistics,
//! probes, the vectorized `predict_batch` kernel) and, on the side, scores
//! predictions against resolved outcomes to maintain live misprediction /
//! instruction counts. Without a board the wrapper is never constructed and
//! the hot path is untouched.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use mbp_json::Value;
use mbp_trace::{Branch, BranchBatch};

use crate::introspect::TableProbe;
use crate::predictor::{PredictionBits, Predictor};

/// Lifecycle of one predictor within a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum PredictorState {
    /// Waiting in the work queue.
    Queued = 0,
    /// Claimed by a worker and admitted by the memory budget.
    Admitted = 1,
    /// Simulation in progress.
    Running = 2,
    /// Finished with a result on the leaderboard.
    Settled = 3,
    /// Finished with a failure (panic, trace error, deadline, budget).
    Failed = 4,
    /// Never started: a shutdown drain parked it.
    NotRun = 5,
}

impl PredictorState {
    /// Stable string form used in snapshot JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            PredictorState::Queued => "queued",
            PredictorState::Admitted => "admitted",
            PredictorState::Running => "running",
            PredictorState::Settled => "settled",
            PredictorState::Failed => "failed",
            PredictorState::NotRun => "not_run",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => PredictorState::Admitted,
            2 => PredictorState::Running,
            3 => PredictorState::Settled,
            4 => PredictorState::Failed,
            5 => PredictorState::NotRun,
            _ => PredictorState::Queued,
        }
    }
}

/// One predictor's live counters.
#[derive(Debug)]
struct StatusSlot {
    name: String,
    state: AtomicU8,
    /// Progress heartbeat: one tick per processed batch.
    epoch: AtomicU64,
    /// Instructions retired so far (exact on the batch path; the scalar
    /// fallback counts the branch instructions themselves).
    instructions: AtomicU64,
    /// Conditional branches predicted so far.
    conditional: AtomicU64,
    /// Mispredicted conditional branches so far.
    mispredictions: AtomicU64,
    /// Address of the branch with the most mispredictions so far
    /// (`u64::MAX` — above any real branch address — means none yet).
    worst_ip: AtomicU64,
    /// Misprediction count of that branch. The pair is two relaxed stores,
    /// so a reader can see a torn (ip, count) combination for one scrape;
    /// acceptable for a dashboard drill-down.
    worst_mispredictions: AtomicU64,
}

/// Plain-data copy of one slot, as read by the snapshot endpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictorStatus {
    /// The predictor's display name.
    pub name: String,
    /// Current lifecycle state.
    pub state: PredictorState,
    /// Batches processed so far.
    pub epoch: u64,
    /// Instructions retired so far.
    pub instructions: u64,
    /// Conditional branches predicted so far.
    pub conditional_branches: u64,
    /// Mispredicted conditional branches so far.
    pub mispredictions: u64,
    /// The currently worst `(ip, mispredictions)` branch, as estimated by
    /// the wrapper's frequent-offender sketch; `None` before the first
    /// misprediction.
    pub worst_branch: Option<(u64, u64)>,
}

impl PredictorStatus {
    /// Live mispredictions-per-kilo-instruction, or zero before any
    /// instruction retired.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// A fixed board of per-predictor status slots, shared between the sweep's
/// workers (writers) and the telemetry server (reader).
#[derive(Debug, Default)]
pub struct SweepStatusBoard {
    slots: Vec<StatusSlot>,
}

impl SweepStatusBoard {
    /// Creates a board with one `Queued` slot per name, in the given order.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            slots: names
                .into_iter()
                .map(|name| StatusSlot {
                    name: name.into(),
                    state: AtomicU8::new(PredictorState::Queued as u8),
                    epoch: AtomicU64::new(0),
                    instructions: AtomicU64::new(0),
                    conditional: AtomicU64::new(0),
                    mispredictions: AtomicU64::new(0),
                    worst_ip: AtomicU64::new(u64::MAX),
                    worst_mispredictions: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolves a predictor name to its slot index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.slots.iter().position(|s| s.name == name)
    }

    /// Publishes a lifecycle transition. Out-of-range indices are ignored
    /// (status is advisory; it must never take down a worker).
    pub fn set_state(&self, index: usize, state: PredictorState) {
        if let Some(slot) = self.slots.get(index) {
            slot.state.store(state as u8, Ordering::Relaxed);
        }
    }

    /// Overwrites the progress counters with final, settle-time totals so
    /// the dashboard converges on the reported metrics.
    pub fn set_totals(&self, index: usize, instructions: u64, mispredictions: u64) {
        if let Some(slot) = self.slots.get(index) {
            slot.instructions.store(instructions, Ordering::Relaxed);
            slot.mispredictions.store(mispredictions, Ordering::Relaxed);
        }
    }

    /// Publishes the predictor's current worst branch (called by
    /// [`StatusPredictor`] when its sketch's running maximum changes, and
    /// by run drivers with final forensic totals at settle time).
    pub fn set_worst_branch(&self, index: usize, ip: u64, mispredictions: u64) {
        if let Some(slot) = self.slots.get(index) {
            slot.worst_ip.store(ip, Ordering::Relaxed);
            slot.worst_mispredictions
                .store(mispredictions, Ordering::Relaxed);
        }
    }

    /// Adds one batch worth of progress (called by [`StatusPredictor`]).
    fn add_progress(&self, index: usize, instructions: u64, conditional: u64, mispredicted: u64) {
        if let Some(slot) = self.slots.get(index) {
            slot.epoch.fetch_add(1, Ordering::Relaxed);
            slot.instructions.fetch_add(instructions, Ordering::Relaxed);
            slot.conditional.fetch_add(conditional, Ordering::Relaxed);
            slot.mispredictions
                .fetch_add(mispredicted, Ordering::Relaxed);
        }
    }

    /// A statistically consistent copy of every slot, in creation order.
    pub fn snapshot(&self) -> Vec<PredictorStatus> {
        self.slots
            .iter()
            .map(|s| PredictorStatus {
                name: s.name.clone(),
                state: PredictorState::from_u8(s.state.load(Ordering::Relaxed)),
                epoch: s.epoch.load(Ordering::Relaxed),
                instructions: s.instructions.load(Ordering::Relaxed),
                conditional_branches: s.conditional.load(Ordering::Relaxed),
                mispredictions: s.mispredictions.load(Ordering::Relaxed),
                worst_branch: match s.worst_ip.load(Ordering::Relaxed) {
                    u64::MAX => None,
                    ip => Some((ip, s.worst_mispredictions.load(Ordering::Relaxed))),
                },
            })
            .collect()
    }
}

/// Direct-mapped slots in the [`WorstBranchSketch`]. Same sizing rationale
/// as the taxonomy accumulator's cache: hot offender sets are small, and a
/// collision only resets a cold branch's count.
const WORST_SKETCH_SLOTS: usize = 256;

/// A tiny deterministic frequent-offenders sketch: direct-mapped per-ip
/// misprediction counts plus the running maximum. A hash collision evicts
/// the resident branch and restarts the newcomer's count at one, so counts
/// are lower bounds — which is all the live drill-down row needs; exact
/// per-branch totals come from the forensics engine at end of run.
struct WorstBranchSketch {
    slots: Vec<(u64, u64)>,
    worst_ip: u64,
    worst_count: u64,
}

impl WorstBranchSketch {
    fn new() -> Self {
        Self {
            slots: vec![(u64::MAX, 0); WORST_SKETCH_SLOTS],
            worst_ip: u64::MAX,
            worst_count: 0,
        }
    }

    /// Counts one misprediction of `ip`; returns the new `(ip, count)`
    /// maximum when it changed.
    fn miss(&mut self, ip: u64) -> Option<(u64, u64)> {
        let i = (ip.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize % WORST_SKETCH_SLOTS;
        let slot = &mut self.slots[i];
        if slot.0 != ip {
            *slot = (ip, 0);
        }
        slot.1 += 1;
        if slot.1 > self.worst_count {
            self.worst_ip = ip;
            self.worst_count = slot.1;
            Some((ip, slot.1))
        } else {
            None
        }
    }
}

/// A transparent [`Predictor`] wrapper that publishes live progress into a
/// [`SweepStatusBoard`] slot.
///
/// The forwarded interface is bit-identical to the inner predictor — the
/// driver-equivalence guarantees hold with or without the wrapper — and
/// the counting adds one pass over each batch's prediction bits, far off
/// the per-record hot path.
pub struct StatusPredictor {
    inner: Box<dyn Predictor + Send>,
    board: Arc<SweepStatusBoard>,
    slot: usize,
    /// Last scalar prediction, consumed by the matching `train` call.
    last_prediction: bool,
    /// Live estimate of the worst (most-mispredicted) branch.
    worst: WorstBranchSketch,
}

impl StatusPredictor {
    /// Wraps `inner`, publishing into `board` slot `slot`.
    pub fn new(
        inner: Box<dyn Predictor + Send>,
        board: Arc<SweepStatusBoard>,
        slot: usize,
    ) -> Self {
        Self {
            inner,
            board,
            slot,
            last_prediction: false,
            worst: WorstBranchSketch::new(),
        }
    }
}

impl Predictor for StatusPredictor {
    fn predict(&mut self, ip: u64) -> bool {
        let p = self.inner.predict(ip);
        self.last_prediction = p;
        p
    }

    fn train(&mut self, branch: &Branch) {
        // The driver pairs every conditional `train` with the immediately
        // preceding `predict` on the same branch.
        let missed = u64::from(self.last_prediction != branch.is_taken());
        self.board.add_progress(self.slot, 1, 1, missed);
        if missed != 0 {
            if let Some((ip, count)) = self.worst.miss(branch.ip()) {
                self.board.set_worst_branch(self.slot, ip, count);
            }
        }
        self.inner.train(branch);
    }

    fn track(&mut self, branch: &Branch) {
        self.inner.track(branch);
    }

    fn metadata(&self) -> Value {
        self.inner.metadata()
    }

    fn execution_statistics(&self) -> Value {
        self.inner.execution_statistics()
    }

    fn size_hint(&self) -> u64 {
        self.inner.size_hint()
    }

    fn last_mispredict_blame(&self) -> Option<&'static str> {
        self.inner.last_mispredict_blame()
    }

    fn table_probes(&self) -> Vec<TableProbe> {
        self.inner.table_probes()
    }

    fn predict_batch(
        &mut self,
        batch: &BranchBatch,
        track_only_conditional: bool,
        out: &mut PredictionBits,
    ) {
        let first = out.len();
        self.inner.predict_batch(batch, track_only_conditional, out);
        // Score the freshly appended bits against the batch's resolved
        // outcomes: one prediction bit per conditional branch, batch order.
        let mut conditional = 0u64;
        let mut missed = 0u64;
        let mut bit = first;
        let mut worst_change = None;
        for i in 0..batch.len() {
            if batch.is_conditional(i) {
                if bit < out.len() {
                    let taken = batch.taken()[i] != 0;
                    if out.get(bit) != taken {
                        missed += 1;
                        if let Some(w) = self.worst.miss(batch.pcs()[i]) {
                            worst_change = Some(w);
                        }
                    }
                }
                bit += 1;
                conditional += 1;
            }
        }
        let instructions: u64 = batch.gaps().iter().map(|&g| u64::from(g) + 1).sum();
        self.board
            .add_progress(self.slot, instructions, conditional, missed);
        // One publish per batch keeps the atomics off the scoring loop.
        if let Some((ip, count)) = worst_change {
            self.board.set_worst_branch(self.slot, ip, count);
        }
    }
}

impl std::fmt::Debug for StatusPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusPredictor")
            .field("slot", &self.slot)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;
    use mbp_trace::{BranchRecord, Opcode};

    struct AlwaysTaken;

    impl Predictor for AlwaysTaken {
        fn predict(&mut self, _ip: u64) -> bool {
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "always"})
        }
        fn size_hint(&self) -> u64 {
            128
        }
    }

    fn mixed_batch() -> BranchBatch {
        // Three conditionals (taken, not-taken, taken) and one jump, with
        // 4 gap instructions each: 4 * (4 + 1) = 20 instructions.
        let records = vec![
            BranchRecord::new(
                Branch::new(0x10, 0x90, Opcode::conditional_direct(), true),
                4,
            ),
            BranchRecord::new(
                Branch::new(0x20, 0x90, Opcode::conditional_direct(), false),
                4,
            ),
            BranchRecord::new(
                Branch::new(0x30, 0x90, Opcode::unconditional_direct(), true),
                4,
            ),
            BranchRecord::new(
                Branch::new(0x40, 0x90, Opcode::conditional_direct(), true),
                4,
            ),
        ];
        BranchBatch::from_records(&records)
    }

    #[test]
    fn board_tracks_lifecycle_and_lookup() {
        let board = SweepStatusBoard::new(["a", "b"]);
        assert_eq!(board.len(), 2);
        assert_eq!(board.index_of("b"), Some(1));
        assert_eq!(board.index_of("missing"), None);
        board.set_state(1, PredictorState::Running);
        board.set_state(99, PredictorState::Failed); // ignored, no panic
        let snap = board.snapshot();
        assert_eq!(snap[0].state, PredictorState::Queued);
        assert_eq!(snap[1].state, PredictorState::Running);
        assert_eq!(snap[1].name, "b");
    }

    #[test]
    fn wrapper_counts_batch_progress_and_forwards() {
        let board = Arc::new(SweepStatusBoard::new(["always"]));
        let mut p = StatusPredictor::new(Box::new(AlwaysTaken), Arc::clone(&board), 0);
        assert_eq!(p.metadata()["name"], Value::from("always"));
        assert_eq!(p.size_hint(), 128);

        let batch = mixed_batch();
        let mut bits = PredictionBits::new();
        p.predict_batch(&batch, false, &mut bits);
        assert_eq!(bits.len(), 3, "one bit per conditional");

        let s = &board.snapshot()[0];
        assert_eq!(s.epoch, 1);
        assert_eq!(s.instructions, 20);
        assert_eq!(s.conditional_branches, 3);
        // Always-taken misses only the single not-taken conditional.
        assert_eq!(s.mispredictions, 1);
        assert!((s.mpki() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn wrapper_counts_scalar_pairing() {
        let board = Arc::new(SweepStatusBoard::new(["always"]));
        let mut p = StatusPredictor::new(Box::new(AlwaysTaken), Arc::clone(&board), 0);
        let taken = Branch::new(0x10, 0x90, Opcode::conditional_direct(), true);
        let not_taken = Branch::new(0x20, 0x90, Opcode::conditional_direct(), false);
        assert!(p.predict(0x10));
        p.train(&taken);
        assert!(p.predict(0x20));
        p.train(&not_taken);
        p.track(&not_taken);
        let s = &board.snapshot()[0];
        assert_eq!(s.conditional_branches, 2);
        assert_eq!(s.mispredictions, 1);
    }

    #[test]
    fn wrapper_publishes_worst_branch() {
        let board = Arc::new(SweepStatusBoard::new(["always"]));
        let mut p = StatusPredictor::new(Box::new(AlwaysTaken), Arc::clone(&board), 0);
        assert_eq!(board.snapshot()[0].worst_branch, None);

        // Batch path: 0x20 is the only miss.
        let batch = mixed_batch();
        let mut bits = PredictionBits::new();
        p.predict_batch(&batch, false, &mut bits);
        assert_eq!(board.snapshot()[0].worst_branch, Some((0x20, 1)));

        // Scalar path: two more misses at 0x50 overtake it.
        let miss = Branch::new(0x50, 0x90, Opcode::conditional_direct(), false);
        for _ in 0..2 {
            p.predict(0x50);
            p.train(&miss);
        }
        assert_eq!(board.snapshot()[0].worst_branch, Some((0x50, 2)));
    }

    #[test]
    fn settle_totals_overwrite_live_counters() {
        let board = SweepStatusBoard::new(["a"]);
        board.add_progress(0, 10, 5, 2);
        board.set_totals(0, 1000, 7);
        board.set_state(0, PredictorState::Settled);
        let s = &board.snapshot()[0];
        assert_eq!(s.instructions, 1000);
        assert_eq!(s.mispredictions, 7);
        assert_eq!(s.state.as_str(), "settled");
    }
}
