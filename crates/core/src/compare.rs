//! The comparison simulator (§VI-C): two predictors over one trace.

use std::collections::HashMap;

use mbp_utils::FastHashBuilder;
use std::time::Instant;

use mbp_json::{json, Value};
use mbp_trace::TraceError;

use crate::metrics::{accuracy, mpki};
use crate::{Predictor, SimConfig, TableProbe, TraceSource};

/// A branch that one predictor handles better than the other.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DivergingBranch {
    /// Branch instruction address.
    pub ip: u64,
    /// Measured dynamic occurrences.
    pub occurrences: u64,
    /// Mispredictions of the first predictor on this branch.
    pub mispredictions_a: u64,
    /// Mispredictions of the second predictor on this branch.
    pub mispredictions_b: u64,
    /// Contribution of this branch to the MPKI difference (positive when
    /// the second predictor is better here).
    pub mpki_difference: f64,
}

/// The outcome of a comparison run.
#[derive(Clone, Debug)]
pub struct ComparisonResult {
    /// Trace description.
    pub trace: Value,
    /// Instructions measured.
    pub simulation_instr: u64,
    /// Measured conditional branches.
    pub num_conditional_branches: u64,
    /// Both predictors' self-descriptions.
    pub predictors: [Value; 2],
    /// Both predictors' total mispredictions.
    pub mispredictions: [u64; 2],
    /// Both predictors' MPKI.
    pub mpki: [f64; 2],
    /// Both predictors' accuracy.
    pub accuracy: [f64; 2],
    /// Occurrences mispredicted by exactly one of the two.
    pub only_a_wrong: u64,
    /// Occurrences mispredicted by exactly one of the two.
    pub only_b_wrong: u64,
    /// Branches sorted by absolute MPKI difference — "the branches which
    /// accounted for the biggest difference in MPKI".
    pub most_diverging: Vec<DivergingBranch>,
    /// Both predictors' `execution_statistics()` reports.
    pub predictor_statistics: [Value; 2],
    /// Both predictors' table probes; empty unless
    /// [`SimConfig::collect_probes`] was set.
    pub table_probes: [Vec<TableProbe>; 2],
    /// Wall-clock time in seconds.
    pub simulation_time: f64,
}

impl ComparisonResult {
    /// Renders the result as a JSON document analogous to Listing 1, with
    /// `most_failed` replaced by the diverging-branches report and a
    /// `predictor_statistics` section holding both predictors' dynamic
    /// statistics. When probes were collected, an `introspection` section
    /// with both predictors' probe reports is appended.
    pub fn to_json(&self) -> Value {
        let mut doc = json!({
            "metadata": {
                "simulator": "MBPlib comparison simulator",
                "version": crate::SIMULATOR_VERSION,
                "trace": self.trace.clone(),
                "simulation_instr": self.simulation_instr,
                "num_conditional_branches": self.num_conditional_branches,
                "predictor_0": self.predictors[0].clone(),
                "predictor_1": self.predictors[1].clone(),
            },
            "metrics": {
                "mpki_0": self.mpki[0],
                "mpki_1": self.mpki[1],
                "mispredictions_0": self.mispredictions[0],
                "mispredictions_1": self.mispredictions[1],
                "accuracy_0": self.accuracy[0],
                "accuracy_1": self.accuracy[1],
                "only_first_wrong": self.only_a_wrong,
                "only_second_wrong": self.only_b_wrong,
                "simulation_time": self.simulation_time,
            },
            "predictor_statistics": {
                "predictor_0": self.predictor_statistics[0].clone(),
                "predictor_1": self.predictor_statistics[1].clone(),
            },
            "most_failed": self.most_diverging.iter().map(|d| json!({
                "ip": d.ip,
                "occurrences": d.occurrences,
                "mispredictions_0": d.mispredictions_a,
                "mispredictions_1": d.mispredictions_b,
                "mpki_difference": d.mpki_difference,
            })).collect::<Vec<_>>(),
        });
        if self.table_probes.iter().any(|p| !p.is_empty()) {
            if let Some(d) = doc.as_object_mut() {
                d.insert(
                    "introspection",
                    json!({
                        "predictor_0": { "probes": crate::probes_to_json(&self.table_probes[0]) },
                        "predictor_1": { "probes": crate::probes_to_json(&self.table_probes[1]) },
                    }),
                );
            }
        }
        doc
    }
}

/// Simulates two predictors "in parallel" over one trace and reports which
/// occurrences are mispredicted by only one of them (§VI-C).
///
/// # Errors
///
/// Propagates trace decoding errors.
pub fn simulate_comparison<S, A, B>(
    trace: &mut S,
    a: &mut A,
    b: &mut B,
    config: &SimConfig,
) -> Result<ComparisonResult, TraceError>
where
    S: TraceSource + ?Sized,
    A: Predictor + ?Sized,
    B: Predictor + ?Sized,
{
    let start = Instant::now();
    let mut instructions = 0u64;
    let mut measured_instructions = 0u64;
    let mut conditional = 0u64;
    let mut mis = [0u64; 2];
    let mut only = [0u64; 2];
    let mut per_branch: HashMap<u64, (u64, u64, u64), FastHashBuilder> = HashMap::default();
    let mut batch = mbp_trace::BranchBatch::new();

    'trace: while trace.fill_batch(&mut batch)? > 0 {
        for i in 0..batch.len() {
            let rec = batch.record(i);
            if let Some(max) = config.max_instructions {
                if instructions >= max {
                    break 'trace;
                }
            }
            instructions += rec.instructions();
            let in_measurement = instructions > config.warmup_instructions;
            if in_measurement {
                measured_instructions += rec.instructions();
            }
            let br = rec.branch;
            if br.is_conditional() {
                let pa = a.predict(br.ip());
                let pb = b.predict(br.ip());
                let wrong_a = pa != br.is_taken();
                let wrong_b = pb != br.is_taken();
                if in_measurement {
                    conditional += 1;
                    mis[0] += wrong_a as u64;
                    mis[1] += wrong_b as u64;
                    only[0] += (wrong_a && !wrong_b) as u64;
                    only[1] += (wrong_b && !wrong_a) as u64;
                    let e = per_branch.entry(br.ip()).or_insert((0, 0, 0));
                    e.0 += 1;
                    e.1 += wrong_a as u64;
                    e.2 += wrong_b as u64;
                }
                a.train(&br);
                b.train(&br);
            }
            if !config.track_only_conditional || br.is_conditional() {
                a.track(&br);
                b.track(&br);
            }
        }
    }

    let mut most_diverging: Vec<DivergingBranch> = per_branch
        .into_iter()
        .filter(|&(_, (_, ma, mb))| ma != mb)
        .map(|(ip, (occ, ma, mb))| DivergingBranch {
            ip,
            occurrences: occ,
            mispredictions_a: ma,
            mispredictions_b: mb,
            mpki_difference: if measured_instructions == 0 {
                0.0
            } else {
                (ma as f64 - mb as f64) * 1000.0 / measured_instructions as f64
            },
        })
        .collect();
    most_diverging.sort_unstable_by(|x, y| {
        y.mpki_difference
            .abs()
            .partial_cmp(&x.mpki_difference.abs())
            .expect("finite mpki differences")
            .then(x.ip.cmp(&y.ip))
    });
    most_diverging.truncate(config.most_failed_limit);

    Ok(ComparisonResult {
        trace: trace.description(),
        simulation_instr: measured_instructions,
        num_conditional_branches: conditional,
        predictors: [a.metadata(), b.metadata()],
        mispredictions: mis,
        mpki: [
            mpki(mis[0], measured_instructions),
            mpki(mis[1], measured_instructions),
        ],
        accuracy: [accuracy(mis[0], conditional), accuracy(mis[1], conditional)],
        only_a_wrong: only[0],
        only_b_wrong: only[1],
        most_diverging,
        predictor_statistics: [a.execution_statistics(), b.execution_statistics()],
        table_probes: if config.collect_probes {
            [a.table_probes(), b.table_probes()]
        } else {
            [Vec::new(), Vec::new()]
        },
        simulation_time: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceSource;
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Fixed(bool);

    impl Predictor for Fixed {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "fixed", "dir": self.0})
        }
        fn execution_statistics(&self) -> Value {
            json!({"direction": self.0})
        }
        fn table_probes(&self) -> Vec<TableProbe> {
            vec![TableProbe::new("fixed", 1)]
        }
    }

    fn cond(ip: u64, taken: bool) -> BranchRecord {
        BranchRecord::new(Branch::new(ip, 0, Opcode::conditional_direct(), taken), 9)
    }

    #[test]
    fn disagreements_attributed_to_each_side() {
        // Branch 0x10 is always taken (B wrong), 0x20 never (A wrong).
        let recs = vec![
            cond(0x10, true),
            cond(0x20, false),
            cond(0x10, true),
            cond(0x20, false),
        ];
        let mut a = Fixed(true);
        let mut b = Fixed(false);
        let r = simulate_comparison(
            &mut SliceSource::new(&recs),
            &mut a,
            &mut b,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.mispredictions, [2, 2]);
        assert_eq!(r.only_a_wrong, 2);
        assert_eq!(r.only_b_wrong, 2);
        assert_eq!(r.simulation_instr, 40);
        assert_eq!(r.mpki, [50.0, 50.0]);
        assert_eq!(r.most_diverging.len(), 2);
        let d0 = r.most_diverging.iter().find(|d| d.ip == 0x10).unwrap();
        assert_eq!(d0.mispredictions_a, 0);
        assert_eq!(d0.mispredictions_b, 2);
        assert!(d0.mpki_difference < 0.0, "negative: B loses here");
    }

    #[test]
    fn identical_predictors_have_no_divergence() {
        let recs = vec![cond(0x10, true), cond(0x10, false)];
        let mut a = Fixed(true);
        let mut b = Fixed(true);
        let r = simulate_comparison(
            &mut SliceSource::new(&recs),
            &mut a,
            &mut b,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(r.most_diverging.is_empty());
        assert_eq!(r.only_a_wrong, 0);
        assert_eq!(r.only_b_wrong, 0);
    }

    #[test]
    fn json_has_both_predictor_sections() {
        let recs = vec![cond(0x10, true)];
        let mut a = Fixed(true);
        let mut b = Fixed(false);
        let r = simulate_comparison(
            &mut SliceSource::new(&recs),
            &mut a,
            &mut b,
            &SimConfig::default(),
        )
        .unwrap();
        let v = r.to_json();
        assert_eq!(v["metadata"]["predictor_0"]["dir"], Value::Bool(true));
        assert_eq!(v["metadata"]["predictor_1"]["dir"], Value::Bool(false));
        assert_eq!(v["metrics"]["mispredictions_1"], Value::from(1));
        assert_eq!(
            v["predictor_statistics"]["predictor_0"]["direction"],
            Value::Bool(true)
        );
        assert_eq!(
            v["predictor_statistics"]["predictor_1"]["direction"],
            Value::Bool(false)
        );
        assert!(
            v.get("introspection").is_none(),
            "no probes unless requested"
        );
    }

    #[test]
    fn introspection_section_renders_when_probes_collected() {
        let recs = vec![cond(0x10, true)];
        let mut a = Fixed(true);
        let mut b = Fixed(false);
        let cfg = SimConfig {
            collect_probes: true,
            ..SimConfig::default()
        };
        let r = simulate_comparison(&mut SliceSource::new(&recs), &mut a, &mut b, &cfg).unwrap();
        let v = r.to_json();
        assert_eq!(
            v["introspection"]["predictor_0"]["probes"][0]["name"].as_str(),
            Some("fixed")
        );
        assert_eq!(
            v["introspection"]["predictor_1"]["probes"][0]["entries"].as_u64(),
            Some(1)
        );
    }
}
