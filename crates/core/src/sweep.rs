//! The multi-predictor sweep engine: decode a trace once, fan N predictors
//! across a worker pool.
//!
//! The paper's prototyping workflow (§VI-A) runs the same trace through
//! many predictor configurations. Doing that with N separate `mbpsim run`
//! invocations decodes — and possibly decompresses — the trace N times;
//! [`simulate_many`] decodes it exactly once into shared memory and then
//! simulates every predictor against the same record block, in parallel,
//! using only `std` threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use mbp_json::{json, Value};
use mbp_trace::{BranchRecord, TraceError};

use crate::simulator::{simulate, SimConfig, SimResult};
use crate::{Predictor, SliceSource, TraceSource};

/// A named predictor awaiting simulation, claimed by exactly one worker.
type WorkSlot = Mutex<Option<(String, Box<dyn Predictor + Send>)>>;
/// A finished predictor's outcome, written by exactly one worker. A worker
/// failure (panic or trace error) is data, not a crash of the sweep.
type DoneSlot = Mutex<Option<Result<SimResult, SweepFailure>>>;

/// Configuration of a sweep run.
#[derive(Clone, Debug, Default)]
pub struct SweepConfig {
    /// Per-predictor simulation parameters (warm-up, instruction cap, …).
    pub sim: SimConfig,
    /// Worker threads; `0` means one per available core, capped at the
    /// number of predictors.
    pub jobs: usize,
}

/// One predictor's outcome within a sweep, in leaderboard order.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// Leaderboard position, starting at 1 (best MPKI).
    pub rank: usize,
    /// The predictor's display name (as passed to [`simulate_many`]).
    pub name: String,
    /// The full simulation result, identical to what `mbpsim run` with the
    /// same predictor and configuration would produce.
    pub result: SimResult,
}

/// A predictor that did not produce a result: it panicked mid-simulation or
/// hit a trace error. The sweep completes regardless; failures are reported
/// alongside the leaderboard of survivors.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// The failed predictor's display name.
    pub name: String,
    /// Failure class: `"panic"` or `"trace_error"`.
    pub kind: &'static str,
    /// One-line human-readable cause (panic payload or error display).
    pub message: String,
}

impl SweepFailure {
    fn to_json(&self) -> Value {
        json!({
            "predictor": self.name.as_str(),
            "kind": self.kind,
            "message": self.message.as_str(),
        })
    }
}

/// Renders a panic payload as a one-line message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "panic payload of unknown type"
    };
    // Panic payloads are arbitrary; keep the report one line.
    msg.lines().next().unwrap_or("").to_string()
}

/// The outcome of a sweep: every predictor's result, ranked by MPKI.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Trace description from the source.
    pub trace: Value,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Seconds spent decoding the trace (paid once, not per predictor).
    pub decode_time: f64,
    /// Wall-clock seconds for the whole parallel simulation phase.
    pub wall_time: f64,
    /// Sum of every predictor's individual simulation time; the ratio
    /// `cumulative_sim_time / wall_time` is the effective parallel speedup.
    pub cumulative_sim_time: f64,
    /// Per-predictor results, best MPKI first (ties broken by name).
    pub entries: Vec<SweepEntry>,
    /// Predictors that failed (panicked or errored), sorted by name. The
    /// leaderboard ranks only the survivors.
    pub failures: Vec<SweepFailure>,
}

impl SweepResult {
    /// The effective parallel speedup: cumulative per-predictor simulation
    /// time over the wall-clock time of the parallel phase.
    pub fn parallel_speedup(&self) -> f64 {
        if self.wall_time == 0.0 {
            0.0
        } else {
            self.cumulative_sim_time / self.wall_time
        }
    }

    /// Renders the sweep as a JSON leaderboard document.
    ///
    /// The `leaderboard` array is ranked by MPKI ascending and carries each
    /// predictor's headline metrics plus its `execution_statistics()`
    /// report; `results` holds the corresponding full Listing-1 documents
    /// in the same order (including `metrics.timeseries` and
    /// `introspection` when the sweep configuration collected them).
    pub fn to_json(&self) -> Value {
        json!({
            "metadata": {
                "simulator": "MBPlib sweep simulator",
                "version": crate::SIMULATOR_VERSION,
                "trace": self.trace.clone(),
                "num_predictors": self.entries.len() + self.failures.len(),
                "num_failures": self.failures.len(),
                "jobs": self.jobs,
                "decode_time": self.decode_time,
                "wall_time": self.wall_time,
                "cumulative_simulation_time": self.cumulative_sim_time,
                "parallel_speedup": self.parallel_speedup(),
            },
            "leaderboard": self.entries.iter().map(|e| json!({
                "rank": e.rank,
                "predictor": e.name.as_str(),
                "mpki": e.result.metrics.mpki,
                "accuracy": e.result.metrics.accuracy,
                "mispredictions": e.result.metrics.mispredictions,
                "simulation_time": e.result.metrics.simulation_time,
                "predictor_statistics": e.result.predictor_statistics.clone(),
            })).collect::<Vec<_>>(),
            "failures": self.failures.iter().map(SweepFailure::to_json)
                .collect::<Vec<_>>(),
            "results": self.entries.iter().map(|e| e.result.to_json())
                .collect::<Vec<_>>(),
        })
    }
}

/// Simulates every named predictor over `trace`, decoding the trace exactly
/// once and running the predictors on a pool of `config.jobs` workers.
///
/// Each predictor is simulated independently with `config.sim`, so every
/// entry's [`SimResult`] — metrics, most-failed report, warm-up and
/// instruction-cap behaviour — is identical to a standalone
/// [`simulate`] run (`mbpsim run`) of that predictor over the same trace.
/// Workers pull predictors from a shared queue, so N predictors on C cores
/// keep all cores busy until the queue drains.
///
/// # Errors
///
/// Propagates trace decoding errors from the single decode pass. Per-
/// predictor failures — a panic inside `predict`/`train`/`track`, or a
/// trace error seen by one worker — do **not** abort the sweep: each worker
/// runs under [`catch_unwind`], the failed predictor is recorded in
/// [`SweepResult::failures`], and the survivors are ranked as usual.
pub fn simulate_many<S>(
    trace: &mut S,
    predictors: Vec<(String, Box<dyn Predictor + Send>)>,
    config: &SweepConfig,
) -> Result<SweepResult, TraceError>
where
    S: TraceSource + ?Sized,
{
    // Phase 1: decode once into shared memory. The pre-size comes from
    // `record_count_hint` — derived from data the source actually holds —
    // never from a header-declared count an attacker controls.
    let decode_start = Instant::now();
    let decode_event = mbp_stats::events::span(mbp_stats::events::EventName::SweepDecode);
    let mut records: Vec<BranchRecord> =
        Vec::with_capacity(trace.record_count_hint().unwrap_or(0) as usize);
    let mut batch = mbp_trace::BranchBatch::new();
    while trace.fill_batch(&mut batch)? > 0 {
        batch.append_records_to(&mut records);
        mbp_stats::events::batch_tick();
    }
    decode_event.finish();
    let decode_time = decode_start.elapsed().as_secs_f64();
    let description = trace.description();

    let n = predictors.len();
    let jobs = effective_jobs(config.jobs, n);
    let names: Vec<String> = predictors.iter().map(|(name, _)| name.clone()).collect();

    // Phase 2: fan out. Workers claim predictor indices from an atomic
    // queue; each slot hands its predictor to exactly one worker and
    // receives that worker's result.
    let work: Vec<WorkSlot> = predictors
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let done: Vec<DoneSlot> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let wall_start = Instant::now();
    let stats = &mbp_stats::pipeline().sweep;
    stats.workers.add(jobs as u64);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let Some((name, mut predictor)) = work[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                else {
                    continue; // unreachable: each index is claimed once
                };
                // Busy time spans claim to report, once per predictor, so
                // worker accounting adds nothing to the simulation loop.
                let busy = stats.worker_busy.span();
                let busy_event = mbp_stats::events::span_with_arg(
                    mbp_stats::events::EventName::SweepWorker,
                    i as u64,
                );
                let claimed = Instant::now();
                stats.predictors.inc();
                // Fault isolation: a predictor that panics takes down this
                // one simulation, not the sweep. The predictor and source
                // are owned by the closure, so no shared state is observed
                // after an unwind.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let mut source = SliceSource::new(&records);
                    simulate(&mut source, &mut *predictor, &config.sim)
                }));
                let outcome = match outcome {
                    Ok(Ok(result)) => Ok(result),
                    Ok(Err(e)) => {
                        stats.trace_errors.inc();
                        mbp_stats::events::instant(
                            mbp_stats::events::EventName::SweepTraceError,
                            i as u64,
                        );
                        Err(SweepFailure {
                            name,
                            kind: "trace_error",
                            message: e.to_string(),
                        })
                    }
                    Err(payload) => {
                        stats.faults.inc();
                        mbp_stats::events::instant(
                            mbp_stats::events::EventName::SweepFault,
                            i as u64,
                        );
                        Err(SweepFailure {
                            name,
                            kind: "panic",
                            message: panic_message(payload.as_ref()),
                        })
                    }
                };
                let elapsed_us = u64::try_from(claimed.elapsed().as_micros()).unwrap_or(u64::MAX);
                stats.predictor_us.record(elapsed_us);
                mbp_stats::events::instant(
                    mbp_stats::events::EventName::SweepPredictorDone,
                    elapsed_us,
                );
                busy_event.finish();
                busy.finish();
                *done[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });
    let wall_time = wall_start.elapsed().as_secs_f64();

    let mut entries = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (i, slot) in done.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .unwrap_or_else(|| {
                // A worker died without reporting (it cannot panic between
                // claiming and writing, but fail soft rather than crash).
                Err(SweepFailure {
                    name: names[i].clone(),
                    kind: "panic",
                    message: "worker finished without reporting a result".to_string(),
                })
            });
        match outcome {
            Ok(mut result) => {
                // Each worker simulated an anonymous in-memory slice;
                // attribute the result to the real trace, as a standalone
                // run would.
                result.metadata.trace = description.clone();
                entries.push(SweepEntry {
                    rank: 0,
                    name: names[i].clone(),
                    result,
                });
            }
            Err(failure) => failures.push(failure),
        }
    }

    entries.sort_by(|a, b| {
        // NaN MPKI (a predictor returning garbage) sorts last instead of
        // panicking the leaderboard.
        a.result
            .metrics
            .mpki
            .partial_cmp(&b.result.metrics.mpki)
            .unwrap_or_else(|| {
                a.result
                    .metrics
                    .mpki
                    .is_nan()
                    .cmp(&b.result.metrics.mpki.is_nan())
            })
            .then_with(|| a.name.cmp(&b.name))
    });
    failures.sort_by(|a, b| a.name.cmp(&b.name));
    let cumulative_sim_time = entries
        .iter()
        .map(|e| e.result.metrics.simulation_time)
        .sum();
    for (i, e) in entries.iter_mut().enumerate() {
        e.rank = i + 1;
    }

    Ok(SweepResult {
        trace: description,
        jobs,
        decode_time,
        wall_time,
        cumulative_sim_time,
        entries,
        failures,
    })
}

/// Resolves a `--jobs` request against the machine and the work available.
fn effective_jobs(requested: usize, predictors: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    };
    jobs.clamp(1, predictors.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Fixed(bool);

    impl Predictor for Fixed {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "fixed", "dir": self.0})
        }
    }

    /// Panics on the `n`-th prediction — a stand-in for a buggy predictor
    /// under development, the case sweep fault-isolation exists for.
    struct PanicAfter(u64);

    impl Predictor for PanicAfter {
        fn predict(&mut self, _ip: u64) -> bool {
            if self.0 == 0 {
                panic!("intentional fault for testing");
            }
            self.0 -= 1;
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "panic-after"})
        }
    }

    fn biased_records(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(0x10, 0, Opcode::conditional_direct(), i % 4 != 0),
                    3,
                )
            })
            .collect()
    }

    fn fixed_pair() -> Vec<(String, Box<dyn Predictor + Send>)> {
        vec![
            (
                "never".to_string(),
                Box::new(Fixed(false)) as Box<dyn Predictor + Send>,
            ),
            (
                "always".to_string(),
                Box::new(Fixed(true)) as Box<dyn Predictor + Send>,
            ),
        ]
    }

    #[test]
    fn ranks_by_mpki() {
        // 3 of 4 branches taken: always-taken beats never-taken.
        let records = biased_records(100);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].name, "always");
        assert_eq!(r.entries[0].rank, 1);
        assert_eq!(r.entries[1].name, "never");
        assert_eq!(r.entries[1].rank, 2);
        assert!(r.entries[0].result.metrics.mpki < r.entries[1].result.metrics.mpki);
    }

    #[test]
    fn results_match_standalone_simulate() {
        let records = biased_records(64);
        let cfg = SweepConfig::default();
        let mut src = SliceSource::new(&records);
        let sweep = simulate_many(&mut src, fixed_pair(), &cfg).unwrap();

        let mut standalone = Fixed(true);
        let direct = simulate(&mut SliceSource::new(&records), &mut standalone, &cfg.sim).unwrap();
        let entry = sweep.entries.iter().find(|e| e.name == "always").unwrap();
        assert_eq!(
            entry.result.metrics.mispredictions,
            direct.metrics.mispredictions
        );
        assert_eq!(entry.result.metrics.mpki, direct.metrics.mpki);
        assert_eq!(
            entry.result.metadata.num_conditional_branches,
            direct.metadata.num_conditional_branches
        );
    }

    #[test]
    fn respects_jobs_and_queues_excess_work() {
        let records = biased_records(32);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..7)
            .map(|i| {
                (
                    format!("p{i}"),
                    Box::new(Fixed(i % 2 == 0)) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let cfg = SweepConfig {
            jobs: 2,
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert_eq!(r.jobs, 2);
        assert_eq!(r.entries.len(), 7, "all queued predictors complete");
    }

    #[test]
    fn jobs_zero_uses_available_parallelism_capped_by_work() {
        let records = biased_records(8);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        assert!(r.jobs >= 1 && r.jobs <= 2, "two predictors cap jobs at 2");
    }

    #[test]
    fn empty_sweep_is_ok() {
        let records = biased_records(4);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, Vec::new(), &SweepConfig::default()).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.to_json()["leaderboard"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn json_leaderboard_is_ranked_and_parses_back() {
        let records = biased_records(40);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        let doc = r.to_json();
        assert_eq!(doc["leaderboard"][0]["rank"], Value::from(1));
        assert_eq!(doc["leaderboard"][0]["predictor"], Value::from("always"));
        assert!(
            doc["leaderboard"][0]["predictor_statistics"]
                .as_object()
                .is_some(),
            "leaderboard entries carry execution statistics"
        );
        assert_eq!(doc["metadata"]["num_predictors"], Value::from(2));
        assert_eq!(
            doc["results"][0]["metadata"]["simulator"].as_str(),
            Some(crate::SIMULATOR_NAME),
        );
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn panicking_predictor_is_isolated_and_reported() {
        let records = biased_records(64);
        let mut predictors = fixed_pair();
        predictors.push((
            "buggy".to_string(),
            Box::new(PanicAfter(10)) as Box<dyn Predictor + Send>,
        ));
        let mut src = SliceSource::new(&records);
        let cfg = SweepConfig {
            jobs: 2,
            ..SweepConfig::default()
        };
        let r = simulate_many(&mut src, predictors, &cfg).expect("sweep survives the panic");

        // Survivors are ranked exactly as a panic-free sweep would rank them.
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].name, "always");
        assert_eq!(r.entries[0].rank, 1);
        assert_eq!(r.entries[1].name, "never");

        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].name, "buggy");
        assert_eq!(r.failures[0].kind, "panic");
        assert!(
            r.failures[0].message.contains("intentional fault"),
            "panic payload surfaces: {:?}",
            r.failures[0].message
        );
    }

    #[test]
    fn failures_appear_in_sweep_json() {
        let records = biased_records(16);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("ok".to_string(), Box::new(Fixed(true))),
            ("bad".to_string(), Box::new(PanicAfter(0))),
        ];
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &SweepConfig::default()).unwrap();
        let doc = r.to_json();
        assert_eq!(doc["metadata"]["num_predictors"], Value::from(2));
        assert_eq!(doc["metadata"]["num_failures"], Value::from(1));
        assert_eq!(doc["failures"][0]["predictor"], Value::from("bad"));
        assert_eq!(doc["failures"][0]["kind"], Value::from("panic"));
        assert_eq!(doc["leaderboard"].as_array().unwrap().len(), 1);
        // The whole document still parses back (valid JSON with failures).
        let reparsed: Value = doc.to_pretty_string().parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn all_predictors_failing_still_completes() {
        let records = biased_records(8);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..4)
            .map(|i| {
                (
                    format!("bad{i}"),
                    Box::new(PanicAfter(i)) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &SweepConfig::default()).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.failures.len(), 4);
        let names: Vec<&str> = r.failures.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["bad0", "bad1", "bad2", "bad3"], "sorted by name");
    }

    #[test]
    fn trace_description_propagates_to_entries() {
        let records = biased_records(4);
        let mut src = SliceSource::named(&records, "traces/T1.sbbt.mzst");
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        for e in &r.entries {
            assert_eq!(
                e.result.metadata.trace.as_str(),
                Some("traces/T1.sbbt.mzst")
            );
        }
    }
}
