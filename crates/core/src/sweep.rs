//! The multi-predictor sweep engine: decode a trace once, fan N predictors
//! across a worker pool — and keep the sweep alive through crashes, stalls,
//! kills, and memory pressure.
//!
//! The paper's prototyping workflow (§VI-A) runs the same trace through
//! many predictor configurations. Doing that with N separate `mbpsim run`
//! invocations decodes — and possibly decompresses — the trace N times;
//! [`simulate_many`] decodes it exactly once into shared memory and then
//! simulates every predictor against the same record block, in parallel,
//! using only `std` threads.
//!
//! On top of the worker pool sits a resilience layer (all opt-in via
//! [`SweepConfig`]):
//!
//! * **Checkpoint/resume** — every settled predictor is appended to a
//!   JSONL checkpoint file (see [`crate::checkpoint`]) before it is
//!   reported; a resumed sweep skips everything the checkpoint already
//!   settles and reconstructs the identical final leaderboard.
//! * **Watchdog deadlines** — a monitor thread tracks per-worker progress
//!   epochs; a predictor that blows its deadline while stalled is
//!   cancelled cooperatively, and if it does not respond within a grace
//!   period its worker is abandoned and replaced, so one stuck config
//!   costs one failure line instead of a hung sweep. A predictor still
//!   making progress at its deadline earns one bounded extension.
//! * **Memory-budget admission** — [`Predictor::size_hint`] gates how many
//!   predictors may be in flight at once under `--mem-budget`.
//! * **Graceful shutdown** — a shutdown probe flips the pool into drain
//!   mode: no new work starts, in-flight predictors finish and are
//!   checkpointed, unstarted ones are reported as `not_run`, and the
//!   result is marked `interrupted`.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, TryLockError};
use std::time::{Duration, Instant};

use mbp_json::{json, Value};
use mbp_trace::{BranchBatch, BranchRecord, TraceError};

use crate::checkpoint::{load_checkpoint, CheckpointWriter};
use crate::simpoint::{simulate_sampled, PhasesDoc};
use crate::simulator::{simulate, SimConfig, SimResult};
use crate::status::{PredictorState, StatusPredictor, SweepStatusBoard};
use crate::{Predictor, SliceSource, TraceSource};

/// A named predictor awaiting simulation, claimed by exactly one worker.
type WorkSlot = Mutex<Option<(String, Box<dyn Predictor + Send>)>>;
/// A finished predictor's outcome, written exactly once — by its worker,
/// or by the watchdog if the worker was abandoned. A worker failure is
/// data, not a crash of the sweep.
type DoneSlot = Mutex<Option<Result<SimResult, SweepFailure>>>;

/// Configuration of a sweep run.
#[derive(Clone, Debug, Default)]
pub struct SweepConfig {
    /// Per-predictor simulation parameters (warm-up, instruction cap, …).
    pub sim: SimConfig,
    /// Worker threads; `0` means one per available core, capped at the
    /// number of predictors.
    pub jobs: usize,
    /// Per-predictor wall-clock budget. A predictor that exceeds it while
    /// stalled is cancelled (one extension is granted if it is still
    /// making progress); `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Total bytes of predictor state allowed in flight at once, admitted
    /// against [`Predictor::size_hint`]; `None` admits everything
    /// immediately.
    pub mem_budget: Option<u64>,
    /// Checkpoint file: every settled predictor is appended (and fsync'd)
    /// here before it is reported.
    pub checkpoint: Option<PathBuf>,
    /// With [`SweepConfig::checkpoint`], load the file first and skip every
    /// predictor it already settles.
    pub resume: bool,
    /// Polled by the monitor; returning `true` drains the sweep: in-flight
    /// predictors finish, unstarted ones become `not_run`, and the result
    /// is marked interrupted. Wired to a SIGINT/SIGTERM flag by `mbpsim`.
    pub shutdown: Option<fn() -> bool>,
    /// Phase-sampling plan: when set, every predictor runs through
    /// [`simulate_sampled`](crate::simulate_sampled) over the plan's
    /// weighted representative slices instead of the whole trace.
    /// Checkpoint records carry the plan's `doc_hash`, and `--resume`
    /// refuses a checkpoint written under a different plan (or none).
    pub phases: Option<PhasesDoc>,
    /// Live status board (slots keyed by predictor name) that workers and
    /// the watchdog publish lifecycle transitions and progress counters
    /// into — the data source of the `/snapshot` telemetry endpoint. `None`
    /// (the default) skips all publishing, including the per-batch
    /// counting wrapper, so an unobserved sweep pays nothing.
    pub status: Option<Arc<SweepStatusBoard>>,
}

/// One predictor's outcome within a sweep, in leaderboard order.
#[derive(Clone, Debug)]
pub struct SweepEntry {
    /// Leaderboard position, starting at 1 (best MPKI).
    pub rank: usize,
    /// The predictor's display name (as passed to [`simulate_many`]).
    pub name: String,
    /// The full simulation result, identical to what `mbpsim run` with the
    /// same predictor and configuration would produce.
    pub result: SimResult,
}

/// Why a predictor failed to produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The predictor panicked mid-simulation.
    Panic,
    /// The worker hit a trace error.
    TraceError,
    /// The deadline watchdog cancelled (or abandoned) the simulation.
    Deadline,
    /// The predictor's size hint alone exceeds the sweep's memory budget.
    MemBudget,
}

impl FailureKind {
    /// Stable string form used in sweep JSON and checkpoint records.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::TraceError => "trace_error",
            FailureKind::Deadline => "deadline",
            FailureKind::MemBudget => "mem_budget",
        }
    }

    /// Inverse of [`as_str`](Self::as_str), for checkpoint loading.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(FailureKind::Panic),
            "trace_error" => Some(FailureKind::TraceError),
            "deadline" => Some(FailureKind::Deadline),
            "mem_budget" => Some(FailureKind::MemBudget),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A predictor that did not produce a result. The sweep completes
/// regardless; failures are reported alongside the leaderboard of
/// survivors.
#[derive(Clone, Debug)]
pub struct SweepFailure {
    /// The failed predictor's display name.
    pub name: String,
    /// Failure class.
    pub kind: FailureKind,
    /// One-line human-readable cause (panic payload or error display).
    pub message: String,
}

impl SweepFailure {
    fn to_json(&self) -> Value {
        json!({
            "predictor": self.name.as_str(),
            "kind": self.kind.as_str(),
            "message": self.message.as_str(),
        })
    }
}

/// Renders a panic payload as a one-line message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "panic payload of unknown type"
    };
    // Panic payloads are arbitrary; keep the report one line.
    msg.lines().next().unwrap_or("").to_string()
}

/// The outcome of a sweep: every predictor's result, ranked by MPKI.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Trace description from the source.
    pub trace: Value,
    /// The `--jobs` request resolved against the full predictor list (kept
    /// for report stability; see [`SweepResult::workers_used`]).
    pub jobs: usize,
    /// Worker threads actually spawned this run — clamped against the
    /// predictors that remained after resume skipping (0 when the
    /// checkpoint already settled everything).
    pub workers_used: usize,
    /// Seconds spent decoding the trace (paid once, not per predictor;
    /// 0 when resume skipped the decode entirely).
    pub decode_time: f64,
    /// Wall-clock seconds for the whole parallel simulation phase.
    pub wall_time: f64,
    /// Sum of every predictor's individual simulation time; the ratio
    /// `cumulative_sim_time / wall_time` is the effective parallel speedup.
    pub cumulative_sim_time: f64,
    /// Per-predictor results, best MPKI first (ties broken by name).
    pub entries: Vec<SweepEntry>,
    /// Predictors that failed (panicked, errored, timed out, or were
    /// rejected by the memory budget), sorted by name. The leaderboard
    /// ranks only the survivors.
    pub failures: Vec<SweepFailure>,
    /// Predictors that never started because a shutdown drained the sweep,
    /// sorted by name. Empty for uninterrupted runs.
    pub not_run: Vec<String>,
    /// Whether a shutdown probe drained this sweep before it finished.
    pub interrupted: bool,
    /// Sampling-plan summary (rendered under `metadata.sampling`); present
    /// only for phase-sampled sweeps.
    pub sampling: Option<Value>,
}

impl SweepResult {
    /// The effective parallel speedup: cumulative per-predictor simulation
    /// time over the wall-clock time of the parallel phase.
    pub fn parallel_speedup(&self) -> f64 {
        if self.wall_time == 0.0 {
            0.0
        } else {
            self.cumulative_sim_time / self.wall_time
        }
    }

    /// Renders the sweep as a JSON leaderboard document.
    ///
    /// The `leaderboard` array is ranked by MPKI ascending and carries each
    /// predictor's headline metrics plus its `execution_statistics()`
    /// report; `results` holds the corresponding full Listing-1 documents
    /// in the same order (including `metrics.timeseries` and
    /// `introspection` when the sweep configuration collected them).
    /// `not_run` lists predictors a shutdown drain left unstarted.
    pub fn to_json(&self) -> Value {
        let mut doc = json!({
            "metadata": {
                "simulator": "MBPlib sweep simulator",
                "version": crate::SIMULATOR_VERSION,
                "trace": self.trace.clone(),
                "num_predictors": self.entries.len() + self.failures.len()
                    + self.not_run.len(),
                "num_failures": self.failures.len(),
                "jobs": self.jobs,
                "workers_used": self.workers_used,
                "decode_time": self.decode_time,
                "wall_time": self.wall_time,
                "cumulative_simulation_time": self.cumulative_sim_time,
                "parallel_speedup": self.parallel_speedup(),
                "interrupted": self.interrupted,
            },
            "leaderboard": self.entries.iter().map(|e| json!({
                "rank": e.rank,
                "predictor": e.name.as_str(),
                "mpki": e.result.metrics.mpki,
                "accuracy": e.result.metrics.accuracy,
                "mispredictions": e.result.metrics.mispredictions,
                "simulation_time": e.result.metrics.simulation_time,
                "predictor_statistics": e.result.predictor_statistics.clone(),
            })).collect::<Vec<_>>(),
            "failures": self.failures.iter().map(SweepFailure::to_json)
                .collect::<Vec<_>>(),
            "not_run": self.not_run.iter().map(|n| Value::from(n.as_str()))
                .collect::<Vec<_>>(),
            "results": self.entries.iter().map(|e| e.result.to_json())
                .collect::<Vec<_>>(),
        });
        if let Some(sampling) = &self.sampling {
            if let Some(meta) = doc
                .as_object_mut()
                .and_then(|d| d.get_mut("metadata"))
                .and_then(Value::as_object_mut)
            {
                meta.insert("sampling", sampling.clone());
            }
        }
        doc
    }
}

/// Per-job coordination state shared between its worker and the monitor.
struct JobState {
    /// Nanoseconds (since pool start, min 1) when simulation began; 0 while
    /// the job is unclaimed or waiting for admission. The deadline clock
    /// starts here, so admission waits don't count against the budget.
    started_ns: AtomicU64,
    /// Progress heartbeat, bumped by the worker once per record batch.
    epoch: AtomicU64,
    /// Set by the watchdog; the worker's trace source observes it at the
    /// next batch boundary and unwinds with [`TraceError::Cancelled`].
    cancel: AtomicBool,
    /// The admission size hint, kept so the watchdog can return an
    /// abandoned worker's reservation to the ledger.
    mem_hint: AtomicU64,
    /// Whether the reservation was already returned (by the worker's guard
    /// or by the watchdog) — whoever flips it first does the accounting.
    mem_released: AtomicBool,
    /// Set when the watchdog gives up on the worker; its late result (if
    /// any) is discarded and its memory guard becomes a no-op.
    abandoned: AtomicBool,
}

impl JobState {
    const fn new() -> Self {
        Self {
            started_ns: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            cancel: AtomicBool::new(false),
            mem_hint: AtomicU64::new(0),
            mem_released: AtomicBool::new(false),
            abandoned: AtomicBool::new(false),
        }
    }
}

/// Everything the workers and the monitor share.
struct SweepShared {
    records: Vec<BranchRecord>,
    description: Value,
    sim: SimConfig,
    deadline: Option<Duration>,
    names: Vec<String>,
    queue: Mutex<VecDeque<usize>>,
    work: Vec<WorkSlot>,
    done: Vec<DoneSlot>,
    jobs: Vec<JobState>,
    /// Shutdown drain: workers stop claiming, admission waits bail out.
    draining: AtomicBool,
    /// Indices a drain left unstarted (dumped queue + admission bail-outs).
    not_run: Mutex<Vec<usize>>,
    mem_budget: Option<u64>,
    /// Bytes of size-hint currently admitted.
    mem_used: Mutex<u64>,
    mem_cv: Condvar,
    start: Instant,
    writer: Mutex<Option<CheckpointWriter>>,
    /// First checkpoint-append failure; the sweep finishes (results in
    /// memory are still good) and the error is surfaced at the end.
    writer_error: Mutex<Option<io::Error>>,
    /// Sampling plan: workers run the sampled executor instead of the full
    /// trace when set. Note the sampled path does not bump progress epochs
    /// (slices are short); a wedged predictor is still bounded by the
    /// watchdog's abandon-after-grace path.
    phases: Option<PhasesDoc>,
    /// Live status board for the telemetry plane; `None` publishes nothing.
    status: Option<Arc<SweepStatusBoard>>,
}

/// Publishes a lifecycle transition for `name` when a board is attached.
fn publish_state(status: &Option<Arc<SweepStatusBoard>>, name: &str, state: PredictorState) {
    if let Some(board) = status {
        if let Some(i) = board.index_of(name) {
            board.set_state(i, state);
        }
    }
}

fn ns_since(start: &Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Trace-source shim between the shared record block and one worker: bumps
/// the job's progress epoch every batch and turns the watchdog's cancel
/// flag into a clean [`TraceError::Cancelled`] unwind at the next batch
/// boundary.
struct CancelSource<'a> {
    inner: SliceSource<'a>,
    job: &'a JobState,
}

impl CancelSource<'_> {
    fn check(&self) -> Result<(), TraceError> {
        if self.job.cancel.load(Ordering::Relaxed) {
            return Err(TraceError::Cancelled { reason: "deadline" });
        }
        self.job.epoch.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl TraceSource for CancelSource<'_> {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        self.check()?;
        self.inner.next_record()
    }

    fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        self.check()?;
        self.inner.fill_batch(out)
    }

    fn description(&self) -> Value {
        self.inner.description()
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        self.inner.instruction_count_hint()
    }

    fn record_count_hint(&self) -> Option<u64> {
        self.inner.record_count_hint()
    }
}

/// RAII return of an admitted size hint to the ledger. `mem_released`
/// arbitrates with the watchdog's abandon path: exactly one of them does
/// the subtraction.
struct MemGuard<'a> {
    shared: &'a SweepShared,
    i: usize,
    amount: u64,
}

impl Drop for MemGuard<'_> {
    fn drop(&mut self) {
        let mut used = self
            .shared
            .mem_used
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !self.shared.jobs[self.i]
            .mem_released
            .swap(true, Ordering::Relaxed)
        {
            *used = used.saturating_sub(self.amount);
            self.shared.mem_cv.notify_all();
        }
    }
}

/// Simulates every named predictor over `trace`, decoding the trace exactly
/// once and running the predictors on a pool of workers sized by
/// `config.jobs` (clamped to the work remaining after resume skipping).
///
/// Each predictor is simulated independently with `config.sim`, so every
/// entry's [`SimResult`] — metrics, most-failed report, warm-up and
/// instruction-cap behaviour — is identical to a standalone
/// [`simulate`] run (`mbpsim run`) of that predictor over the same trace.
/// Workers pull predictors from a shared queue, so N predictors on C cores
/// keep all cores busy until the queue drains. The resilience features —
/// checkpointing, resume, the deadline watchdog, memory-budget admission
/// and shutdown draining — are enabled per [`SweepConfig`] field and cost
/// nothing when off.
///
/// # Errors
///
/// Propagates trace decoding errors from the single decode pass and I/O
/// errors touching the checkpoint file. Per-predictor failures — a panic
/// inside `predict`/`train`/`track`, a trace error, a blown deadline, or a
/// memory-budget rejection — do **not** abort the sweep: each worker runs
/// under [`catch_unwind`], the failed predictor is recorded in
/// [`SweepResult::failures`], and the survivors are ranked as usual.
pub fn simulate_many<S>(
    trace: &mut S,
    predictors: Vec<(String, Box<dyn Predictor + Send>)>,
    config: &SweepConfig,
) -> Result<SweepResult, TraceError>
where
    S: TraceSource + ?Sized,
{
    let n_total = predictors.len();
    let jobs_legacy = effective_jobs(config.jobs, n_total);
    let stats = &mbp_stats::pipeline().sweep;

    // Resume: anything the checkpoint already settles is lifted straight
    // into the final report; only the remainder is simulated.
    let mut resumed_entries: Vec<(String, SimResult)> = Vec::new();
    let mut resumed_failures: Vec<SweepFailure> = Vec::new();
    let mut to_run: Vec<(String, Box<dyn Predictor + Send>)> = Vec::new();
    let plan_hash = config.phases.as_ref().map(|p| p.doc_hash());
    match (&config.checkpoint, config.resume) {
        (Some(path), true) => {
            let load = load_checkpoint(path)?;
            // A checkpoint binds its records to the sampling plan (or the
            // absence of one) they were produced under; splicing a full
            // sweep's results into a sampled leaderboard — or vice versa —
            // would silently mix incomparable metrics.
            if load.has_records() && load.sampling != plan_hash {
                let msg = match (&load.sampling, &plan_hash) {
                    (None, Some(hash)) => format!(
                        "checkpoint {} was written by a full sweep; refusing to \
                         resume it with --phases (plan {hash})",
                        path.display()
                    ),
                    (Some(had), None) => format!(
                        "checkpoint {} was written by a sampled sweep (plan \
                         {had}); refusing to resume it without --phases",
                        path.display()
                    ),
                    (Some(had), Some(hash)) => format!(
                        "checkpoint {} was written under sampling plan {had}, \
                         but --phases names plan {hash}",
                        path.display()
                    ),
                    (None, None) => unreachable!("equal plans already matched"),
                };
                return Err(TraceError::Io(io::Error::new(
                    io::ErrorKind::InvalidData,
                    msg,
                )));
            }
            for (name, p) in predictors {
                if let Some((_, r)) = load.completed.iter().find(|(n, _)| *n == name) {
                    resumed_entries.push((name, r.clone()));
                } else if let Some(f) = load.failures.iter().find(|f| f.name == name) {
                    resumed_failures.push(f.clone());
                } else {
                    to_run.push((name, p));
                }
            }
            stats
                .resume_skips
                .add((resumed_entries.len() + resumed_failures.len()) as u64);
            // Checkpointed outcomes are final; show them as such from the
            // first scrape instead of leaving their slots queued forever.
            for (name, result) in &resumed_entries {
                publish_state(&config.status, name, PredictorState::Settled);
                if let (Some(board), Some(i)) = (
                    &config.status,
                    config.status.as_ref().and_then(|b| b.index_of(name)),
                ) {
                    board.set_totals(
                        i,
                        result.metadata.simulation_instr,
                        result.metrics.mispredictions,
                    );
                }
            }
            for f in &resumed_failures {
                publish_state(&config.status, &f.name, PredictorState::Failed);
            }
        }
        _ => to_run = predictors,
    }
    let m = to_run.len();

    // Phase 1: decode once into shared memory — skipped entirely when the
    // checkpoint already settled every predictor. The pre-size comes from
    // `record_count_hint` — derived from data the source actually holds —
    // never from a header-declared count an attacker controls.
    let mut records: Vec<BranchRecord> = Vec::new();
    let mut decode_time = 0.0;
    if m > 0 {
        let decode_start = Instant::now();
        let decode_event = mbp_stats::events::span(mbp_stats::events::EventName::SweepDecode);
        records.reserve(trace.record_count_hint().unwrap_or(0) as usize);
        let mut batch = BranchBatch::new();
        while trace.fill_batch(&mut batch)? > 0 {
            batch.append_records_to(&mut records);
            mbp_stats::events::batch_tick();
        }
        decode_event.finish();
        decode_time = decode_start.elapsed().as_secs_f64();
    }
    let description = trace.description();

    // The sampling plan must describe exactly this trace; a plan extracted
    // from a different trace (or a stale one) would sample nonsense slices.
    if m > 0 {
        if let Some(phases) = &config.phases {
            let instruction_count: u64 = records.iter().map(|r| r.instructions()).sum();
            phases
                .validate(records.len() as u64, instruction_count)
                .map_err(|msg| TraceError::Io(io::Error::new(io::ErrorKind::InvalidData, msg)))?;
        }
    }

    let mut writer = match &config.checkpoint {
        Some(path) if config.resume && path.exists() => Some(CheckpointWriter::append(path)?),
        Some(path) => Some(CheckpointWriter::create(path)?),
        None => None,
    };
    if let Some(w) = writer.as_mut() {
        w.set_sampling(plan_hash.clone());
    }

    // Phase 2: fan out. Workers claim predictor indices from a shared
    // queue; each slot hands its predictor to exactly one worker and
    // receives that worker's (or, after an abandon, the watchdog's)
    // outcome.
    let workers_used = if m == 0 {
        0
    } else {
        effective_jobs(config.jobs, m)
    };
    let names: Vec<String> = to_run.iter().map(|(name, _)| name.clone()).collect();
    let shared = Arc::new(SweepShared {
        records,
        description: description.clone(),
        sim: config.sim.clone(),
        deadline: config.deadline,
        names,
        queue: Mutex::new((0..m).collect()),
        work: to_run.into_iter().map(|p| Mutex::new(Some(p))).collect(),
        done: (0..m).map(|_| Mutex::new(None)).collect(),
        jobs: (0..m).map(|_| JobState::new()).collect(),
        draining: AtomicBool::new(false),
        not_run: Mutex::new(Vec::new()),
        mem_budget: config.mem_budget,
        mem_used: Mutex::new(0),
        mem_cv: Condvar::new(),
        start: Instant::now(),
        writer: Mutex::new(writer),
        writer_error: Mutex::new(None),
        phases: config.phases.clone(),
        status: config.status.clone(),
    });

    let wall_start = Instant::now();
    stats.workers.add(workers_used as u64);
    for _ in 0..workers_used {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(&s));
    }
    monitor(&shared, config);
    let wall_time = wall_start.elapsed().as_secs_f64();

    // Collection. The monitor only returns once every job is settled —
    // reported (by its worker or the watchdog) or parked as not-run by a
    // drain — so clones here never race a live report: `report` writes a
    // slot at most once.
    let interrupted = shared.draining.load(Ordering::Relaxed);
    let not_run_idx = shared
        .not_run
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut entries = Vec::with_capacity(m + resumed_entries.len());
    let mut failures = resumed_failures;
    let mut not_run: Vec<String> = Vec::new();
    for i in 0..m {
        if not_run_idx.contains(&i) {
            not_run.push(shared.names[i].clone());
            continue;
        }
        let outcome = shared.done[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        match outcome {
            Some(Ok(result)) => entries.push(SweepEntry {
                rank: 0,
                name: shared.names[i].clone(),
                result,
            }),
            Some(Err(failure)) => failures.push(failure),
            // Unreachable: the monitor waits for every slot. Fail soft.
            None => failures.push(SweepFailure {
                name: shared.names[i].clone(),
                kind: FailureKind::Panic,
                message: "worker finished without reporting a result".to_string(),
            }),
        }
    }
    for (name, result) in resumed_entries {
        entries.push(SweepEntry {
            rank: 0,
            name,
            result,
        });
    }

    entries.sort_by(|a, b| {
        // NaN MPKI (a predictor returning garbage) sorts last instead of
        // panicking the leaderboard.
        a.result
            .metrics
            .mpki
            .partial_cmp(&b.result.metrics.mpki)
            .unwrap_or_else(|| {
                a.result
                    .metrics
                    .mpki
                    .is_nan()
                    .cmp(&b.result.metrics.mpki.is_nan())
            })
            .then_with(|| a.name.cmp(&b.name))
    });
    failures.sort_by(|a, b| a.name.cmp(&b.name));
    not_run.sort();
    let cumulative_sim_time = entries
        .iter()
        .map(|e| e.result.metrics.simulation_time)
        .sum();
    for (i, e) in entries.iter_mut().enumerate() {
        e.rank = i + 1;
    }

    if let Some(e) = shared
        .writer_error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(TraceError::Io(e));
    }

    // Summarize the sampling plan once at sweep level: what fraction was
    // simulated and the worst per-predictor error estimate. Derived only
    // from the plan and the entries, so resumed documents match originals.
    let sampling = config.phases.as_ref().map(|p| {
        let max_error = entries
            .iter()
            .filter_map(|e| e.result.sampling.as_ref())
            .filter_map(|s| s.get("error_estimate").and_then(Value::as_f64))
            .fold(0.0f64, f64::max);
        json!({
            "doc_hash": p.doc_hash(),
            "window_size": p.window_size,
            "clusters": p.clusters as u64,
            "num_windows": p.num_windows as u64,
            "simulated_fraction": p.planned_fraction(),
            "max_error_estimate": max_error,
        })
    });

    Ok(SweepResult {
        trace: description,
        jobs: jobs_legacy,
        workers_used,
        decode_time,
        wall_time,
        cumulative_sim_time,
        entries,
        failures,
        not_run,
        interrupted,
        sampling,
    })
}

/// One worker: claim an index, run the predictor, report, repeat — until
/// the queue is empty or a drain begins.
fn worker_loop(shared: &SweepShared) {
    loop {
        if shared.draining.load(Ordering::Relaxed) {
            break;
        }
        let claimed = shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        let Some(i) = claimed else { break };
        let Some((name, predictor)) = shared.work[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        else {
            continue; // unreachable: each index is claimed once
        };
        run_job(shared, i, name, predictor);
    }
}

/// Admission, simulation, classification and reporting of one predictor.
fn run_job(shared: &SweepShared, i: usize, name: String, predictor: Box<dyn Predictor + Send>) {
    let stats = &mbp_stats::pipeline().sweep;

    // Memory-budget admission. The deadline clock starts only after
    // admission, so time spent queued for memory is not "simulation".
    let _mem_guard: Option<MemGuard<'_>> = if let Some(budget) = shared.mem_budget {
        // A size hint is advisory; a panicking hint admits at zero cost
        // rather than taking down the job before it runs.
        let hint = catch_unwind(AssertUnwindSafe(|| predictor.size_hint())).unwrap_or(0);
        shared.jobs[i].mem_hint.store(hint, Ordering::Relaxed);
        if hint > budget {
            report(
                shared,
                i,
                Err(SweepFailure {
                    name,
                    kind: FailureKind::MemBudget,
                    message: format!(
                        "predictor size hint of {hint} bytes exceeds the \
                         memory budget of {budget} bytes"
                    ),
                }),
            );
            return;
        }
        let mut used = shared
            .mem_used
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut waited = false;
        loop {
            if shared.draining.load(Ordering::Relaxed) {
                // Drained while queued for memory: this job never started.
                drop(used);
                publish_state(&shared.status, &name, PredictorState::NotRun);
                shared
                    .not_run
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(i);
                return;
            }
            if *used + hint <= budget {
                *used += hint;
                break;
            }
            if !waited {
                waited = true;
                stats.admission_waits.inc();
                mbp_stats::events::instant(mbp_stats::events::EventName::AdmissionWait, i as u64);
            }
            used = shared
                .mem_cv
                .wait_timeout(used, Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        Some(MemGuard {
            shared,
            i,
            amount: hint,
        })
    } else {
        None
    };

    publish_state(&shared.status, &name, PredictorState::Admitted);

    // Busy time spans claim to report, once per predictor, so worker
    // accounting adds nothing to the simulation loop.
    let busy = stats.worker_busy.span();
    let busy_event =
        mbp_stats::events::span_with_arg(mbp_stats::events::EventName::SweepWorker, i as u64);
    let claimed = Instant::now();
    stats.predictors.inc();
    shared.jobs[i]
        .started_ns
        .store(ns_since(&shared.start).max(1), Ordering::Relaxed);
    publish_state(&shared.status, &name, PredictorState::Running);

    // With a board attached, interpose the counting wrapper so the slot's
    // progress counters move while the simulation runs. The wrapper
    // forwards the interface bit-identically, so results are unchanged.
    let mut predictor: Box<dyn Predictor + Send> = match shared
        .status
        .as_ref()
        .and_then(|b| b.index_of(&name).map(|j| (Arc::clone(b), j)))
    {
        Some((board, j)) => Box::new(StatusPredictor::new(predictor, board, j)),
        None => predictor,
    };

    // Fault isolation: a predictor that panics takes down this one
    // simulation, not the sweep. The predictor and source are owned by the
    // closure, so no shared state is observed after an unwind.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(phases) = &shared.phases {
            Ok(simulate_sampled(
                &shared.records,
                &mut *predictor,
                phases,
                &shared.sim,
            ))
        } else {
            let mut source = CancelSource {
                inner: SliceSource::new(&shared.records),
                job: &shared.jobs[i],
            };
            simulate(&mut source, &mut *predictor, &shared.sim)
        }
    }));
    let outcome = match outcome {
        Ok(Ok(mut result)) => {
            // Each worker simulated an anonymous in-memory slice; attribute
            // the result to the real trace, as a standalone run would — and
            // before checkpointing, so resumed results carry it too.
            result.metadata.trace = shared.description.clone();
            Ok(result)
        }
        Ok(Err(TraceError::Cancelled { .. })) => Err(SweepFailure {
            name,
            kind: FailureKind::Deadline,
            message: deadline_message(shared.deadline, "simulation cancelled"),
        }),
        Ok(Err(e)) => {
            stats.trace_errors.inc();
            mbp_stats::events::instant(mbp_stats::events::EventName::SweepTraceError, i as u64);
            Err(SweepFailure {
                name,
                kind: FailureKind::TraceError,
                message: e.to_string(),
            })
        }
        Err(payload) => {
            stats.faults.inc();
            mbp_stats::events::instant(mbp_stats::events::EventName::SweepFault, i as u64);
            Err(SweepFailure {
                name,
                kind: FailureKind::Panic,
                message: panic_message(payload.as_ref()),
            })
        }
    };
    let elapsed_us = u64::try_from(claimed.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.predictor_us.record(elapsed_us);
    mbp_stats::events::instant(mbp_stats::events::EventName::SweepPredictorDone, elapsed_us);
    busy_event.finish();
    busy.finish();
    report(shared, i, outcome);
}

/// Deterministic deadline-failure message (no wall-clock readings, so a
/// resumed report is byte-identical to the original).
fn deadline_message(deadline: Option<Duration>, what: &str) -> String {
    match deadline {
        Some(d) => format!("deadline of {:.3} s exceeded; {what}", d.as_secs_f64()),
        None => format!("cancelled; {what}"),
    }
}

/// Settles job `i` exactly once: checkpoint first (fsync'd while the slot
/// lock is held, so a record is durable before anyone can observe the job
/// as done), then publish. The loser of a worker/watchdog race sees a full
/// slot and does nothing.
fn report(shared: &SweepShared, i: usize, outcome: Result<SimResult, SweepFailure>) {
    let mut slot = shared.done[i]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if slot.is_some() {
        return;
    }
    if let Some(writer) = shared
        .writer
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_mut()
    {
        let appended = match &outcome {
            Ok(result) => writer.record_result(&shared.names[i], result),
            Err(failure) => writer.record_failure(failure),
        };
        if let Err(e) = appended {
            let mut err = shared
                .writer_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if err.is_none() {
                *err = Some(e);
            }
        }
    }
    if let Some(board) = &shared.status {
        if let Some(bi) = board.index_of(&shared.names[i]) {
            match &outcome {
                Ok(result) => {
                    board.set_totals(
                        bi,
                        result.metadata.simulation_instr,
                        result.metrics.mispredictions,
                    );
                    board.set_state(bi, PredictorState::Settled);
                }
                Err(_) => board.set_state(bi, PredictorState::Failed),
            }
        }
    }
    *slot = Some(outcome);
}

fn slot_settled(slot: &DoneSlot) -> bool {
    match slot.try_lock() {
        Ok(guard) => guard.is_some(),
        Err(TryLockError::Poisoned(p)) => p.into_inner().is_some(),
        // A worker is mid-report; it will be settled by the next poll.
        Err(TryLockError::WouldBlock) => false,
    }
}

/// The sweep's control loop, run in the calling thread: polls for shutdown,
/// enforces deadlines, abandons unresponsive workers, and returns once
/// every job is settled.
fn monitor(shared: &Arc<SweepShared>, config: &SweepConfig) {
    let m = shared.names.len();
    let stats = &mbp_stats::pipeline().sweep;
    let deadline_ns = config
        .deadline
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    // A predictor counts as progressing if its epoch moved within a
    // quarter-deadline; an unresponsive cancelled worker is abandoned after
    // the same order of grace. Both are clamped so tiny or huge budgets
    // stay sane.
    let (stall_ns, grace_ns) = match config.deadline {
        Some(d) => {
            let quarter = d / 4;
            (
                quarter
                    .clamp(Duration::from_millis(50), Duration::from_secs(2))
                    .as_nanos() as u64,
                quarter
                    .clamp(Duration::from_millis(100), Duration::from_secs(2))
                    .as_nanos() as u64,
            )
        }
        None => (0, 0),
    };
    let mut last_epoch = vec![0u64; m];
    let mut last_change = vec![0u64; m];
    let mut deadline_at: Vec<Option<u64>> = vec![None; m];
    let mut extended = vec![false; m];
    let mut cancelled_at: Vec<Option<u64>> = vec![None; m];

    loop {
        let now = ns_since(&shared.start);

        // Shutdown probe: flip into drain mode once. The queue is dumped
        // under its lock, so no worker can claim a job we park as not-run.
        if let Some(probe) = config.shutdown {
            if !shared.draining.load(Ordering::Relaxed) && probe() {
                shared.draining.store(true, Ordering::Relaxed);
                {
                    let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    let mut parked = shared
                        .not_run
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    let drained: Vec<usize> = queue.drain(..).collect();
                    for &i in &drained {
                        publish_state(&shared.status, &shared.names[i], PredictorState::NotRun);
                    }
                    parked.extend(drained);
                }
                // Wake admission waiters so they notice the drain promptly.
                shared.mem_cv.notify_all();
                stats.shutdown_drains.inc();
                let settled = (0..m).filter(|&i| slot_settled(&shared.done[i])).count();
                let parked = shared
                    .not_run
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len();
                mbp_stats::events::instant(
                    mbp_stats::events::EventName::ShutdownDrain,
                    m.saturating_sub(settled + parked) as u64,
                );
            }
        }

        let mut settled = 0usize;
        for i in 0..m {
            if slot_settled(&shared.done[i]) {
                settled += 1;
                continue;
            }
            let Some(budget_ns) = deadline_ns else {
                continue;
            };
            let started = shared.jobs[i].started_ns.load(Ordering::Relaxed);
            if started == 0 {
                continue; // unclaimed, or still queued for admission
            }
            if deadline_at[i].is_none() {
                deadline_at[i] = Some(started.saturating_add(budget_ns));
                last_epoch[i] = shared.jobs[i].epoch.load(Ordering::Relaxed);
                last_change[i] = started;
            }
            let epoch = shared.jobs[i].epoch.load(Ordering::Relaxed);
            if epoch != last_epoch[i] {
                last_epoch[i] = epoch;
                last_change[i] = now;
            }
            if let Some(cancel_ns) = cancelled_at[i] {
                // Cancelled but still running: the flag is only observed at
                // batch boundaries, so give the worker a grace period, then
                // abandon it — report the failure ourselves, return its
                // memory, and backfill the pool.
                if now.saturating_sub(cancel_ns) > grace_ns {
                    cancelled_at[i] = None;
                    abandon(shared, i);
                }
                continue;
            }
            if now >= deadline_at[i].unwrap_or(u64::MAX) {
                let progressing = now.saturating_sub(last_change[i]) < stall_ns;
                if progressing && !extended[i] {
                    // Still moving at the buzzer: one bounded extension.
                    extended[i] = true;
                    deadline_at[i] = Some(now.saturating_add(budget_ns));
                    stats.deadline_extensions.inc();
                } else {
                    shared.jobs[i].cancel.store(true, Ordering::Relaxed);
                    cancelled_at[i] = Some(now);
                    stats.deadline_fired.inc();
                    mbp_stats::events::instant(
                        mbp_stats::events::EventName::DeadlineFired,
                        i as u64,
                    );
                }
            }
        }

        let parked = shared
            .not_run
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        if settled + parked >= m {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Gives up on job `i`'s worker: returns its memory reservation, records a
/// deadline failure on its behalf, and — since the stuck thread is lost to
/// the pool — spawns a replacement worker if the queue still has work.
fn abandon(shared: &Arc<SweepShared>, i: usize) {
    shared.jobs[i].abandoned.store(true, Ordering::Relaxed);
    {
        let mut used = shared
            .mem_used
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if !shared.jobs[i].mem_released.swap(true, Ordering::Relaxed) {
            let hint = shared.jobs[i].mem_hint.load(Ordering::Relaxed);
            *used = used.saturating_sub(hint);
            shared.mem_cv.notify_all();
        }
    }
    report(
        shared,
        i,
        Err(SweepFailure {
            name: shared.names[i].clone(),
            kind: FailureKind::Deadline,
            message: deadline_message(shared.deadline, "worker unresponsive and abandoned"),
        }),
    );
    let backlog = !shared
        .queue
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_empty();
    if backlog && !shared.draining.load(Ordering::Relaxed) {
        let s = Arc::clone(shared);
        std::thread::spawn(move || worker_loop(&s));
    }
}

/// Resolves a `--jobs` request against the machine and the work available.
fn effective_jobs(requested: usize, predictors: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    };
    jobs.clamp(1, predictors.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_trace::{Branch, BranchRecord, Opcode};

    struct Fixed(bool);

    impl Predictor for Fixed {
        fn predict(&mut self, _ip: u64) -> bool {
            self.0
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "fixed", "dir": self.0})
        }
    }

    /// Panics on the `n`-th prediction — a stand-in for a buggy predictor
    /// under development, the case sweep fault-isolation exists for.
    struct PanicAfter(u64);

    impl Predictor for PanicAfter {
        fn predict(&mut self, _ip: u64) -> bool {
            if self.0 == 0 {
                panic!("intentional fault for testing");
            }
            self.0 -= 1;
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "panic-after"})
        }
    }

    /// Sleeps on every prediction: from the watchdog's point of view, a
    /// predictor that has wedged inside one record batch.
    struct Stall;

    impl Predictor for Stall {
        fn predict(&mut self, _ip: u64) -> bool {
            std::thread::sleep(Duration::from_millis(1));
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
    }

    /// Correct predictions, huge claimed footprint.
    struct Hog(u64);

    impl Predictor for Hog {
        fn predict(&mut self, _ip: u64) -> bool {
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn size_hint(&self) -> u64 {
            self.0
        }
    }

    fn biased_records(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(0x10, 0, Opcode::conditional_direct(), i % 4 != 0),
                    3,
                )
            })
            .collect()
    }

    fn fixed_pair() -> Vec<(String, Box<dyn Predictor + Send>)> {
        vec![
            (
                "never".to_string(),
                Box::new(Fixed(false)) as Box<dyn Predictor + Send>,
            ),
            (
                "always".to_string(),
                Box::new(Fixed(true)) as Box<dyn Predictor + Send>,
            ),
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mbp-sweep-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn ranks_by_mpki() {
        // 3 of 4 branches taken: always-taken beats never-taken.
        let records = biased_records(100);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].name, "always");
        assert_eq!(r.entries[0].rank, 1);
        assert_eq!(r.entries[1].name, "never");
        assert_eq!(r.entries[1].rank, 2);
        assert!(r.entries[0].result.metrics.mpki < r.entries[1].result.metrics.mpki);
        assert!(!r.interrupted);
        assert!(r.not_run.is_empty());
    }

    #[test]
    fn status_board_settles_every_predictor_with_final_totals() {
        let records = biased_records(100);
        let mut src = SliceSource::new(&records);
        let board = Arc::new(SweepStatusBoard::new(["never", "always"]));
        let config = SweepConfig {
            status: Some(Arc::clone(&board)),
            ..Default::default()
        };
        let r = simulate_many(&mut src, fixed_pair(), &config).unwrap();
        assert_eq!(r.entries.len(), 2);
        let snap = board.snapshot();
        for s in &snap {
            assert_eq!(s.state, PredictorState::Settled, "{}", s.name);
        }
        // Settle-time totals converge on the reported metrics exactly.
        for e in &r.entries {
            let s = snap.iter().find(|s| s.name == e.name).unwrap();
            assert_eq!(s.mispredictions, e.result.metrics.mispredictions);
            assert_eq!(s.instructions, e.result.metadata.simulation_instr);
        }
        // The board must not perturb results: identical to a boardless run.
        let mut src2 = SliceSource::new(&records);
        let plain = simulate_many(&mut src2, fixed_pair(), &SweepConfig::default()).unwrap();
        for (a, b) in r.entries.iter().zip(plain.entries.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.result.metrics.mispredictions,
                b.result.metrics.mispredictions
            );
            assert_eq!(a.result.metrics.mpki, b.result.metrics.mpki);
        }
    }

    #[test]
    fn results_match_standalone_simulate() {
        let records = biased_records(64);
        let cfg = SweepConfig::default();
        let mut src = SliceSource::new(&records);
        let sweep = simulate_many(&mut src, fixed_pair(), &cfg).unwrap();

        let mut standalone = Fixed(true);
        let direct = simulate(&mut SliceSource::new(&records), &mut standalone, &cfg.sim).unwrap();
        let entry = sweep.entries.iter().find(|e| e.name == "always").unwrap();
        assert_eq!(
            entry.result.metrics.mispredictions,
            direct.metrics.mispredictions
        );
        assert_eq!(entry.result.metrics.mpki, direct.metrics.mpki);
        assert_eq!(
            entry.result.metadata.num_conditional_branches,
            direct.metadata.num_conditional_branches
        );
    }

    #[test]
    fn respects_jobs_and_queues_excess_work() {
        let records = biased_records(32);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..7)
            .map(|i| {
                (
                    format!("p{i}"),
                    Box::new(Fixed(i % 2 == 0)) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let cfg = SweepConfig {
            jobs: 2,
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert_eq!(r.jobs, 2);
        assert_eq!(r.workers_used, 2);
        assert_eq!(r.entries.len(), 7, "all queued predictors complete");
    }

    #[test]
    fn jobs_zero_uses_available_parallelism_capped_by_work() {
        let records = biased_records(8);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        assert!(r.jobs >= 1 && r.jobs <= 2, "two predictors cap jobs at 2");
        assert_eq!(r.workers_used, r.jobs);
    }

    #[test]
    fn empty_sweep_is_ok() {
        let records = biased_records(4);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, Vec::new(), &SweepConfig::default()).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.workers_used, 0);
        assert_eq!(r.to_json()["leaderboard"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn json_leaderboard_is_ranked_and_parses_back() {
        let records = biased_records(40);
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        let doc = r.to_json();
        assert_eq!(doc["leaderboard"][0]["rank"], Value::from(1));
        assert_eq!(doc["leaderboard"][0]["predictor"], Value::from("always"));
        assert!(
            doc["leaderboard"][0]["predictor_statistics"]
                .as_object()
                .is_some(),
            "leaderboard entries carry execution statistics"
        );
        assert_eq!(doc["metadata"]["num_predictors"], Value::from(2));
        assert_eq!(doc["metadata"]["interrupted"], Value::from(false));
        assert_eq!(doc["not_run"].as_array().unwrap().len(), 0);
        assert_eq!(
            doc["results"][0]["metadata"]["simulator"].as_str(),
            Some(crate::SIMULATOR_NAME),
        );
        let text = doc.to_pretty_string();
        let reparsed: Value = text.parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn panicking_predictor_is_isolated_and_reported() {
        let records = biased_records(64);
        let mut predictors = fixed_pair();
        predictors.push((
            "buggy".to_string(),
            Box::new(PanicAfter(10)) as Box<dyn Predictor + Send>,
        ));
        let mut src = SliceSource::new(&records);
        let cfg = SweepConfig {
            jobs: 2,
            ..SweepConfig::default()
        };
        let r = simulate_many(&mut src, predictors, &cfg).expect("sweep survives the panic");

        // Survivors are ranked exactly as a panic-free sweep would rank them.
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].name, "always");
        assert_eq!(r.entries[0].rank, 1);
        assert_eq!(r.entries[1].name, "never");

        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].name, "buggy");
        assert_eq!(r.failures[0].kind, FailureKind::Panic);
        assert!(
            r.failures[0].message.contains("intentional fault"),
            "panic payload surfaces: {:?}",
            r.failures[0].message
        );
    }

    #[test]
    fn failures_appear_in_sweep_json() {
        let records = biased_records(16);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("ok".to_string(), Box::new(Fixed(true))),
            ("bad".to_string(), Box::new(PanicAfter(0))),
        ];
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &SweepConfig::default()).unwrap();
        let doc = r.to_json();
        assert_eq!(doc["metadata"]["num_predictors"], Value::from(2));
        assert_eq!(doc["metadata"]["num_failures"], Value::from(1));
        assert_eq!(doc["failures"][0]["predictor"], Value::from("bad"));
        assert_eq!(doc["failures"][0]["kind"], Value::from("panic"));
        assert_eq!(doc["leaderboard"].as_array().unwrap().len(), 1);
        // The whole document still parses back (valid JSON with failures).
        let reparsed: Value = doc.to_pretty_string().parse().unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn all_predictors_failing_still_completes() {
        let records = biased_records(8);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..4)
            .map(|i| {
                (
                    format!("bad{i}"),
                    Box::new(PanicAfter(i)) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &SweepConfig::default()).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.failures.len(), 4);
        let names: Vec<&str> = r.failures.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["bad0", "bad1", "bad2", "bad3"], "sorted by name");
    }

    #[test]
    fn trace_description_propagates_to_entries() {
        let records = biased_records(4);
        let mut src = SliceSource::named(&records, "traces/T1.sbbt.mzst");
        let r = simulate_many(&mut src, fixed_pair(), &SweepConfig::default()).unwrap();
        for e in &r.entries {
            assert_eq!(
                e.result.metadata.trace.as_str(),
                Some("traces/T1.sbbt.mzst")
            );
        }
    }

    #[test]
    fn deadline_watchdog_fails_stuck_predictor_without_hanging() {
        let records = biased_records(1000);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("good".to_string(), Box::new(Fixed(true))),
            ("stuck".to_string(), Box::new(Stall)),
        ];
        let cfg = SweepConfig {
            jobs: 2,
            deadline: Some(Duration::from_millis(100)),
            ..SweepConfig::default()
        };
        let started = Instant::now();
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the watchdog bounds the sweep instead of hanging it"
        );
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].name, "good");
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].name, "stuck");
        assert_eq!(r.failures[0].kind, FailureKind::Deadline);
        assert!(
            r.failures[0].message.contains("deadline of 0.100 s"),
            "message names the budget: {:?}",
            r.failures[0].message
        );
        assert!(!r.interrupted, "a deadline is a failure, not an interrupt");
    }

    #[test]
    fn oversized_predictor_is_rejected_by_the_memory_budget() {
        let records = biased_records(32);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("small".to_string(), Box::new(Hog(1024))),
            ("huge".to_string(), Box::new(Hog(64 << 20))),
        ];
        let cfg = SweepConfig {
            mem_budget: Some(1 << 20),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].name, "small");
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].name, "huge");
        assert_eq!(r.failures[0].kind, FailureKind::MemBudget);
        assert!(r.failures[0].message.contains("memory budget"));
    }

    #[test]
    fn memory_budget_serializes_admission_but_completes_everything() {
        // Three 600 KiB predictors against a 1 MiB budget: at most one can
        // be in flight, but admission must hand the ledger on so all three
        // finish.
        let records = biased_records(64);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..3)
            .map(|i| {
                (
                    format!("hog{i}"),
                    Box::new(Hog(600 << 10)) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let cfg = SweepConfig {
            jobs: 3,
            mem_budget: Some(1 << 20),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert_eq!(r.entries.len(), 3, "admission never wedges the pool");
        assert!(r.failures.is_empty());
    }

    #[test]
    fn checkpoint_records_every_settled_predictor() {
        let path = tmp("full.jsonl");
        let records = biased_records(48);
        let mut predictors = fixed_pair();
        predictors.push(("bad".to_string(), Box::new(PanicAfter(0))));
        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert_eq!(r.entries.len(), 2);
        let load = crate::checkpoint::load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 2);
        assert_eq!(load.failures.len(), 1);
        assert_eq!(load.ignored_tail_lines, 0);
    }

    #[test]
    fn resume_skips_checkpointed_predictors_and_rebuilds_the_leaderboard() {
        let path = tmp("resume.jsonl");
        let records = biased_records(80);
        let mut first = fixed_pair();
        first.push(("bad".to_string(), Box::new(PanicAfter(0))));
        let cfg = SweepConfig {
            jobs: 1,
            checkpoint: Some(path.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let original = simulate_many(&mut src, first, &cfg).unwrap();

        // Resume with predictors that would all panic instantly if they
        // actually ran: every outcome must come from the checkpoint.
        let second: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("never".to_string(), Box::new(PanicAfter(0))),
            ("always".to_string(), Box::new(PanicAfter(0))),
            ("bad".to_string(), Box::new(PanicAfter(0))),
        ];
        let resume_cfg = SweepConfig {
            resume: true,
            ..cfg
        };
        let mut src = SliceSource::new(&records);
        let resumed = simulate_many(&mut src, second, &resume_cfg).unwrap();
        assert_eq!(resumed.workers_used, 0, "nothing left to simulate");
        assert_eq!(resumed.decode_time, 0.0, "decode skipped on full resume");
        assert_eq!(resumed.entries.len(), original.entries.len());
        for (a, b) in resumed.entries.iter().zip(original.entries.iter()) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.name, b.name);
            assert_eq!(a.result.metrics.mpki, b.result.metrics.mpki);
        }
        assert_eq!(resumed.failures.len(), 1);
        assert_eq!(resumed.failures[0].name, "bad");
        assert_eq!(resumed.failures[0].kind, FailureKind::Panic);
    }

    #[test]
    fn resume_runs_only_the_unsettled_remainder() {
        let path = tmp("partial.jsonl");
        let records = biased_records(60);
        let cfg = SweepConfig {
            jobs: 1,
            checkpoint: Some(path.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let only_always: Vec<(String, Box<dyn Predictor + Send>)> =
            vec![("always".to_string(), Box::new(Fixed(true)))];
        simulate_many(&mut src, only_always, &cfg).unwrap();

        // "always" must come from the checkpoint (a live run would panic);
        // "never" is new and must actually simulate.
        let second: Vec<(String, Box<dyn Predictor + Send>)> = vec![
            ("always".to_string(), Box::new(PanicAfter(0))),
            ("never".to_string(), Box::new(Fixed(false))),
        ];
        let resume_cfg = SweepConfig {
            resume: true,
            ..cfg
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, second, &resume_cfg).unwrap();
        assert_eq!(r.entries.len(), 2);
        assert!(r.failures.is_empty(), "the resumed entry never ran");
        assert_eq!(r.workers_used, 1);
        let load = crate::checkpoint::load_checkpoint(&path).unwrap();
        assert_eq!(load.completed.len(), 2, "the new result was appended");
    }

    fn drain_immediately() -> bool {
        true
    }

    #[test]
    fn shutdown_drains_in_flight_work_and_reports_the_rest_not_run() {
        let records = biased_records(64);
        let predictors: Vec<(String, Box<dyn Predictor + Send>)> = (0..6)
            .map(|i| {
                (
                    format!("p{i}"),
                    Box::new(Stall) as Box<dyn Predictor + Send>,
                )
            })
            .collect();
        let cfg = SweepConfig {
            jobs: 1,
            shutdown: Some(drain_immediately),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, predictors, &cfg).unwrap();
        assert!(r.interrupted);
        assert_eq!(
            r.entries.len() + r.failures.len() + r.not_run.len(),
            6,
            "every predictor is accounted for"
        );
        assert!(!r.not_run.is_empty(), "the drain parked unstarted work");
        let mut sorted = r.not_run.clone();
        sorted.sort();
        assert_eq!(r.not_run, sorted);
        let doc = r.to_json();
        assert_eq!(doc["metadata"]["interrupted"], Value::from(true));
        assert_eq!(doc["not_run"].as_array().unwrap().len(), r.not_run.len());
    }

    #[test]
    fn failure_kind_round_trips_through_strings() {
        for kind in [
            FailureKind::Panic,
            FailureKind::TraceError,
            FailureKind::Deadline,
            FailureKind::MemBudget,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FailureKind::parse("gremlins"), None);
    }

    /// Two alternating behavioural phases (different IPs, different bias)
    /// so BBV clustering has real structure to find.
    fn phase_trace(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                let phase = (i / 100) % 2;
                let ip = if phase == 0 {
                    0x1000 + (i % 8) as u64 * 16
                } else {
                    0x8_0000 + (i % 8) as u64 * 16
                };
                let taken = if phase == 0 { i % 4 != 0 } else { i % 2 == 0 };
                BranchRecord::new(Branch::new(ip, 0, Opcode::conditional_direct(), taken), 3)
            })
            .collect()
    }

    #[test]
    fn sampled_sweep_reports_sampling_metadata() {
        let records = phase_trace(4000);
        let phases = crate::simpoint::extract_phases(&records, 2000, 3);
        let cfg = SweepConfig {
            phases: Some(phases.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let r = simulate_many(&mut src, fixed_pair(), &cfg).unwrap();

        assert_eq!(r.entries.len(), 2);
        for e in &r.entries {
            let s = e.result.sampling.as_ref().expect("sampled entry");
            assert_eq!(s["doc_hash"].as_str(), Some(phases.doc_hash().as_str()));
        }
        let doc = r.to_json();
        let meta = doc["metadata"]["sampling"]
            .as_object()
            .expect("sweep metadata carries the sampling plan");
        assert_eq!(
            meta.get("doc_hash").and_then(Value::as_str),
            Some(phases.doc_hash().as_str())
        );
        let fraction = meta
            .get("simulated_fraction")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(fraction > 0.0 && fraction < 1.0, "fraction {fraction}");
        assert!(
            meta.get("max_error_estimate")
                .and_then(Value::as_f64)
                .unwrap()
                >= 0.0
        );
    }

    #[test]
    fn sampled_sweep_is_deterministic_across_worker_counts() {
        let records = phase_trace(4000);
        let phases = crate::simpoint::extract_phases(&records, 2000, 3);
        let run = |jobs: usize| {
            let cfg = SweepConfig {
                jobs,
                phases: Some(phases.clone()),
                ..SweepConfig::default()
            };
            let mut src = SliceSource::new(&records);
            simulate_many(&mut src, fixed_pair(), &cfg).unwrap()
        };
        let a = run(1);
        let b = run(2);
        assert_eq!(a.entries.len(), b.entries.len());
        // Canonical form: everything except the one wall-clock field.
        let canon = |r: &SimResult| {
            let mut doc = r.to_json();
            if let Some(m) = doc
                .as_object_mut()
                .and_then(|d| d.get_mut("metrics"))
                .and_then(Value::as_object_mut)
            {
                m.remove("simulation_time");
            }
            doc.to_pretty_string()
        };
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                canon(&x.result),
                canon(&y.result),
                "per-predictor sampled result is bit-stable across worker counts"
            );
        }
    }

    #[test]
    fn resume_refuses_full_checkpoint_under_sampling() {
        let path = tmp("mismatch_full_then_sampled.jsonl");
        std::fs::remove_file(&path).ok();
        let records = phase_trace(4000);

        let full = SweepConfig {
            checkpoint: Some(path.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        simulate_many(&mut src, fixed_pair(), &full).unwrap();

        let sampled = SweepConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            phases: Some(crate::simpoint::extract_phases(&records, 2000, 3)),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let err = simulate_many(&mut src, fixed_pair(), &sampled).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("refusing to resume"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn resume_refuses_sampled_checkpoint_without_phases() {
        let path = tmp("mismatch_sampled_then_full.jsonl");
        std::fs::remove_file(&path).ok();
        let records = phase_trace(4000);
        let phases = crate::simpoint::extract_phases(&records, 2000, 3);

        let sampled = SweepConfig {
            checkpoint: Some(path.clone()),
            phases: Some(phases),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        simulate_many(&mut src, fixed_pair(), &sampled).unwrap();

        let full = SweepConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let err = simulate_many(&mut src, fixed_pair(), &full).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("refusing to resume"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn resume_refuses_a_different_sampling_plan() {
        let path = tmp("mismatch_plan_a_then_b.jsonl");
        std::fs::remove_file(&path).ok();
        let records = phase_trace(4000);

        let plan_a = SweepConfig {
            checkpoint: Some(path.clone()),
            phases: Some(crate::simpoint::extract_phases(&records, 2000, 3)),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        simulate_many(&mut src, fixed_pair(), &plan_a).unwrap();

        let plan_b = SweepConfig {
            checkpoint: Some(path.clone()),
            resume: true,
            phases: Some(crate::simpoint::extract_phases(&records, 1000, 4)),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let err = simulate_many(&mut src, fixed_pair(), &plan_b).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("refusing to resume") || msg.contains("names plan"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn resume_accepts_a_matching_sampling_plan() {
        let path = tmp("matching_plan_resumes.jsonl");
        std::fs::remove_file(&path).ok();
        let records = phase_trace(4000);
        let phases = crate::simpoint::extract_phases(&records, 2000, 3);

        let cfg = SweepConfig {
            checkpoint: Some(path.clone()),
            phases: Some(phases.clone()),
            ..SweepConfig::default()
        };
        let mut src = SliceSource::new(&records);
        let first = simulate_many(&mut src, fixed_pair(), &cfg).unwrap();

        let resume = SweepConfig {
            resume: true,
            ..cfg
        };
        let mut src = SliceSource::new(&records);
        let second = simulate_many(&mut src, fixed_pair(), &resume).unwrap();
        assert_eq!(
            second.workers_used, 0,
            "both predictors come from the checkpoint"
        );
        for (x, y) in first.entries.iter().zip(&second.entries) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.result.metrics.mpki, y.result.metrics.mpki);
        }
    }
}
