//! Trace sources: anything the simulator can pull branch records from.

use mbp_json::Value;
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::{BranchBatch, BranchRecord, TraceError};

/// Records per [`TraceSource::fill_batch`] call, matching the SBBT
/// reader's native block size.
pub use mbp_trace::sbbt::BATCH_RECORDS;

/// A stream of branch records consumable by the simulators.
///
/// Implemented for [`SbbtReader`] (the normal case), and for in-memory
/// slices and vectors so tests, workload generators and optimization loops
/// (§VI-B) can feed the simulator without touching the filesystem.
pub trait TraceSource {
    /// The next record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Malformed trace content.
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError>;

    /// Replaces the contents of `out` with the next block of up to
    /// [`BATCH_RECORDS`] records and returns how many were produced.
    ///
    /// The simulators drive this method in their hot loop: one virtual call
    /// amortizes over a whole block, the struct-of-arrays
    /// [`BranchBatch`] lets predictor kernels stream individual columns,
    /// and `out` is caller-owned so its column allocations are reused
    /// across calls (truncated, never re-zeroed). Implementations must
    /// return fewer than `BATCH_RECORDS` records only at the end of the
    /// trace (or on error); `0` means the trace is exhausted.
    ///
    /// The default implementation loops [`TraceSource::next_record`];
    /// sources with a cheaper block path (the SBBT reader, in-memory
    /// sources) override it.
    ///
    /// # Errors
    ///
    /// Malformed trace content; `out` holds the records produced before
    /// the error.
    fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        out.clear();
        while out.len() < BATCH_RECORDS {
            match self.next_record()? {
                Some(rec) => out.push_record(&rec),
                None => break,
            }
        }
        out.debug_assert_aligned();
        Ok(out.len())
    }

    /// A JSON description of the source (e.g. the trace path), embedded in
    /// the result metadata.
    fn description(&self) -> Value {
        Value::Null
    }

    /// Total instructions the source spans, if known ahead of time.
    fn instruction_count_hint(&self) -> Option<u64> {
        None
    }

    /// Branch records remaining in the source, if known ahead of time.
    ///
    /// Unlike [`TraceSource::instruction_count_hint`] — which may come
    /// straight from an untrusted file header — implementations must derive
    /// this from the actual data they hold, so callers can size allocations
    /// from it safely.
    fn record_count_hint(&self) -> Option<u64> {
        None
    }
}

impl TraceSource for SbbtReader {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        SbbtReader::next_record(self)
    }

    fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        SbbtReader::fill_batch(self, out)
    }

    fn description(&self) -> Value {
        Value::from("sbbt trace")
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.header().instruction_count)
    }

    fn record_count_hint(&self) -> Option<u64> {
        // Derived from the in-memory buffer length, not the header (the
        // constructor cross-checked the two anyway).
        Some(self.remaining())
    }
}

/// A trace source over a borrowed slice of records.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    records: &'a [BranchRecord],
    pos: usize,
    name: Option<String>,
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of records.
    pub fn new(records: &'a [BranchRecord]) -> Self {
        Self {
            records,
            pos: 0,
            name: None,
        }
    }

    /// Wraps a slice with a human-readable trace name for the metadata.
    pub fn named(records: &'a [BranchRecord], name: impl Into<String>) -> Self {
        Self {
            records,
            pos: 0,
            name: Some(name.into()),
        }
    }

    /// Rewinds to the beginning (e.g. between sweep iterations).
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        let rec = self.records.get(self.pos).copied();
        self.pos += rec.is_some() as usize;
        Ok(rec)
    }

    fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        out.clear();
        let end = self.records.len().min(self.pos + BATCH_RECORDS);
        out.extend_from_records(&self.records[self.pos..end]);
        self.pos = end;
        Ok(out.len())
    }

    fn description(&self) -> Value {
        match &self.name {
            Some(n) => Value::from(n.as_str()),
            None => Value::from("in-memory trace"),
        }
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.records.iter().map(|r| r.instructions()).sum())
    }

    fn record_count_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }
}

/// An owning in-memory trace source.
#[derive(Clone, Debug)]
pub struct VecSource {
    records: Vec<BranchRecord>,
    pos: usize,
    name: Option<String>,
}

impl VecSource {
    /// Wraps a vector of records.
    pub fn new(records: Vec<BranchRecord>) -> Self {
        Self {
            records,
            pos: 0,
            name: None,
        }
    }

    /// Wraps a vector with a trace name for the metadata.
    pub fn named(records: Vec<BranchRecord>, name: impl Into<String>) -> Self {
        Self {
            records,
            pos: 0,
            name: Some(name.into()),
        }
    }

    /// Rewinds to the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Borrows the underlying records.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }
}

impl TraceSource for VecSource {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        let rec = self.records.get(self.pos).copied();
        self.pos += rec.is_some() as usize;
        Ok(rec)
    }

    fn fill_batch(&mut self, out: &mut BranchBatch) -> Result<usize, TraceError> {
        out.clear();
        let end = self.records.len().min(self.pos + BATCH_RECORDS);
        out.extend_from_records(&self.records[self.pos..end]);
        self.pos = end;
        Ok(out.len())
    }

    fn description(&self) -> Value {
        match &self.name {
            Some(n) => Value::from(n.as_str()),
            None => Value::from("in-memory trace"),
        }
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.records.iter().map(|r| r.instructions()).sum())
    }

    fn record_count_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_trace::{Branch, Opcode};

    fn recs(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(i as u64, 0, Opcode::conditional_direct(), true),
                    2,
                )
            })
            .collect()
    }

    #[test]
    fn slice_source_drains_and_resets() {
        let records = recs(3);
        let mut s = SliceSource::new(&records);
        let mut seen = 0;
        while s.next_record().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 3);
        assert!(s.next_record().unwrap().is_none());
        s.reset();
        assert!(s.next_record().unwrap().is_some());
    }

    #[test]
    fn sources_report_instruction_hint() {
        let records = recs(4);
        assert_eq!(
            SliceSource::new(&records).instruction_count_hint(),
            Some(12)
        );
        assert_eq!(VecSource::new(records).instruction_count_hint(), Some(12));
    }

    #[test]
    fn named_sources_describe_themselves() {
        let records = recs(1);
        let s = SliceSource::named(&records, "SHORT_SERVER-1");
        assert_eq!(s.description(), Value::from("SHORT_SERVER-1"));
    }

    #[test]
    fn fill_batch_blocks_and_exhausts() {
        let records = recs(BATCH_RECORDS + 10);
        let mut s = SliceSource::new(&records);
        let mut buf = BranchBatch::new();
        assert_eq!(s.fill_batch(&mut buf).unwrap(), BATCH_RECORDS);
        assert_eq!(buf.record(0), records[0]);
        assert_eq!(s.fill_batch(&mut buf).unwrap(), 10);
        assert_eq!(buf.record(9), records[BATCH_RECORDS + 9]);
        assert_eq!(s.fill_batch(&mut buf).unwrap(), 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn fill_batch_interleaves_with_next_record() {
        let records = recs(5);
        let mut s = VecSource::new(records.clone());
        assert_eq!(s.next_record().unwrap(), Some(records[0]));
        let mut buf = BranchBatch::new();
        assert_eq!(s.fill_batch(&mut buf).unwrap(), 4);
        assert_eq!(buf.record(0), records[1]);
    }

    #[test]
    fn default_fill_batch_matches_specialized() {
        /// A source with only `next_record`, to exercise the trait default.
        struct OneAtATime<'a>(SliceSource<'a>);
        impl TraceSource for OneAtATime<'_> {
            fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
                self.0.next_record()
            }
        }

        let records = recs(BATCH_RECORDS + 7);
        let mut defaulted = OneAtATime(SliceSource::new(&records));
        let mut specialized = SliceSource::new(&records);
        let (mut a, mut b) = (BranchBatch::new(), BranchBatch::new());
        loop {
            let n = defaulted.fill_batch(&mut a).unwrap();
            let m = specialized.fill_batch(&mut b).unwrap();
            assert_eq!(n, m);
            assert_eq!(a, b);
            if n == 0 {
                break;
            }
        }
    }
}
