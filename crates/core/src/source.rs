//! Trace sources: anything the simulator can pull branch records from.

use mbp_json::Value;
use mbp_trace::sbbt::SbbtReader;
use mbp_trace::{BranchRecord, TraceError};

/// A stream of branch records consumable by the simulators.
///
/// Implemented for [`SbbtReader`] (the normal case), and for in-memory
/// slices and vectors so tests, workload generators and optimization loops
/// (§VI-B) can feed the simulator without touching the filesystem.
pub trait TraceSource {
    /// The next record, or `None` at the end of the trace.
    ///
    /// # Errors
    ///
    /// Malformed trace content.
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError>;

    /// A JSON description of the source (e.g. the trace path), embedded in
    /// the result metadata.
    fn description(&self) -> Value {
        Value::Null
    }

    /// Total instructions the source spans, if known ahead of time.
    fn instruction_count_hint(&self) -> Option<u64> {
        None
    }
}

impl TraceSource for SbbtReader {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        SbbtReader::next_record(self)
    }

    fn description(&self) -> Value {
        Value::from("sbbt trace")
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.header().instruction_count)
    }
}

/// A trace source over a borrowed slice of records.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    records: &'a [BranchRecord],
    pos: usize,
    name: Option<String>,
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of records.
    pub fn new(records: &'a [BranchRecord]) -> Self {
        Self { records, pos: 0, name: None }
    }

    /// Wraps a slice with a human-readable trace name for the metadata.
    pub fn named(records: &'a [BranchRecord], name: impl Into<String>) -> Self {
        Self {
            records,
            pos: 0,
            name: Some(name.into()),
        }
    }

    /// Rewinds to the beginning (e.g. between sweep iterations).
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        let rec = self.records.get(self.pos).copied();
        self.pos += rec.is_some() as usize;
        Ok(rec)
    }

    fn description(&self) -> Value {
        match &self.name {
            Some(n) => Value::from(n.as_str()),
            None => Value::from("in-memory trace"),
        }
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.records.iter().map(|r| r.instructions()).sum())
    }
}

/// An owning in-memory trace source.
#[derive(Clone, Debug)]
pub struct VecSource {
    records: Vec<BranchRecord>,
    pos: usize,
    name: Option<String>,
}

impl VecSource {
    /// Wraps a vector of records.
    pub fn new(records: Vec<BranchRecord>) -> Self {
        Self { records, pos: 0, name: None }
    }

    /// Wraps a vector with a trace name for the metadata.
    pub fn named(records: Vec<BranchRecord>, name: impl Into<String>) -> Self {
        Self {
            records,
            pos: 0,
            name: Some(name.into()),
        }
    }

    /// Rewinds to the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Borrows the underlying records.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }
}

impl TraceSource for VecSource {
    fn next_record(&mut self) -> Result<Option<BranchRecord>, TraceError> {
        let rec = self.records.get(self.pos).copied();
        self.pos += rec.is_some() as usize;
        Ok(rec)
    }

    fn description(&self) -> Value {
        match &self.name {
            Some(n) => Value::from(n.as_str()),
            None => Value::from("in-memory trace"),
        }
    }

    fn instruction_count_hint(&self) -> Option<u64> {
        Some(self.records.iter().map(|r| r.instructions()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_trace::{Branch, Opcode};

    fn recs(n: usize) -> Vec<BranchRecord> {
        (0..n)
            .map(|i| {
                BranchRecord::new(
                    Branch::new(i as u64, 0, Opcode::conditional_direct(), true),
                    2,
                )
            })
            .collect()
    }

    #[test]
    fn slice_source_drains_and_resets() {
        let records = recs(3);
        let mut s = SliceSource::new(&records);
        let mut seen = 0;
        while s.next_record().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 3);
        assert!(s.next_record().unwrap().is_none());
        s.reset();
        assert!(s.next_record().unwrap().is_some());
    }

    #[test]
    fn sources_report_instruction_hint() {
        let records = recs(4);
        assert_eq!(SliceSource::new(&records).instruction_count_hint(), Some(12));
        assert_eq!(VecSource::new(records).instruction_count_hint(), Some(12));
    }

    #[test]
    fn named_sources_describe_themselves() {
        let records = recs(1);
        let s = SliceSource::named(&records, "SHORT_SERVER-1");
        assert_eq!(s.description(), Value::from("SHORT_SERVER-1"));
    }
}
