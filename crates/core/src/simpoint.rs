//! SimPoint-style phase sampling: basic-block-vector (BBV) feature
//! extraction, a small deterministic k-means clusterer, the versioned
//! phases document, and the sampled executor that replays only weighted
//! representative slices.
//!
//! The pipeline is `extract_phases` (trace → [`PhasesDoc`]) followed by
//! `simulate_sampled` (records + doc + predictor → [`SimResult`] with
//! reconstructed whole-trace metrics). Everything here is bit-stable
//! across runs and platforms: hashing is FNV-1a, centroid seeding is
//! farthest-point with lowest-index tie-breaks, assignment ties go to the
//! lowest cluster index, and every floating-point reduction runs in a
//! fixed order on a single thread. Two invocations on the same trace with
//! the same parameters produce byte-identical documents (`doc_hash`
//! pins this, and `--resume` uses it to refuse mismatched sampling plans).

use std::time::Instant;

use mbp_json::{json, Value};
use mbp_trace::BranchRecord;

use crate::metrics::{accuracy, mpki, Metrics, MostFailed};
use crate::simulator::{SimConfig, SimMetadata, SimResult};
use crate::Predictor;

/// Version of the phases-document schema; bumped on incompatible change.
pub const PHASES_SCHEMA_VERSION: u64 = 1;

/// Dimensionality of the per-window BBV: branch IPs hash into this many
/// buckets, each weighted by the instructions attributed to the branch.
pub const BBV_FEATURE_DIM: usize = 32;

/// Fixed iteration cap for the clusterer (part of the determinism
/// contract: no convergence-dependent platform drift).
pub const KMEANS_MAX_ITERATIONS: usize = 100;

/// FNV-1a 64-bit over a byte slice; the only hash used in this module
/// (IP bucketing and the document hash), chosen for platform stability.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One instruction-window of the trace with its L1-normalized BBV.
#[derive(Clone, Debug, PartialEq)]
pub struct BbvWindow {
    /// Index of the first record of the window.
    pub start_record: usize,
    /// Number of records in the window.
    pub num_records: usize,
    /// Cumulative instruction count at the start of the window.
    pub start_instruction: u64,
    /// Instructions the window spans (the last window may overshoot or
    /// undershoot the nominal size; see [`extract_bbv`]).
    pub instructions: u64,
    /// L1-normalized execution-frequency vector over hashed IP buckets.
    pub features: [f64; BBV_FEATURE_DIM],
}

/// Tiles `records` into windows of `window_size` instructions and builds
/// one BBV per window.
///
/// Window boundaries follow the PR 5 timeseries discipline: a window
/// closes on the first record that carries the cumulative instruction
/// count to or past the next multiple of `window_size` (so windows can
/// overshoot by one record's gap), and a final partial window is flushed.
/// Each record adds its instruction weight (gap + 1) to the bucket
/// `fnv1a64(ip) % BBV_FEATURE_DIM`; the vector is L1-normalized when the
/// window closes. `window_size` is clamped to at least 1.
pub fn extract_bbv(records: &[BranchRecord], window_size: u64) -> Vec<BbvWindow> {
    let window_size = window_size.max(1);
    let mut windows = Vec::new();
    let mut raw = [0.0f64; BBV_FEATURE_DIM];
    let mut cum = 0u64;
    let mut next_boundary = window_size;
    let mut start_record = 0usize;
    let mut start_instruction = 0u64;
    for (i, rec) in records.iter().enumerate() {
        let weight = rec.instructions();
        cum += weight;
        let bucket = (fnv1a64(&rec.branch.ip().to_le_bytes()) % BBV_FEATURE_DIM as u64) as usize;
        raw[bucket] += weight as f64;
        if cum >= next_boundary {
            windows.push(close_window(
                &mut raw,
                start_record,
                i + 1 - start_record,
                start_instruction,
                cum - start_instruction,
            ));
            start_record = i + 1;
            start_instruction = cum;
            next_boundary = (cum / window_size + 1) * window_size;
        }
    }
    if start_record < records.len() {
        windows.push(close_window(
            &mut raw,
            start_record,
            records.len() - start_record,
            start_instruction,
            cum - start_instruction,
        ));
    }
    windows
}

fn close_window(
    raw: &mut [f64; BBV_FEATURE_DIM],
    start_record: usize,
    num_records: usize,
    start_instruction: u64,
    instructions: u64,
) -> BbvWindow {
    let sum: f64 = raw.iter().sum();
    let mut features = [0.0f64; BBV_FEATURE_DIM];
    if sum > 0.0 {
        for (f, r) in features.iter_mut().zip(raw.iter()) {
            *f = r / sum;
        }
    }
    raw.fill(0.0);
    BbvWindow {
        start_record,
        num_records,
        start_instruction,
        instructions,
        features,
    }
}

/// Squared Euclidean distance in fixed index order.
fn d2(a: &[f64; BBV_FEATURE_DIM], b: &[f64; BBV_FEATURE_DIM]) -> f64 {
    let mut acc = 0.0;
    for i in 0..BBV_FEATURE_DIM {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Deterministic k-means over the window BBVs.
///
/// Seeding is farthest-point: centroid 0 is window 0; each subsequent
/// centroid is the unchosen window maximizing its minimum distance to the
/// already-chosen set (ties → lowest window index; all-identical inputs
/// still pick the lowest unchosen index, which may leave clusters empty —
/// that is fine, empty clusters are dropped downstream). Assignment ties
/// go to the lowest cluster index; empty clusters keep their previous
/// centroid; iteration stops when assignments are unchanged or after
/// [`KMEANS_MAX_ITERATIONS`]. Returns `(assignments, k_used, iterations)`
/// where `k_used = k.clamp(1, windows.len())`.
pub fn kmeans(windows: &[BbvWindow], k: usize) -> (Vec<usize>, usize, usize) {
    let n = windows.len();
    if n == 0 {
        return (Vec::new(), 0, 0);
    }
    let k = k.clamp(1, n);

    // Farthest-point seeding.
    let mut chosen: Vec<usize> = vec![0];
    let mut min_dist: Vec<f64> = windows
        .iter()
        .map(|w| d2(&w.features, &windows[0].features))
        .collect();
    while chosen.len() < k {
        let mut best = usize::MAX;
        let mut best_d = -1.0f64;
        for (i, &d) in min_dist.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        chosen.push(best);
        for (i, slot) in min_dist.iter_mut().enumerate() {
            let d = d2(&windows[i].features, &windows[best].features);
            if d < *slot {
                *slot = d;
            }
        }
    }
    let mut centroids: Vec<[f64; BBV_FEATURE_DIM]> =
        chosen.iter().map(|&i| windows[i].features).collect();

    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    while iterations < KMEANS_MAX_ITERATIONS {
        iterations += 1;
        // Assign: nearest centroid, ties to the lowest cluster index.
        let mut changed = false;
        for (i, w) in windows.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = d2(&w.features, &centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d = d2(&w.features, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Recompute: mean of members in fixed window order; an empty
        // cluster keeps its previous centroid.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let mut sum = [0.0f64; BBV_FEATURE_DIM];
            let mut count = 0usize;
            for (i, w) in windows.iter().enumerate() {
                if assignments[i] == c {
                    for (s, f) in sum.iter_mut().zip(w.features.iter()) {
                        *s += f;
                    }
                    count += 1;
                }
            }
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
                *centroid = sum;
            }
        }
    }
    (assignments, k, iterations)
}

/// One phase of the sampling plan: a representative window plus the
/// window immediately before it (warmup replay) and the phase's weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Original cluster index this phase represents.
    pub cluster: usize,
    /// Index of the representative window (closest member to the
    /// centroid; ties → lowest window index).
    pub representative_window: usize,
    /// Fraction of all windows assigned to this cluster; weights over
    /// all phases sum to 1.
    pub weight: f64,
    /// Number of windows in the cluster.
    pub windows_in_cluster: usize,
    /// First record of the representative window.
    pub start_record: usize,
    /// Record count of the representative window.
    pub num_records: usize,
    /// Cumulative instruction count at the start of the window.
    pub start_instruction: u64,
    /// Instructions the representative window spans.
    pub instructions: u64,
    /// First record of the warmup slice (the windows immediately before
    /// the representative; 0 records when the representative is window 0).
    pub warmup_start_record: usize,
    /// Record count of the warmup slice.
    pub warmup_records: usize,
    /// Instructions the warmup slice spans.
    pub warmup_instructions: u64,
}

/// The versioned phases document emitted by `mbpsim simpoint` and
/// consumed by `mbpsim sweep --phases`.
#[derive(Clone, Debug, PartialEq)]
pub struct PhasesDoc {
    /// Window size in instructions used for tiling.
    pub window_size: u64,
    /// BBV dimensionality ([`BBV_FEATURE_DIM`]).
    pub feature_dim: usize,
    /// Number of non-empty clusters (== `phases.len()`).
    pub clusters: usize,
    /// k-means iterations executed.
    pub kmeans_iterations: usize,
    /// Records in the trace the plan was extracted from.
    pub record_count: u64,
    /// Instructions in the trace the plan was extracted from.
    pub instruction_count: u64,
    /// Windows the trace tiled into.
    pub num_windows: usize,
    /// Per-window cluster assignment (original cluster indices).
    pub assignments: Vec<usize>,
    /// One entry per non-empty cluster, ascending cluster index.
    pub phases: Vec<Phase>,
}

impl PhasesDoc {
    /// The document body in canonical field order, without `doc_hash`.
    fn body_json(&self) -> Value {
        json!({
            "schema_version": PHASES_SCHEMA_VERSION,
            "window_size": self.window_size,
            "feature_dim": self.feature_dim as u64,
            "clusters": self.clusters as u64,
            "kmeans_iterations": self.kmeans_iterations as u64,
            "record_count": self.record_count,
            "instruction_count": self.instruction_count,
            "num_windows": self.num_windows as u64,
            "assignments": self.assignments.iter().map(|&a| Value::from(a as u64)).collect::<Vec<_>>(),
            "phases": self.phases.iter().map(|p| json!({
                "cluster": p.cluster as u64,
                "representative_window": p.representative_window as u64,
                "weight": p.weight,
                "windows_in_cluster": p.windows_in_cluster as u64,
                "start_record": p.start_record as u64,
                "num_records": p.num_records as u64,
                "start_instruction": p.start_instruction,
                "instructions": p.instructions,
                "warmup_start_record": p.warmup_start_record as u64,
                "warmup_records": p.warmup_records as u64,
                "warmup_instructions": p.warmup_instructions,
            })).collect::<Vec<_>>(),
        })
    }

    /// Content hash of the canonical body, `"fnv1a64:<16 hex digits>"`.
    ///
    /// Checkpoint records carry this so `--resume` can refuse a
    /// checkpoint written under a different sampling plan.
    pub fn doc_hash(&self) -> String {
        let body = self.body_json().to_compact_string();
        format!("fnv1a64:{:016x}", fnv1a64(body.as_bytes()))
    }

    /// Renders the document with `doc_hash` as the final key.
    pub fn to_json(&self) -> Value {
        let mut doc = self.body_json();
        let hash = self.doc_hash();
        if let Some(obj) = doc.as_object_mut() {
            obj.insert("doc_hash", hash);
        }
        doc
    }

    /// Parses and verifies a phases document: the schema version must be
    /// [`PHASES_SCHEMA_VERSION`] and `doc_hash` must match the
    /// recomputed hash of the body.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let version = doc
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or("phases document has no schema_version")?;
        if version != PHASES_SCHEMA_VERSION {
            return Err(format!(
                "unsupported phases schema_version {version} (expected {PHASES_SCHEMA_VERSION})"
            ));
        }
        let u = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("phases document missing {key}"))
        };
        let assignments = match doc.get("assignments") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| v.as_u64().map(|a| a as usize))
                .collect::<Option<Vec<_>>>()
                .ok_or("non-integer cluster assignment")?,
            _ => return Err("phases document missing assignments".into()),
        };
        let phase_docs = match doc.get("phases") {
            Some(Value::Array(items)) => items,
            _ => return Err("phases document missing phases".into()),
        };
        let mut phases = Vec::with_capacity(phase_docs.len());
        for p in phase_docs {
            let pu = |key: &str| -> Result<u64, String> {
                p.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("phase entry missing {key}"))
            };
            phases.push(Phase {
                cluster: pu("cluster")? as usize,
                representative_window: pu("representative_window")? as usize,
                weight: p
                    .get("weight")
                    .and_then(Value::as_f64)
                    .ok_or("phase entry missing weight")?,
                windows_in_cluster: pu("windows_in_cluster")? as usize,
                start_record: pu("start_record")? as usize,
                num_records: pu("num_records")? as usize,
                start_instruction: pu("start_instruction")?,
                instructions: pu("instructions")?,
                warmup_start_record: pu("warmup_start_record")? as usize,
                warmup_records: pu("warmup_records")? as usize,
                warmup_instructions: pu("warmup_instructions")?,
            });
        }
        let parsed = Self {
            window_size: u("window_size")?,
            feature_dim: u("feature_dim")? as usize,
            clusters: u("clusters")? as usize,
            kmeans_iterations: u("kmeans_iterations")? as usize,
            record_count: u("record_count")?,
            instruction_count: u("instruction_count")?,
            num_windows: u("num_windows")? as usize,
            assignments,
            phases,
        };
        let declared = doc
            .get("doc_hash")
            .and_then(Value::as_str)
            .ok_or("phases document has no doc_hash")?;
        let actual = parsed.doc_hash();
        if declared != actual {
            return Err(format!(
                "phases document hash mismatch: declared {declared}, computed {actual}"
            ));
        }
        Ok(parsed)
    }

    /// Checks the plan against the trace it is about to sample.
    ///
    /// # Errors
    ///
    /// A description of the mismatch (record/instruction count drift,
    /// out-of-range slices, inconsistent window bookkeeping).
    pub fn validate(&self, record_count: u64, instruction_count: u64) -> Result<(), String> {
        if self.record_count != record_count {
            return Err(format!(
                "phases document was extracted from a trace with {} records, \
                 this trace has {record_count}",
                self.record_count
            ));
        }
        if self.instruction_count != instruction_count {
            return Err(format!(
                "phases document was extracted from a trace with {} instructions, \
                 this trace has {instruction_count}",
                self.instruction_count
            ));
        }
        if self.assignments.len() != self.num_windows {
            return Err(format!(
                "phases document claims {} windows but assigns {}",
                self.num_windows,
                self.assignments.len()
            ));
        }
        if self.phases.len() != self.clusters {
            return Err(format!(
                "phases document claims {} clusters but lists {} phases",
                self.clusters,
                self.phases.len()
            ));
        }
        for p in &self.phases {
            let end = p.start_record as u64 + p.num_records as u64;
            if end > record_count {
                return Err(format!(
                    "phase for cluster {} ends at record {end}, past the trace",
                    p.cluster
                ));
            }
            if p.representative_window >= self.num_windows.max(1) {
                return Err(format!(
                    "phase for cluster {} names window {} of {}",
                    p.cluster, p.representative_window, self.num_windows
                ));
            }
        }
        Ok(())
    }

    /// Instructions the sampled executor will touch (warmup + measured),
    /// as a fraction of the whole trace.
    pub fn planned_fraction(&self) -> f64 {
        if self.instruction_count == 0 {
            return 0.0;
        }
        let touched: u64 = self
            .phases
            .iter()
            .map(|p| p.instructions + p.warmup_instructions)
            .sum();
        touched as f64 / self.instruction_count as f64
    }
}

/// Extracts a sampling plan from a fully decoded trace: BBV windows,
/// k-means clustering, one representative window per non-empty cluster,
/// with one window of warmup replay before each representative.
///
/// Emits a `simpoint.extract` event instant carrying the window count.
pub fn extract_phases(records: &[BranchRecord], window_size: u64, k: usize) -> PhasesDoc {
    extract_phases_with_warmup(records, window_size, k, 1)
}

/// [`extract_phases`] with an explicit warmup depth: up to `warmup_windows`
/// whole windows immediately preceding each representative are replayed
/// (training only, not measured) before its slice is scored. Long-history
/// predictors (TAGE-, perceptron-family) need more than one window of
/// replay before their tables resemble full-run state; the cost is counted
/// in [`PhasesDoc::planned_fraction`], so callers can trade accuracy
/// against simulated instructions explicitly.
pub fn extract_phases_with_warmup(
    records: &[BranchRecord],
    window_size: u64,
    k: usize,
    warmup_windows: usize,
) -> PhasesDoc {
    let windows = extract_bbv(records, window_size);
    let (assignments, k_used, iterations) = kmeans(&windows, k);
    mbp_stats::events::instant(
        mbp_stats::events::EventName::SimpointExtract,
        windows.len() as u64,
    );
    // One centroid per cluster, recomputed from the final assignment so
    // representative selection matches what the clusterer converged to.
    let mut phases = Vec::new();
    for c in 0..k_used {
        let members: Vec<usize> = (0..windows.len())
            .filter(|&i| assignments[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut centroid = [0.0f64; BBV_FEATURE_DIM];
        for &i in &members {
            for (s, f) in centroid.iter_mut().zip(windows[i].features.iter()) {
                *s += f;
            }
        }
        for s in centroid.iter_mut() {
            *s /= members.len() as f64;
        }
        let mut rep = members[0];
        let mut rep_d = d2(&windows[rep].features, &centroid);
        for &i in &members[1..] {
            let d = d2(&windows[i].features, &centroid);
            if d < rep_d {
                rep_d = d;
                rep = i;
            }
        }
        let w = &windows[rep];
        let (warmup_start_record, warmup_records, warmup_instructions) =
            if rep > 0 && warmup_windows > 0 {
                let first = rep - rep.min(warmup_windows);
                let warm = &windows[first..rep];
                (
                    warm[0].start_record,
                    warm.iter().map(|w| w.num_records).sum(),
                    warm.iter().map(|w| w.instructions).sum(),
                )
            } else {
                (0, 0, 0)
            };
        phases.push(Phase {
            cluster: c,
            representative_window: rep,
            weight: members.len() as f64 / windows.len() as f64,
            windows_in_cluster: members.len(),
            start_record: w.start_record,
            num_records: w.num_records,
            start_instruction: w.start_instruction,
            instructions: w.instructions,
            warmup_start_record,
            warmup_records,
            warmup_instructions,
        });
    }
    let instruction_count: u64 = windows.iter().map(|w| w.instructions).sum();
    PhasesDoc {
        window_size: window_size.max(1),
        feature_dim: BBV_FEATURE_DIM,
        clusters: phases.len(),
        kmeans_iterations: iterations,
        record_count: records.len() as u64,
        instruction_count,
        num_windows: windows.len(),
        assignments,
        phases,
    }
}

/// Outcome of one replayed slice.
struct SliceStats {
    instructions: u64,
    conditional: u64,
    mispredictions: u64,
}

/// Replays `records[start..start+len]` through the predictor with the
/// full per-record call discipline of the scalar driver. When `measured`
/// the mispredictions land in `most_failed`; warmup slices only note
/// static IPs (their counts are still returned for the error estimate).
fn run_slice<P: Predictor + ?Sized>(
    records: &[BranchRecord],
    start: usize,
    len: usize,
    predictor: &mut P,
    most_failed: &mut MostFailed,
    measured: bool,
    config: &SimConfig,
) -> SliceStats {
    let start = start.min(records.len());
    let end = (start + len).min(records.len());
    let mut st = SliceStats {
        instructions: 0,
        conditional: 0,
        mispredictions: 0,
    };
    for rec in &records[start..end] {
        st.instructions += rec.instructions();
        let b = rec.branch;
        if b.is_conditional() {
            let prediction = predictor.predict(b.ip());
            let mispredicted = prediction != b.is_taken();
            st.conditional += 1;
            st.mispredictions += mispredicted as u64;
            if measured {
                most_failed.record(b.ip(), b.is_taken(), mispredicted);
            } else {
                most_failed.note_static(b.ip());
            }
            predictor.train(&b);
        } else {
            most_failed.note_static(b.ip());
        }
        if !config.track_only_conditional || b.is_conditional() {
            predictor.track(&b);
        }
    }
    st
}

/// Simulates only the weighted representative slices of `phases` and
/// reconstructs whole-trace metrics.
///
/// Phases run in trace order through one predictor instance; each
/// representative slice is preceded by a replay of the window immediately
/// before it, so table state at the start of the measured slice is honest
/// (the replay trains and tracks but its mispredictions are not counted).
/// `metrics.mpki` and `metrics.accuracy` are the weight-reconstructed
/// whole-trace estimates; `metrics.mispredictions` is the implied
/// whole-trace count. The rendered result carries a top-level `simpoint`
/// section with the per-phase measurements, the simulated-instruction
/// fraction, and a cross-validation error estimate: each warmup window is
/// itself a cluster member, so the difference between its measured MPKI
/// and its cluster's representative MPKI bounds how well representatives
/// generalize (instruction-weighted mean residual, relative to the
/// reconstructed MPKI).
///
/// Out-of-range slices are clamped, so this never fails on a plan/trace
/// mismatch — callers gate with [`PhasesDoc::validate`] first.
pub fn simulate_sampled<P: Predictor + ?Sized>(
    records: &[BranchRecord],
    predictor: &mut P,
    phases: &PhasesDoc,
    config: &SimConfig,
) -> SimResult {
    let start = Instant::now();
    let stats = mbp_stats::pipeline();
    stats.sim.runs.inc();
    let _run_event = mbp_stats::events::span(mbp_stats::events::EventName::SimSimulate);

    let mut order: Vec<&Phase> = phases.phases.iter().collect();
    order.sort_by_key(|p| p.start_record);

    let mut most_failed = MostFailed::new();
    let mut measured_instr = 0u64;
    let mut replayed_instr = 0u64;
    let mut raw_conditional = 0u64;
    let mut raw_mispredictions = 0u64;
    let mut records_run = 0u64;
    // (phase, measured stats, warmup mpki or None)
    let mut slices: Vec<(&Phase, SliceStats, Option<f64>)> = Vec::with_capacity(order.len());

    for phase in order {
        let warmup = if phase.warmup_records > 0 {
            let w = run_slice(
                records,
                phase.warmup_start_record,
                phase.warmup_records,
                predictor,
                &mut most_failed,
                false,
                config,
            );
            replayed_instr += w.instructions;
            records_run += phase.warmup_records as u64;
            stats.sweep.replayed_instructions.add(w.instructions);
            Some(mpki(w.mispredictions, w.instructions))
        } else {
            None
        };
        let m = run_slice(
            records,
            phase.start_record,
            phase.num_records,
            predictor,
            &mut most_failed,
            true,
            config,
        );
        mbp_stats::events::instant(
            mbp_stats::events::EventName::SimpointSampledSlice,
            phase.representative_window as u64,
        );
        stats.sweep.sampled_slices.inc();
        stats.sweep.sampled_instructions.add(m.instructions);
        measured_instr += m.instructions;
        records_run += phase.num_records as u64;
        raw_conditional += m.conditional;
        raw_mispredictions += m.mispredictions;
        slices.push((phase, m, warmup));
    }

    // Weight-reconstructed whole-trace metrics, fixed phase order.
    let mut recon_mpki = 0.0f64;
    let mut recon_accuracy = 0.0f64;
    let mut weight_sum = 0.0f64;
    for (phase, m, _) in &slices {
        recon_mpki += phase.weight * mpki(m.mispredictions, m.instructions);
        recon_accuracy += phase.weight * accuracy(m.mispredictions, m.conditional);
        weight_sum += phase.weight;
    }
    if weight_sum > 0.0 && (weight_sum - 1.0).abs() > 1e-9 {
        // A plan whose clusters were clamped still reconstructs sanely.
        recon_mpki /= weight_sum;
        recon_accuracy /= weight_sum;
    }

    // Cross-validation error estimate: predict each warmup window's MPKI
    // from its own cluster's representative and compare with what the
    // replay actually measured.
    let cluster_mpki: Vec<(usize, f64)> = slices
        .iter()
        .map(|(phase, m, _)| (phase.cluster, mpki(m.mispredictions, m.instructions)))
        .collect();
    let mut residual_sum = 0.0f64;
    let mut residual_weight = 0.0f64;
    for (phase, _, warmup) in &slices {
        let Some(warmup_mpki) = warmup else { continue };
        if phase.representative_window == 0 {
            continue;
        }
        let warmup_window = phase.representative_window - 1;
        let Some(&cluster) = phases.assignments.get(warmup_window) else {
            continue;
        };
        let Some(&(_, predicted)) = cluster_mpki.iter().find(|(c, _)| *c == cluster) else {
            continue;
        };
        let w = phase.warmup_instructions as f64;
        residual_sum += w * (warmup_mpki - predicted).abs();
        residual_weight += w;
    }
    let error_estimate = if residual_weight > 0.0 {
        (residual_sum / residual_weight) / recon_mpki.max(1e-9)
    } else {
        0.0
    };

    let simulated_fraction = if phases.instruction_count > 0 {
        (measured_instr + replayed_instr) as f64 / phases.instruction_count as f64
    } else {
        0.0
    };

    let sampling = json!({
        "schema_version": PHASES_SCHEMA_VERSION,
        "doc_hash": phases.doc_hash(),
        "window_size": phases.window_size,
        "clusters": phases.clusters as u64,
        "num_windows": phases.num_windows as u64,
        "total_instructions": phases.instruction_count,
        "sampled_instructions": measured_instr,
        "replayed_instructions": replayed_instr,
        "simulated_fraction": simulated_fraction,
        "reconstructed_mpki": recon_mpki,
        "reconstructed_accuracy": recon_accuracy,
        "error_estimate": error_estimate,
        "phases": slices.iter().map(|(phase, m, warmup)| json!({
            "cluster": phase.cluster as u64,
            "representative_window": phase.representative_window as u64,
            "weight": phase.weight,
            "instructions": m.instructions,
            "conditional_branches": m.conditional,
            "mispredictions": m.mispredictions,
            "mpki": mpki(m.mispredictions, m.instructions),
            "warmup_instructions": phase.warmup_instructions,
            "warmup_mpki": warmup.unwrap_or(0.0),
        })).collect::<Vec<_>>(),
    });

    let elapsed = start.elapsed();
    stats.sim.records.add(records_run);
    stats.sim.instructions.add(measured_instr + replayed_instr);
    stats.sim.scalar_fallback_branches.add(records_run);
    stats
        .sim
        .simulate
        .record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));

    let implied_mispredictions = (recon_mpki * phases.instruction_count as f64 / 1000.0).round();
    SimResult {
        metadata: SimMetadata {
            simulator: crate::SIMULATOR_NAME,
            version: crate::SIMULATOR_VERSION,
            trace: Value::from("in-memory trace"),
            warmup_instr: replayed_instr,
            simulation_instr: measured_instr,
            exhausted_trace: true,
            num_conditional_branches: raw_conditional,
            num_branch_instructions: most_failed.distinct_branches(),
            track_only_conditional: config.track_only_conditional,
            predictor: predictor.metadata(),
        },
        metrics: Metrics {
            mpki: recon_mpki,
            mispredictions: implied_mispredictions as u64,
            accuracy: recon_accuracy,
            num_most_failed_branches: most_failed.half_coverage_count(raw_mispredictions),
            simulation_time: elapsed.as_secs_f64(),
        },
        predictor_statistics: predictor.execution_statistics(),
        most_failed: most_failed.top(config.most_failed_limit, measured_instr),
        branch_taxonomy: most_failed.taxonomy(),
        timeseries: None,
        table_probes: if config.collect_probes {
            predictor.table_probes()
        } else {
            Vec::new()
        },
        sampling: Some(sampling),
        forensics: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbp_json::json;
    use mbp_trace::{Branch, Opcode};

    /// Tiny deterministic PRNG (xorshift64) — no external dependencies.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn cond(ip: u64, taken: bool, gap: u32) -> BranchRecord {
        BranchRecord::new(
            Branch::new(ip, 0x9000, Opcode::conditional_direct(), taken),
            gap,
        )
    }

    /// A trace alternating between two distinct branch working sets, so
    /// the clusterer has real phases to find.
    fn phase_heavy_trace(n: usize) -> Vec<BranchRecord> {
        let mut rng = Rng(0x5eed);
        (0..n)
            .map(|i| {
                let phase = (i / 100) % 2;
                let base = if phase == 0 { 0x1000 } else { 0x8_0000 };
                let ip = base + (rng.next() % 16) * 8;
                cond(ip, !rng.next().is_multiple_of(3), 9)
            })
            .collect()
    }

    struct Taken;
    impl Predictor for Taken {
        fn predict(&mut self, _ip: u64) -> bool {
            true
        }
        fn train(&mut self, _b: &Branch) {}
        fn track(&mut self, _b: &Branch) {}
        fn metadata(&self) -> Value {
            json!({"name": "taken"})
        }
    }

    #[test]
    fn extraction_is_deterministic_across_runs() {
        let recs = phase_heavy_trace(1000);
        let a = extract_phases(&recs, 500, 4);
        let b = extract_phases(&recs, 500, 4);
        assert_eq!(a, b);
        assert_eq!(a.doc_hash(), b.doc_hash());
    }

    #[test]
    fn every_window_is_assigned_to_exactly_one_cluster() {
        let recs = phase_heavy_trace(1000);
        let doc = extract_phases(&recs, 500, 4);
        assert_eq!(doc.assignments.len(), doc.num_windows);
        let k_used = 4.min(doc.num_windows);
        for &a in &doc.assignments {
            assert!(a < k_used, "assignment {a} out of range");
        }
        // Every assigned cluster has a phase entry.
        for &a in &doc.assignments {
            assert!(
                doc.phases.iter().any(|p| p.cluster == a),
                "cluster {a} has members but no phase"
            );
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for k in [1, 2, 4, 7] {
            let recs = phase_heavy_trace(900);
            let doc = extract_phases(&recs, 300, k);
            let total: f64 = doc.phases.iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k}: weights sum to {total}");
        }
    }

    #[test]
    fn degenerate_inputs_never_panic() {
        // Empty trace.
        let doc = extract_phases(&[], 100, 4);
        assert_eq!(doc.num_windows, 0);
        assert!(doc.phases.is_empty());
        // One window.
        let recs = vec![cond(0x10, true, 9); 3];
        let doc = extract_phases(&recs, 1_000_000, 4);
        assert_eq!(doc.num_windows, 1);
        assert_eq!(doc.phases.len(), 1);
        assert_eq!(doc.phases[0].weight, 1.0);
        // All-identical windows.
        let recs = vec![cond(0x10, true, 9); 100];
        let doc = extract_phases(&recs, 50, 8);
        let total: f64 = doc.phases.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // k far larger than the number of windows.
        let recs = phase_heavy_trace(40);
        let doc = extract_phases(&recs, 100, 64);
        assert!(doc.clusters <= doc.num_windows);
        // Zero window size is clamped, not divided by.
        let doc = extract_phases(&recs, 0, 2);
        assert!(doc.window_size >= 1);
    }

    #[test]
    fn windows_tile_the_whole_trace() {
        let recs = phase_heavy_trace(777);
        let windows = extract_bbv(&recs, 430);
        let records: usize = windows.iter().map(|w| w.num_records).sum();
        assert_eq!(records, recs.len());
        let instrs: u64 = windows.iter().map(|w| w.instructions).sum();
        let expected: u64 = recs.iter().map(|r| r.instructions()).sum();
        assert_eq!(instrs, expected);
        // Contiguous, in order.
        let mut next = 0usize;
        for w in &windows {
            assert_eq!(w.start_record, next);
            next += w.num_records;
            let sum: f64 = w.features.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "BBV is L1-normalized");
        }
    }

    #[test]
    fn document_round_trips_and_detects_tampering() {
        let recs = phase_heavy_trace(600);
        let doc = extract_phases(&recs, 200, 3);
        let rendered = doc.to_json();
        assert_eq!(
            rendered.get("schema_version").and_then(Value::as_u64),
            Some(PHASES_SCHEMA_VERSION)
        );
        let parsed = PhasesDoc::from_json(&rendered).expect("round trip");
        assert_eq!(parsed, doc);
        // Tampered body fails the hash check.
        let mut tampered = rendered.clone();
        if let Some(obj) = tampered.as_object_mut() {
            obj.insert("window_size", 999u64);
        }
        assert!(PhasesDoc::from_json(&tampered)
            .unwrap_err()
            .contains("hash mismatch"));
        // Unknown schema version is rejected before anything else.
        let mut vnext = rendered.clone();
        if let Some(obj) = vnext.as_object_mut() {
            obj.insert("schema_version", 2u64);
        }
        assert!(PhasesDoc::from_json(&vnext)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn validate_rejects_a_different_trace() {
        let recs = phase_heavy_trace(600);
        let doc = extract_phases(&recs, 200, 3);
        assert!(doc.validate(600, doc.instruction_count).is_ok());
        assert!(doc.validate(601, doc.instruction_count).is_err());
        assert!(doc.validate(600, doc.instruction_count + 1).is_err());
    }

    #[test]
    fn sampled_simulation_reports_reconstruction() {
        let recs = phase_heavy_trace(1000);
        let doc = extract_phases(&recs, 1000, 4);
        let r = simulate_sampled(&recs, &mut Taken, &doc, &SimConfig::default());
        let sampling = r.sampling.expect("sampled runs carry a simpoint section");
        let fraction = sampling
            .get("simulated_fraction")
            .and_then(Value::as_f64)
            .expect("fraction");
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction}");
        assert_eq!(
            sampling.get("doc_hash").and_then(Value::as_str),
            Some(doc.doc_hash().as_str())
        );
        assert!(r.metrics.mpki > 0.0, "always-taken mispredicts sometimes");
        // Deterministic: a second run is identical.
        let r2 = simulate_sampled(&recs, &mut Taken, &doc, &SimConfig::default());
        assert_eq!(r.metrics.mpki, r2.metrics.mpki);
        assert_eq!(
            r2.sampling.unwrap().to_compact_string(),
            sampling.to_compact_string()
        );
    }

    #[test]
    fn planned_fraction_matches_executed_fraction() {
        let recs = phase_heavy_trace(2000);
        let doc = extract_phases(&recs, 1000, 4);
        let r = simulate_sampled(&recs, &mut Taken, &doc, &SimConfig::default());
        let executed = r
            .sampling
            .unwrap()
            .get("simulated_fraction")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((doc.planned_fraction() - executed).abs() < 1e-9);
    }
}
