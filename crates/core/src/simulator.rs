//! The standard simulator: replay a trace through one predictor.

use std::time::Instant;

use mbp_json::Value;
use mbp_trace::TraceError;

use crate::forensics::{Forensics, ForensicsConfig};
use crate::metrics::{accuracy, mpki, BranchStat, BranchTaxonomy, Metrics, MostFailed};
use crate::timeseries::{TimeSeries, TimeSeriesBuilder};
use crate::{PredictionBits, Predictor, TableProbe, TraceSource};

/// Configuration of a simulation run.
///
/// # Examples
///
/// ```
/// use mbp_core::SimConfig;
///
/// let cfg = SimConfig {
///     warmup_instructions: 10_000_000,
///     max_instructions: Some(100_000_000),
///     ..SimConfig::default()
/// };
/// assert!(cfg.max_instructions.is_some());
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Instructions whose mispredictions are not counted (§IV-C: "run only
    /// the first n instructions as warm-up").
    pub warmup_instructions: u64,
    /// Stop after this many instructions (`None` = exhaust the trace); the
    /// "first 100 million instructions" methodology of §VII-A.
    pub max_instructions: Option<u64>,
    /// Call `track` only for conditional branches (some predictors ignore
    /// unconditional flow; recorded in the output metadata as in Listing 1).
    pub track_only_conditional: bool,
    /// Maximum entries in the `most_failed` report.
    pub most_failed_limit: usize,
    /// Accumulate windowed time-series telemetry with this window size in
    /// instructions (`None` — the default — disables the telemetry and
    /// keeps the batched driver on its per-batch steady-state fast path).
    pub timeseries_window: Option<u64>,
    /// Capture the predictor's [`TableProbe`] reports at the end of the
    /// run (the `--introspect` flag). Off by default; probes are read once
    /// from the final table state, so this never touches the record loop.
    pub collect_probes: bool,
    /// Accumulate per-branch misprediction forensics (the `mbpsim explain`
    /// subcommand). Like the timeseries, enabling this needs per-record
    /// attribution and pins the run to the scalar fallback loop; the
    /// default `None` keeps results and throughput bit-identical to a
    /// build without forensics.
    pub forensics: Option<ForensicsConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup_instructions: 0,
            max_instructions: None,
            track_only_conditional: false,
            most_failed_limit: 20,
            timeseries_window: None,
            collect_probes: false,
            forensics: None,
        }
    }
}

/// The `metadata` section of a result (Listing 1).
#[derive(Clone, Debug)]
pub struct SimMetadata {
    /// Simulator identification.
    pub simulator: &'static str,
    /// Simulator version.
    pub version: &'static str,
    /// Trace description from the source.
    pub trace: Value,
    /// Warm-up instructions configured.
    pub warmup_instr: u64,
    /// Instructions actually simulated (measured window, after warm-up).
    pub simulation_instr: u64,
    /// Whether the trace ended before `max_instructions` was reached.
    pub exhausted_trace: bool,
    /// Dynamic conditional branches measured.
    pub num_conditional_branches: u64,
    /// Distinct static branch instructions observed.
    pub num_branch_instructions: u64,
    /// Whether `track` was limited to conditional branches.
    pub track_only_conditional: bool,
    /// The predictor's self-description.
    pub predictor: Value,
}

/// The complete outcome of a simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The `metadata` section.
    pub metadata: SimMetadata,
    /// The `metrics` section.
    pub metrics: Metrics,
    /// The predictor's `predictor_statistics` section.
    pub predictor_statistics: Value,
    /// The `most_failed` section.
    pub most_failed: Vec<BranchStat>,
    /// Per-branch misprediction characterization (rendered under
    /// `metrics.branch_taxonomy`).
    pub branch_taxonomy: BranchTaxonomy,
    /// Windowed telemetry (rendered under `metrics.timeseries`); present
    /// only when [`SimConfig::timeseries_window`] was set.
    pub timeseries: Option<TimeSeries>,
    /// Table-health probes (rendered as the `introspection` section);
    /// empty unless [`SimConfig::collect_probes`] was set.
    pub table_probes: Vec<TableProbe>,
    /// Phase-sampling report (rendered as the top-level `simpoint`
    /// section); present only on results produced by
    /// [`simulate_sampled`](crate::simulate_sampled).
    pub sampling: Option<Value>,
    /// Misprediction forensic report (rendered as the top-level
    /// `forensics` section); present only when
    /// [`SimConfig::forensics`] was set.
    pub forensics: Option<Value>,
}

/// Per-record bookkeeping shared by the batched and scalar drivers.
struct SimState {
    instructions: u64,
    measured_instructions: u64,
    conditional: u64,
    mispredictions: u64,
    most_failed: MostFailed,
    exhausted: bool,
    timeseries: Option<TimeSeriesBuilder>,
    forensics: Option<Forensics>,
}

impl SimState {
    fn new(config: &SimConfig) -> Self {
        Self {
            instructions: 0,
            measured_instructions: 0,
            conditional: 0,
            mispredictions: 0,
            most_failed: MostFailed::new(),
            exhausted: true,
            timeseries: config.timeseries_window.map(TimeSeriesBuilder::new),
            forensics: config.forensics.as_ref().map(Forensics::new),
        }
    }

    fn into_result<S, P>(
        self,
        trace: &S,
        predictor: &P,
        config: &SimConfig,
        simulation_time: f64,
    ) -> SimResult
    where
        S: TraceSource + ?Sized,
        P: Predictor + ?Sized,
    {
        let timeseries = self.timeseries.map(|b| b.finish(self.instructions));
        let forensics = self
            .forensics
            .as_ref()
            .map(|f| f.report(self.measured_instructions));
        SimResult {
            metadata: SimMetadata {
                simulator: crate::SIMULATOR_NAME,
                version: crate::SIMULATOR_VERSION,
                trace: trace.description(),
                warmup_instr: config.warmup_instructions,
                simulation_instr: self.measured_instructions,
                exhausted_trace: self.exhausted,
                num_conditional_branches: self.conditional,
                num_branch_instructions: self.most_failed.distinct_branches(),
                track_only_conditional: config.track_only_conditional,
                predictor: predictor.metadata(),
            },
            metrics: Metrics {
                mpki: mpki(self.mispredictions, self.measured_instructions),
                mispredictions: self.mispredictions,
                accuracy: accuracy(self.mispredictions, self.conditional),
                num_most_failed_branches: self.most_failed.half_coverage_count(self.mispredictions),
                simulation_time,
            },
            predictor_statistics: predictor.execution_statistics(),
            most_failed: self
                .most_failed
                .top(config.most_failed_limit, self.measured_instructions),
            branch_taxonomy: self.most_failed.taxonomy(),
            timeseries,
            table_probes: if config.collect_probes {
                predictor.table_probes()
            } else {
                Vec::new()
            },
            sampling: None,
            forensics,
        }
    }
}

/// Runs `predictor` over `trace`, pulling records in decoded blocks.
///
/// For every record: the instruction counter advances by the record's gap
/// plus one; conditional branches are predicted and trained; all branches
/// are tracked (unless [`SimConfig::track_only_conditional`]). Mispredictions
/// are only counted once the warm-up window has elapsed.
///
/// The trace is consumed through [`TraceSource::fill_batch`], so the source
/// decodes whole struct-of-arrays blocks into one reusable
/// [`BranchBatch`](mbp_trace::BranchBatch) instead of answering a virtual
/// call per record. In steady state (warm-up elapsed, no cut-off, no
/// timeseries) each block is handed to [`Predictor::predict_batch`] — one
/// virtual call per 2048 records, with vectorized kernels for the table
/// predictors — and the driver scores the returned prediction bits against
/// the batch's outcome column. Results are identical to [`simulate_scalar`]
/// (the one-record-at-a-time reference driver) on any source whose
/// `fill_batch` agrees with its `next_record` stream; the driver-equivalence
/// suite pins this byte-for-byte.
///
/// # Errors
///
/// Propagates trace decoding errors; the predictor cannot fail.
pub fn simulate<S, P>(
    trace: &mut S,
    predictor: &mut P,
    config: &SimConfig,
) -> Result<SimResult, TraceError>
where
    S: TraceSource + ?Sized,
    P: Predictor + ?Sized,
{
    let start = Instant::now();
    let stats = &mbp_stats::pipeline().sim;
    stats.runs.inc();
    // The run span closes when this guard drops — also during an unwind, so
    // a predictor panicking under a sweep's `catch_unwind` still pairs its
    // begin event with an end event.
    let _run_event = mbp_stats::events::span(mbp_stats::events::EventName::SimSimulate);
    let mut st = SimState::new(config);
    let mut records = 0u64;
    let mut kernel_records = 0u64;
    let mut fallback_records = 0u64;
    let mut batch = mbp_trace::BranchBatch::new();
    let mut predictions = PredictionBits::new();

    'trace: loop {
        // Time the decode share separately from the whole run; one span per
        // 2048-record block keeps the instrumentation off the record loop.
        let got = {
            let _span = stats.fill_batch.span();
            let _event = mbp_stats::events::span(mbp_stats::events::EventName::SimFillBatch);
            trace.fill_batch(&mut batch)?
        };
        // Per-batch heartbeat: every N-th batch samples the pipeline gauges
        // into the event journal (throughput-over-time curves).
        mbp_stats::events::batch_tick();
        if got == 0 {
            break;
        }
        records += got as u64;
        // Steady state: once warm-up has elapsed and no cut-off is set,
        // every record of the batch is measured, so the whole block goes
        // through `predict_batch` (the kernel fast path) and the per-record
        // window checks disappear. Any record advances the counter by at
        // least one instruction, so `instructions >= warmup` here implies
        // `instructions > warmup` after each record below. Timeseries
        // accumulation needs per-record attribution, so it pins the run to
        // the slow loop; the check is per batch, keeping the default
        // (disabled) configuration at zero per-record cost.
        if config.max_instructions.is_none()
            && st.instructions >= config.warmup_instructions
            && st.timeseries.is_none()
            && st.forensics.is_none()
        {
            kernel_records += got as u64;
            predictions.clear();
            predictor.predict_batch(&batch, config.track_only_conditional, &mut predictions);
            // Bookkeeping over the columns: the predictor already consumed
            // the batch, so this loop touches only pcs/gaps/taken/ops (the
            // targets column stays cold) and never calls through the
            // predictor vtable.
            let (pcs, gaps, taken, ops) = (
                &batch.pcs()[..got],
                &batch.gaps()[..got],
                &batch.taken()[..got],
                &batch.ops()[..got],
            );
            // Instruction totals vectorize as one reduction over the gaps
            // column; the remaining loop keeps its running counters in
            // locals so only the per-branch tables see memory traffic.
            let advanced: u64 = gaps.iter().map(|&g| g as u64).sum::<u64>() + got as u64;
            st.instructions += advanced;
            st.measured_instructions += advanced;
            let (mut conditional, mut mispredictions) = (0u64, 0u64);
            let mut bit = 0usize;
            for i in 0..got {
                if ops[i] & 0b1 != 0 {
                    let outcome = taken[i] != 0;
                    let mispredicted = predictions.get(bit) != outcome;
                    bit += 1;
                    conditional += 1;
                    mispredictions += mispredicted as u64;
                    st.most_failed.record(pcs[i], outcome, mispredicted);
                } else {
                    st.most_failed.note_static(pcs[i]);
                }
            }
            st.conditional += conditional;
            st.mispredictions += mispredictions;
            continue;
        }
        fallback_records += got as u64;
        for i in 0..got {
            if let Some(max) = config.max_instructions {
                if st.instructions >= max {
                    // A record exists beyond the cut-off, so the trace was
                    // not exhausted — same contract as the scalar driver,
                    // which pulls (but does not process) one more record.
                    st.exhausted = false;
                    break 'trace;
                }
            }
            let rec = batch.record(i);
            st.instructions += rec.instructions();
            let in_measurement = st.instructions > config.warmup_instructions;
            if in_measurement {
                st.measured_instructions += rec.instructions();
            }
            let b = rec.branch;
            if b.is_conditional() {
                let prediction = predictor.predict(b.ip());
                let mispredicted = prediction != b.is_taken();
                if let Some(ts) = st.timeseries.as_mut() {
                    // Warmup branches are recorded too: seeing the warmup
                    // transient is the point of the series.
                    ts.branch(b.ip(), b.is_taken(), mispredicted);
                }
                if in_measurement {
                    st.conditional += 1;
                    st.mispredictions += mispredicted as u64;
                    st.most_failed.record(b.ip(), b.is_taken(), mispredicted);
                } else {
                    st.most_failed.note_static(b.ip());
                }
                predictor.train(&b);
                if in_measurement {
                    if let Some(f) = st.forensics.as_mut() {
                        // Blame is only valid right after a mispredicted
                        // branch's train call, which is exactly where we are.
                        let blame = if mispredicted {
                            predictor.last_mispredict_blame()
                        } else {
                            None
                        };
                        f.record(b.ip(), b.is_taken(), mispredicted, blame);
                    }
                }
            } else {
                st.most_failed.note_static(b.ip());
            }
            if !config.track_only_conditional || b.is_conditional() {
                predictor.track(&b);
            }
            if let Some(ts) = st.timeseries.as_mut() {
                ts.advance(st.instructions);
            }
        }
    }

    let elapsed = start.elapsed();
    stats.records.add(records);
    stats.instructions.add(st.instructions);
    stats.kernel_branches.add(kernel_records);
    stats.scalar_fallback_branches.add(fallback_records);
    // One instant per run: how much of it rode the kernel path (0 = the run
    // never left the fallback). Visible in Chrome traces next to the run's
    // `sim.simulate` span.
    mbp_stats::events::instant(
        mbp_stats::events::EventName::SimKernelBranches,
        kernel_records,
    );
    stats
        .simulate
        .record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    Ok(st.into_result(trace, predictor, config, elapsed.as_secs_f64()))
}

/// The one-record-at-a-time reference driver.
///
/// Processes the trace through [`TraceSource::next_record`] exactly as
/// [`simulate`] does through [`TraceSource::fill_batch`]; the two must
/// produce identical results (the equivalence test suite pins this). Kept
/// as the semantic baseline and for sources whose batch path is not
/// trustworthy while debugging.
///
/// # Errors
///
/// Propagates trace decoding errors; the predictor cannot fail.
pub fn simulate_scalar<S, P>(
    trace: &mut S,
    predictor: &mut P,
    config: &SimConfig,
) -> Result<SimResult, TraceError>
where
    S: TraceSource + ?Sized,
    P: Predictor + ?Sized,
{
    let start = Instant::now();
    let stats = &mbp_stats::pipeline().sim;
    stats.runs.inc();
    let _run_event = mbp_stats::events::span(mbp_stats::events::EventName::SimSimulate);
    let mut records = 0u64;
    let mut instructions = 0u64;
    let mut measured_instructions = 0u64;
    let mut conditional = 0u64;
    let mut mispredictions = 0u64;
    let mut most_failed = MostFailed::new();
    let mut exhausted = true;
    let mut ts_builder = config.timeseries_window.map(TimeSeriesBuilder::new);
    let mut forensics = config.forensics.as_ref().map(Forensics::new);

    while let Some(rec) = trace.next_record()? {
        records += 1;
        if let Some(max) = config.max_instructions {
            if instructions >= max {
                exhausted = false;
                break;
            }
        }
        instructions += rec.instructions();
        let in_measurement = instructions > config.warmup_instructions;
        if in_measurement {
            measured_instructions += rec.instructions();
        }
        let b = rec.branch;
        if b.is_conditional() {
            let prediction = predictor.predict(b.ip());
            let mispredicted = prediction != b.is_taken();
            if let Some(ts) = ts_builder.as_mut() {
                ts.branch(b.ip(), b.is_taken(), mispredicted);
            }
            if in_measurement {
                conditional += 1;
                mispredictions += mispredicted as u64;
                most_failed.record(b.ip(), b.is_taken(), mispredicted);
            } else {
                most_failed.note_static(b.ip());
            }
            predictor.train(&b);
            if in_measurement {
                if let Some(f) = forensics.as_mut() {
                    let blame = if mispredicted {
                        predictor.last_mispredict_blame()
                    } else {
                        None
                    };
                    f.record(b.ip(), b.is_taken(), mispredicted, blame);
                }
            }
        } else {
            most_failed.note_static(b.ip());
        }
        if !config.track_only_conditional || b.is_conditional() {
            predictor.track(&b);
        }
        if let Some(ts) = ts_builder.as_mut() {
            ts.advance(instructions);
        }
    }

    let elapsed = start.elapsed();
    stats.records.add(records);
    stats.instructions.add(instructions);
    stats.scalar_fallback_branches.add(records);
    stats
        .simulate
        .record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    let simulation_time = elapsed.as_secs_f64();
    Ok(SimResult {
        metadata: SimMetadata {
            simulator: crate::SIMULATOR_NAME,
            version: crate::SIMULATOR_VERSION,
            trace: trace.description(),
            warmup_instr: config.warmup_instructions,
            simulation_instr: measured_instructions,
            exhausted_trace: exhausted,
            num_conditional_branches: conditional,
            num_branch_instructions: most_failed.distinct_branches(),
            track_only_conditional: config.track_only_conditional,
            predictor: predictor.metadata(),
        },
        metrics: Metrics {
            mpki: mpki(mispredictions, measured_instructions),
            mispredictions,
            accuracy: accuracy(mispredictions, conditional),
            num_most_failed_branches: most_failed.half_coverage_count(mispredictions),
            simulation_time,
        },
        predictor_statistics: predictor.execution_statistics(),
        most_failed: most_failed.top(config.most_failed_limit, measured_instructions),
        branch_taxonomy: most_failed.taxonomy(),
        timeseries: ts_builder.map(|b| b.finish(instructions)),
        table_probes: if config.collect_probes {
            predictor.table_probes()
        } else {
            Vec::new()
        },
        sampling: None,
        forensics: forensics.map(|f| f.report(measured_instructions)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SliceSource;
    use mbp_json::json;
    use mbp_trace::{Branch, BranchRecord, Opcode};

    /// Predicts taken; counts interface calls.
    #[derive(Default)]
    struct Spy {
        predicts: u64,
        trains: u64,
        tracks: u64,
    }

    impl Predictor for Spy {
        fn predict(&mut self, _ip: u64) -> bool {
            self.predicts += 1;
            true
        }
        fn train(&mut self, _b: &Branch) {
            self.trains += 1;
        }
        fn track(&mut self, _b: &Branch) {
            self.tracks += 1;
        }
        fn metadata(&self) -> Value {
            json!({"name": "spy"})
        }
        fn execution_statistics(&self) -> Value {
            json!({"tracks": self.tracks})
        }
    }

    fn cond(ip: u64, taken: bool, gap: u32) -> BranchRecord {
        BranchRecord::new(
            Branch::new(ip, 0x9000, Opcode::conditional_direct(), taken),
            gap,
        )
    }

    fn uncond(ip: u64, gap: u32) -> BranchRecord {
        BranchRecord::new(
            Branch::new(ip, 0x9000, Opcode::unconditional_direct(), true),
            gap,
        )
    }

    #[test]
    fn call_discipline_matches_paper() {
        // train before track, train only for conditional, track for all.
        let recs = vec![cond(0x10, true, 0), uncond(0x20, 0), cond(0x10, false, 0)];
        let mut spy = Spy::default();
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut spy,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(spy.predicts, 2);
        assert_eq!(spy.trains, 2);
        assert_eq!(spy.tracks, 3);
        assert_eq!(r.metadata.num_conditional_branches, 2);
        assert_eq!(r.metadata.num_branch_instructions, 2, "distinct static ips");
        assert_eq!(r.metrics.mispredictions, 1);
        assert_eq!(r.metrics.accuracy, 0.5);
    }

    #[test]
    fn track_only_conditional_skips_unconditional() {
        let recs = vec![cond(0x10, true, 0), uncond(0x20, 0)];
        let mut spy = Spy::default();
        let cfg = SimConfig {
            track_only_conditional: true,
            ..SimConfig::default()
        };
        let r = simulate(&mut SliceSource::new(&recs), &mut spy, &cfg).unwrap();
        assert_eq!(spy.tracks, 1);
        assert!(r.metadata.track_only_conditional);
    }

    #[test]
    fn warmup_excludes_early_mispredictions() {
        // Each record advances 10 instructions; warm up past the first two.
        let recs = vec![
            cond(0x10, false, 9), // would mispredict, but in warm-up
            cond(0x10, false, 9),
            cond(0x10, false, 9), // measured
        ];
        let cfg = SimConfig {
            warmup_instructions: 20,
            ..SimConfig::default()
        };
        let mut spy = Spy::default();
        let r = simulate(&mut SliceSource::new(&recs), &mut spy, &cfg).unwrap();
        assert_eq!(spy.trains, 3, "training happens during warm-up too");
        assert_eq!(r.metrics.mispredictions, 1);
        assert_eq!(r.metadata.simulation_instr, 10);
        assert_eq!(r.metrics.mpki, 100.0);
    }

    #[test]
    fn max_instructions_stops_early() {
        let recs: Vec<_> = (0..100).map(|i| cond(0x10 + i, true, 9)).collect();
        let cfg = SimConfig {
            max_instructions: Some(50),
            ..SimConfig::default()
        };
        let mut spy = Spy::default();
        let r = simulate(&mut SliceSource::new(&recs), &mut spy, &cfg).unwrap();
        assert!(!r.metadata.exhausted_trace);
        assert_eq!(r.metadata.simulation_instr, 50);
        assert_eq!(spy.predicts, 5);
    }

    #[test]
    fn exhausted_flag_set_when_trace_ends() {
        let recs = vec![cond(0x10, true, 0)];
        let mut spy = Spy::default();
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut spy,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(r.metadata.exhausted_trace);
    }

    #[test]
    fn predictor_sections_embedded() {
        let recs = vec![cond(0x10, true, 0)];
        let mut spy = Spy::default();
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut spy,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.metadata.predictor["name"], Value::from("spy"));
        assert_eq!(r.predictor_statistics["tracks"], Value::from(1));
    }

    #[test]
    fn most_failed_populated() {
        let recs = vec![
            cond(0x10, false, 0),
            cond(0x10, false, 0),
            cond(0x20, true, 0),
        ];
        let mut spy = Spy::default();
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut spy,
            &SimConfig::default(),
        )
        .unwrap();
        assert_eq!(r.metrics.num_most_failed_branches, 1);
        assert_eq!(r.most_failed[0].ip, 0x10);
        assert_eq!(r.most_failed[0].mispredictions, 2);
        assert_eq!(r.most_failed[0].occurrences, 2);
    }

    #[test]
    fn timeseries_and_probes_off_by_default() {
        let recs = vec![cond(0x10, true, 9)];
        let mut spy = Spy::default();
        let r = simulate(
            &mut SliceSource::new(&recs),
            &mut spy,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(r.timeseries.is_none());
        assert!(r.table_probes.is_empty());
    }

    #[test]
    fn timeseries_buckets_the_run_and_includes_warmup() {
        // 6 records x 10 instructions, window 20 => 3 windows of 2 branches.
        let recs: Vec<_> = (0..6).map(|i| cond(0x10, i % 2 == 0, 9)).collect();
        let cfg = SimConfig {
            warmup_instructions: 20,
            timeseries_window: Some(20),
            ..SimConfig::default()
        };
        let mut spy = Spy::default();
        let r = simulate(&mut SliceSource::new(&recs), &mut spy, &cfg).unwrap();
        let ts = r.timeseries.expect("enabled");
        assert_eq!(ts.window_size, 20);
        assert_eq!(ts.windows.len(), 3);
        for w in &ts.windows {
            assert_eq!(w.instructions, 20);
            assert_eq!(w.conditional, 2, "warmup branches are in the series");
            assert_eq!(w.mispredictions, 1, "spy predicts taken");
            assert_eq!(w.unique_branches, 1);
        }
        // Aggregate metrics still exclude warmup.
        assert_eq!(r.metadata.simulation_instr, 40);
        assert_eq!(r.metrics.mispredictions, 2);
    }

    #[test]
    fn probes_collected_when_requested() {
        struct Probed;
        impl Predictor for Probed {
            fn predict(&mut self, _ip: u64) -> bool {
                true
            }
            fn train(&mut self, _b: &Branch) {}
            fn track(&mut self, _b: &Branch) {}
            fn table_probes(&self) -> Vec<crate::TableProbe> {
                vec![crate::TableProbe::new("t", 4)]
            }
        }
        let recs = vec![cond(0x10, true, 0)];
        let cfg = SimConfig {
            collect_probes: true,
            ..SimConfig::default()
        };
        let r = simulate(&mut SliceSource::new(&recs), &mut Probed, &cfg).unwrap();
        assert_eq!(r.table_probes.len(), 1);
        assert_eq!(r.table_probes[0].name, "t");
    }
}
