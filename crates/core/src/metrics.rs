//! Metric accumulation: MPKI, accuracy and the most-failed-branches report.

use std::collections::HashMap;

use mbp_utils::FastHashBuilder;

/// Aggregate metrics of a simulation (the `metrics` section of Listing 1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Mispredictions per kilo-instruction over the measured window.
    pub mpki: f64,
    /// Mispredicted conditional branches (post-warmup).
    pub mispredictions: u64,
    /// Correct predictions / measured conditional branches.
    pub accuracy: f64,
    /// Minimum number of static branches that account, on their own, for
    /// half of all mispredictions.
    pub num_most_failed_branches: u64,
    /// Wall-clock simulation time in seconds.
    pub simulation_time: f64,
}

/// Per-static-branch statistics (an entry of the `most_failed` list).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchStat {
    /// Address of the branch instruction.
    pub ip: u64,
    /// Measured dynamic occurrences.
    pub occurrences: u64,
    /// Mispredictions attributed to this branch.
    pub mispredictions: u64,
    /// This branch's contribution to MPKI.
    pub mpki: f64,
    /// Prediction accuracy on this branch alone.
    pub accuracy: f64,
}

/// Direct-mapped cache slots in front of the per-branch hash map. Static
/// branch working sets are small (hundreds to a few thousand ips), so
/// almost every dynamic occurrence hits its slot and costs two additions
/// instead of a hash-map probe — this accumulator sits on the simulator's
/// per-record hot path.
const SLOT_BITS: u32 = 11;
const SLOT_COUNT: usize = 1 << SLOT_BITS;
/// Branch addresses are below 2^51 (SBBT packet layout), so `u64::MAX`
/// can mark an empty slot.
const EMPTY: u64 = u64::MAX;

#[derive(Clone, Copy, Debug)]
struct Slot {
    ip: u64,
    occurrences: u64,
    mispredictions: u64,
}

const EMPTY_SLOT: Slot = Slot {
    ip: EMPTY,
    occurrences: 0,
    mispredictions: 0,
};

/// Accumulates per-branch outcomes and derives the most-failed report.
///
/// Counts live in a direct-mapped slot array while a branch stays hot;
/// conflicting branches spill into the hash map and are merged back when a
/// report is derived, so totals are exact regardless of collisions.
#[derive(Clone, Debug)]
pub struct MostFailed {
    slots: Box<[Slot; SLOT_COUNT]>,
    spilled: HashMap<u64, (u64, u64), FastHashBuilder>,
}

impl Default for MostFailed {
    fn default() -> Self {
        Self {
            slots: Box::new([EMPTY_SLOT; SLOT_COUNT]),
            spilled: HashMap::default(),
        }
    }
}

#[inline]
fn slot_index(ip: u64) -> usize {
    // Fibonacci hashing: one multiply, top bits as the index.
    (ip.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SLOT_BITS)) as usize
}

impl MostFailed {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measured conditional branch.
    #[inline]
    pub fn record(&mut self, ip: u64, mispredicted: bool) {
        let index = slot_index(ip);
        if self.slots[index].ip != ip {
            self.claim(index, ip);
        }
        let slot = &mut self.slots[index];
        slot.occurrences += 1;
        slot.mispredictions += mispredicted as u64;
    }

    /// Notes a static branch address without attributing an outcome
    /// (unconditional branches, or warm-up occurrences).
    #[inline]
    pub fn note_static(&mut self, ip: u64) {
        let index = slot_index(ip);
        if self.slots[index].ip != ip {
            self.claim(index, ip);
        }
    }

    /// Evicts whatever occupies `index` into the spill map and claims the
    /// slot for `ip` with zeroed counts.
    #[cold]
    fn claim(&mut self, index: usize, ip: u64) {
        let slot = &mut self.slots[index];
        if slot.ip != EMPTY {
            let e = self.spilled.entry(slot.ip).or_insert((0, 0));
            e.0 += slot.occurrences;
            e.1 += slot.mispredictions;
        }
        *slot = Slot {
            ip,
            occurrences: 0,
            mispredictions: 0,
        };
        // Spilled branches must keep their map entry even if they never
        // return, so note_static semantics survive eviction; the new
        // occupant gets its entry from the merge at report time.
        self.spilled.entry(ip).or_insert((0, 0));
    }

    /// Merges live slots and spilled entries into exact per-branch totals.
    fn merged(&self) -> HashMap<u64, (u64, u64), FastHashBuilder> {
        let mut merged = self.spilled.clone();
        for slot in self.slots.iter() {
            if slot.ip != EMPTY {
                let e = merged.entry(slot.ip).or_insert((0, 0));
                e.0 += slot.occurrences;
                e.1 += slot.mispredictions;
            }
        }
        merged
    }

    /// Number of distinct measured branch addresses.
    pub fn distinct_branches(&self) -> u64 {
        self.merged().len() as u64
    }

    /// The minimum number of branches whose mispredictions sum to at least
    /// half of `total_mispredictions` (the paper's
    /// `num_most_failed_branches`).
    pub fn half_coverage_count(&self, total_mispredictions: u64) -> u64 {
        if total_mispredictions == 0 {
            return 0;
        }
        let merged = self.merged();
        let mut counts: Vec<u64> = merged.values().map(|&(_, m)| m).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        for (i, m) in counts.iter().enumerate() {
            acc += m;
            if 2 * acc >= total_mispredictions {
                return i as u64 + 1;
            }
        }
        counts.len() as u64
    }

    /// The top-`limit` branches by misprediction count, with their stats.
    /// `instructions` is the measured instruction count used for per-branch
    /// MPKI. Ties break toward lower addresses so output is deterministic.
    pub fn top(&self, limit: usize, instructions: u64) -> Vec<BranchStat> {
        let merged = self.merged();
        let mut entries: Vec<(&u64, &(u64, u64))> = merged.iter().collect();
        entries
            .sort_unstable_by(|(ip_a, (_, ma)), (ip_b, (_, mb))| mb.cmp(ma).then(ip_a.cmp(ip_b)));
        entries
            .into_iter()
            .filter(|(_, (occ, _))| *occ > 0)
            .take(limit)
            .map(|(&ip, &(occ, mis))| BranchStat {
                ip,
                occurrences: occ,
                mispredictions: mis,
                mpki: if instructions == 0 {
                    0.0
                } else {
                    mis as f64 * 1000.0 / instructions as f64
                },
                accuracy: if occ == 0 {
                    1.0
                } else {
                    (occ - mis) as f64 / occ as f64
                },
            })
            .collect()
    }
}

/// Computes MPKI from raw counts.
pub fn mpki(mispredictions: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        mispredictions as f64 * 1000.0 / instructions as f64
    }
}

/// Computes accuracy from raw counts.
pub fn accuracy(mispredictions: u64, conditional_branches: u64) -> f64 {
    if conditional_branches == 0 {
        1.0
    } else {
        (conditional_branches - mispredictions) as f64 / conditional_branches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_and_accuracy_formulas() {
        assert_eq!(mpki(5, 1000), 5.0);
        assert_eq!(mpki(0, 0), 0.0);
        assert_eq!(accuracy(25, 100), 0.75);
        assert_eq!(accuracy(0, 0), 1.0);
    }

    #[test]
    fn half_coverage_single_dominant_branch() {
        let mut mf = MostFailed::new();
        for _ in 0..60 {
            mf.record(0xA, true);
        }
        for i in 0..40 {
            mf.record(0xB + i % 4, true);
        }
        // 0xA holds 60 of 100 mispredictions: one branch suffices.
        assert_eq!(mf.half_coverage_count(100), 1);
    }

    #[test]
    fn half_coverage_uniform_spread() {
        let mut mf = MostFailed::new();
        for ip in 0..10u64 {
            for _ in 0..10 {
                mf.record(ip, true);
            }
        }
        assert_eq!(mf.half_coverage_count(100), 5);
    }

    #[test]
    fn half_coverage_zero_mispredictions() {
        let mut mf = MostFailed::new();
        mf.record(1, false);
        assert_eq!(mf.half_coverage_count(0), 0);
    }

    #[test]
    fn top_sorts_by_mispredictions_then_ip() {
        let mut mf = MostFailed::new();
        for _ in 0..3 {
            mf.record(0x30, true);
        }
        for _ in 0..3 {
            mf.record(0x10, true);
        }
        for _ in 0..5 {
            mf.record(0x20, true);
        }
        mf.record(0x40, false);
        let top = mf.top(10, 1000);
        assert_eq!(top[0].ip, 0x20);
        assert_eq!(top[1].ip, 0x10, "tie broken toward lower ip");
        assert_eq!(top[2].ip, 0x30);
        assert_eq!(top[3].ip, 0x40);
        assert_eq!(top[0].mpki, 5.0);
        assert_eq!(top[3].accuracy, 1.0);
    }

    #[test]
    fn top_respects_limit() {
        let mut mf = MostFailed::new();
        for ip in 0..20u64 {
            mf.record(ip, true);
        }
        assert_eq!(mf.top(5, 100).len(), 5);
        assert_eq!(mf.distinct_branches(), 20);
    }
}
