//! Metric accumulation: MPKI, accuracy and the most-failed-branches report.

use std::collections::HashMap;

use mbp_utils::FastHashBuilder;

/// Aggregate metrics of a simulation (the `metrics` section of Listing 1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Mispredictions per kilo-instruction over the measured window.
    pub mpki: f64,
    /// Mispredicted conditional branches (post-warmup).
    pub mispredictions: u64,
    /// Correct predictions / measured conditional branches.
    pub accuracy: f64,
    /// Minimum number of static branches that account, on their own, for
    /// half of all mispredictions.
    pub num_most_failed_branches: u64,
    /// Wall-clock simulation time in seconds.
    pub simulation_time: f64,
}

/// Per-static-branch statistics (an entry of the `most_failed` list).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchStat {
    /// Address of the branch instruction.
    pub ip: u64,
    /// Measured dynamic occurrences.
    pub occurrences: u64,
    /// Mispredictions attributed to this branch.
    pub mispredictions: u64,
    /// Taken outcomes among the measured occurrences.
    pub taken: u64,
    /// This branch's contribution to MPKI.
    pub mpki: f64,
    /// Prediction accuracy on this branch alone.
    pub accuracy: f64,
    /// Shannon entropy of the branch's direction (0 = perfectly biased,
    /// 1 = 50/50).
    pub direction_entropy: f64,
    /// Fraction of consecutive occurrences whose outcomes differ
    /// (0 = constant, 1 = strictly alternating).
    pub transition_rate: f64,
}

/// Aggregated counts of one taxonomy class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassStat {
    /// Static branches in the class.
    pub branches: u64,
    /// Their dynamic occurrences.
    pub occurrences: u64,
    /// Their mispredictions.
    pub mispredictions: u64,
}

/// Entropy-class boundaries: `strongly_biased` H < 0.1, `biased` < 0.5,
/// `mixed` < 0.9, `unbiased` ≥ 0.9.
pub const ENTROPY_CLASSES: [&str; 4] = ["strongly_biased", "biased", "mixed", "unbiased"];
/// Transition-class boundaries: `stable` rate < 0.2, `irregular` < 0.8,
/// `alternating` ≥ 0.8.
pub const TRANSITION_CLASSES: [&str; 3] = ["stable", "irregular", "alternating"];

/// Per-static-branch misprediction characterization: how biased each
/// branch's direction is (entropy) and how often it flips (transition
/// rate), aggregated into fixed classes. The lens of the workload-
/// characterization literature: a high-MPKI predictor losing on
/// `unbiased`/`alternating` branches needs history; one losing on
/// `strongly_biased` branches has a capacity or aliasing problem.
///
/// Derived purely from outcome counts, so two drivers that process the
/// same record stream produce byte-identical taxonomies.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BranchTaxonomy {
    /// Static branches with at least one measured occurrence.
    pub measured_branches: u64,
    /// Occurrence-weighted mean direction entropy.
    pub mean_direction_entropy: f64,
    /// Occurrence-weighted mean transition rate.
    pub mean_transition_rate: f64,
    /// Per-class stats, in [`ENTROPY_CLASSES`] order.
    pub entropy_classes: [ClassStat; 4],
    /// Per-class stats, in [`TRANSITION_CLASSES`] order.
    pub transition_classes: [ClassStat; 3],
}

/// Shannon entropy of a branch taken `taken` times in `occurrences`.
pub(crate) fn direction_entropy(taken: u64, occurrences: u64) -> f64 {
    if occurrences == 0 || taken == 0 || taken == occurrences {
        return 0.0;
    }
    let p = taken as f64 / occurrences as f64;
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Transition rate over `occurrences` outcomes with `transitions` flips.
pub(crate) fn transition_rate(transitions: u64, occurrences: u64) -> f64 {
    if occurrences < 2 {
        0.0
    } else {
        transitions as f64 / (occurrences - 1) as f64
    }
}

fn entropy_class(h: f64) -> usize {
    match h {
        h if h < 0.1 => 0,
        h if h < 0.5 => 1,
        h if h < 0.9 => 2,
        _ => 3,
    }
}

fn transition_class(rate: f64) -> usize {
    match rate {
        r if r < 0.2 => 0,
        r if r < 0.8 => 1,
        _ => 2,
    }
}

/// The [`ENTROPY_CLASSES`] label for direction entropy `h`.
pub(crate) fn entropy_class_name(h: f64) -> &'static str {
    ENTROPY_CLASSES[entropy_class(h)]
}

/// The [`TRANSITION_CLASSES`] label for transition rate `rate`.
pub(crate) fn transition_class_name(rate: f64) -> &'static str {
    TRANSITION_CLASSES[transition_class(rate)]
}

/// Direct-mapped cache slots in front of the per-branch hash map. Static
/// branch working sets are small (hundreds to a few thousand ips), so
/// almost every dynamic occurrence hits its slot and costs two additions
/// instead of a hash-map probe — this accumulator sits on the simulator's
/// per-record hot path.
const SLOT_BITS: u32 = 11;
const SLOT_COUNT: usize = 1 << SLOT_BITS;
/// Branch addresses are below 2^51 (SBBT packet layout), so `u64::MAX`
/// can mark an empty slot.
const EMPTY: u64 = u64::MAX;

/// Exact per-branch outcome totals (slot-resident or spilled).
#[derive(Clone, Copy, Debug, Default)]
struct Counts {
    occurrences: u64,
    mispredictions: u64,
    taken: u64,
    transitions: u64,
}

impl Counts {
    fn absorb(&mut self, other: &Counts) {
        self.occurrences += other.occurrences;
        self.mispredictions += other.mispredictions;
        self.taken += other.taken;
        self.transitions += other.transitions;
    }
}

/// Sentinel for "no previous outcome observed" in [`Slot::last_taken`].
const NO_OUTCOME: u8 = 2;

#[derive(Clone, Copy, Debug)]
struct Slot {
    ip: u64,
    counts: Counts,
    /// Previous outcome (0/1), or [`NO_OUTCOME`] right after a claim.
    /// Transitions are only counted within a slot residency, so an evicted
    /// branch restarts its outcome chain — deterministic for a fixed record
    /// stream, which is all the taxonomy needs.
    last_taken: u8,
}

const EMPTY_SLOT: Slot = Slot {
    ip: EMPTY,
    counts: Counts {
        occurrences: 0,
        mispredictions: 0,
        taken: 0,
        transitions: 0,
    },
    last_taken: NO_OUTCOME,
};

/// Accumulates per-branch outcomes and derives the most-failed report.
///
/// Counts live in a direct-mapped slot array while a branch stays hot;
/// conflicting branches spill into the hash map and are merged back when a
/// report is derived, so totals are exact regardless of collisions.
#[derive(Clone, Debug)]
pub struct MostFailed {
    slots: Box<[Slot; SLOT_COUNT]>,
    spilled: HashMap<u64, Counts, FastHashBuilder>,
}

impl Default for MostFailed {
    fn default() -> Self {
        Self {
            slots: Box::new([EMPTY_SLOT; SLOT_COUNT]),
            spilled: HashMap::default(),
        }
    }
}

#[inline]
fn slot_index(ip: u64) -> usize {
    // Fibonacci hashing: one multiply, top bits as the index.
    (ip.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SLOT_BITS)) as usize
}

impl MostFailed {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one measured conditional branch outcome.
    #[inline]
    pub fn record(&mut self, ip: u64, taken: bool, mispredicted: bool) {
        let index = slot_index(ip);
        if self.slots[index].ip != ip {
            self.claim(index, ip);
        }
        let slot = &mut self.slots[index];
        slot.counts.occurrences += 1;
        slot.counts.mispredictions += mispredicted as u64;
        slot.counts.taken += taken as u64;
        slot.counts.transitions += (slot.last_taken == !taken as u8) as u64;
        slot.last_taken = taken as u8;
    }

    /// Notes a static branch address without attributing an outcome
    /// (unconditional branches, or warm-up occurrences).
    #[inline]
    pub fn note_static(&mut self, ip: u64) {
        let index = slot_index(ip);
        if self.slots[index].ip != ip {
            self.claim(index, ip);
        }
    }

    /// Evicts whatever occupies `index` into the spill map and claims the
    /// slot for `ip` with zeroed counts.
    #[cold]
    fn claim(&mut self, index: usize, ip: u64) {
        let slot = &mut self.slots[index];
        if slot.ip != EMPTY {
            self.spilled
                .entry(slot.ip)
                .or_default()
                .absorb(&slot.counts);
        }
        *slot = Slot {
            ip,
            counts: Counts::default(),
            last_taken: NO_OUTCOME,
        };
        // Spilled branches must keep their map entry even if they never
        // return, so note_static semantics survive eviction; the new
        // occupant gets its entry from the merge at report time.
        self.spilled.entry(ip).or_default();
    }

    /// Merges live slots and spilled entries into exact per-branch totals.
    fn merged(&self) -> HashMap<u64, Counts, FastHashBuilder> {
        let mut merged = self.spilled.clone();
        for slot in self.slots.iter() {
            if slot.ip != EMPTY {
                merged.entry(slot.ip).or_default().absorb(&slot.counts);
            }
        }
        merged
    }

    /// Number of distinct measured branch addresses.
    pub fn distinct_branches(&self) -> u64 {
        self.merged().len() as u64
    }

    /// The minimum number of branches whose mispredictions sum to at least
    /// half of `total_mispredictions` (the paper's
    /// `num_most_failed_branches`).
    pub fn half_coverage_count(&self, total_mispredictions: u64) -> u64 {
        if total_mispredictions == 0 {
            return 0;
        }
        let merged = self.merged();
        let mut counts: Vec<u64> = merged.values().map(|c| c.mispredictions).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        for (i, m) in counts.iter().enumerate() {
            acc += m;
            if 2 * acc >= total_mispredictions {
                return i as u64 + 1;
            }
        }
        counts.len() as u64
    }

    /// The top-`limit` branches by misprediction count, with their stats.
    /// `instructions` is the measured instruction count used for per-branch
    /// MPKI. Ties break toward lower addresses so output is deterministic.
    pub fn top(&self, limit: usize, instructions: u64) -> Vec<BranchStat> {
        let merged = self.merged();
        let mut entries: Vec<(&u64, &Counts)> = merged.iter().collect();
        entries.sort_unstable_by(|(ip_a, a), (ip_b, b)| {
            b.mispredictions.cmp(&a.mispredictions).then(ip_a.cmp(ip_b))
        });
        entries
            .into_iter()
            .filter(|(_, c)| c.occurrences > 0)
            .take(limit)
            .map(|(&ip, c)| BranchStat {
                ip,
                occurrences: c.occurrences,
                mispredictions: c.mispredictions,
                taken: c.taken,
                mpki: if instructions == 0 {
                    0.0
                } else {
                    c.mispredictions as f64 * 1000.0 / instructions as f64
                },
                accuracy: if c.occurrences == 0 {
                    1.0
                } else {
                    (c.occurrences - c.mispredictions) as f64 / c.occurrences as f64
                },
                direction_entropy: direction_entropy(c.taken, c.occurrences),
                transition_rate: transition_rate(c.transitions, c.occurrences),
            })
            .collect()
    }

    /// Characterizes every measured branch into the taxonomy classes.
    ///
    /// Entries are accumulated in address order, so the floating-point means
    /// are identical for any two accumulators that saw the same outcomes —
    /// regardless of hash-map iteration order.
    pub fn taxonomy(&self) -> BranchTaxonomy {
        let merged = self.merged();
        let mut entries: Vec<(&u64, &Counts)> = merged.iter().collect();
        entries.sort_unstable_by_key(|(ip, _)| **ip);

        let mut tax = BranchTaxonomy::default();
        let mut weighted_entropy = 0.0;
        let mut weighted_transition = 0.0;
        let mut occurrences = 0u64;
        for (_, c) in entries {
            if c.occurrences == 0 {
                continue; // never measured (warm-up only or unconditional)
            }
            let h = direction_entropy(c.taken, c.occurrences);
            let rate = transition_rate(c.transitions, c.occurrences);
            tax.measured_branches += 1;
            occurrences += c.occurrences;
            weighted_entropy += h * c.occurrences as f64;
            weighted_transition += rate * c.occurrences as f64;
            for (class, stat) in [
                (entropy_class(h), &mut tax.entropy_classes[..]),
                (transition_class(rate), &mut tax.transition_classes[..]),
            ] {
                stat[class].branches += 1;
                stat[class].occurrences += c.occurrences;
                stat[class].mispredictions += c.mispredictions;
            }
        }
        if occurrences > 0 {
            tax.mean_direction_entropy = weighted_entropy / occurrences as f64;
            tax.mean_transition_rate = weighted_transition / occurrences as f64;
        }
        tax
    }
}

/// Computes MPKI from raw counts.
pub fn mpki(mispredictions: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        mispredictions as f64 * 1000.0 / instructions as f64
    }
}

/// Computes accuracy from raw counts.
pub fn accuracy(mispredictions: u64, conditional_branches: u64) -> f64 {
    if conditional_branches == 0 {
        1.0
    } else {
        (conditional_branches - mispredictions) as f64 / conditional_branches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_and_accuracy_formulas() {
        assert_eq!(mpki(5, 1000), 5.0);
        assert_eq!(mpki(0, 0), 0.0);
        assert_eq!(accuracy(25, 100), 0.75);
        assert_eq!(accuracy(0, 0), 1.0);
    }

    #[test]
    fn half_coverage_single_dominant_branch() {
        let mut mf = MostFailed::new();
        for _ in 0..60 {
            mf.record(0xA, true, true);
        }
        for i in 0..40 {
            mf.record(0xB + i % 4, true, true);
        }
        // 0xA holds 60 of 100 mispredictions: one branch suffices.
        assert_eq!(mf.half_coverage_count(100), 1);
    }

    #[test]
    fn half_coverage_uniform_spread() {
        let mut mf = MostFailed::new();
        for ip in 0..10u64 {
            for _ in 0..10 {
                mf.record(ip, true, true);
            }
        }
        assert_eq!(mf.half_coverage_count(100), 5);
    }

    #[test]
    fn half_coverage_zero_mispredictions() {
        let mut mf = MostFailed::new();
        mf.record(1, true, false);
        assert_eq!(mf.half_coverage_count(0), 0);
    }

    #[test]
    fn top_sorts_by_mispredictions_then_ip() {
        let mut mf = MostFailed::new();
        for _ in 0..3 {
            mf.record(0x30, true, true);
        }
        for _ in 0..3 {
            mf.record(0x10, true, true);
        }
        for _ in 0..5 {
            mf.record(0x20, true, true);
        }
        mf.record(0x40, true, false);
        let top = mf.top(10, 1000);
        assert_eq!(top[0].ip, 0x20);
        assert_eq!(top[1].ip, 0x10, "tie broken toward lower ip");
        assert_eq!(top[2].ip, 0x30);
        assert_eq!(top[3].ip, 0x40);
        assert_eq!(top[0].mpki, 5.0);
        assert_eq!(top[3].accuracy, 1.0);
    }

    #[test]
    fn top_respects_limit() {
        let mut mf = MostFailed::new();
        for ip in 0..20u64 {
            mf.record(ip, true, true);
        }
        assert_eq!(mf.top(5, 100).len(), 5);
        assert_eq!(mf.distinct_branches(), 20);
    }

    #[test]
    fn entropy_extremes() {
        // Always-taken branch: zero entropy, zero transitions.
        let mut mf = MostFailed::new();
        for _ in 0..100 {
            mf.record(0xA, true, false);
        }
        // Alternating branch: maximal entropy and transition rate.
        for i in 0..100 {
            mf.record(0xB, i % 2 == 0, true);
        }
        let top = mf.top(10, 1000);
        let a = top.iter().find(|s| s.ip == 0xA).unwrap();
        let b = top.iter().find(|s| s.ip == 0xB).unwrap();
        assert_eq!(a.direction_entropy, 0.0);
        assert_eq!(a.transition_rate, 0.0);
        assert_eq!(a.taken, 100);
        assert!((b.direction_entropy - 1.0).abs() < 1e-12, "50/50 → H = 1");
        assert_eq!(b.transition_rate, 1.0, "strict alternation");
        assert_eq!(b.taken, 50);
    }

    #[test]
    fn taxonomy_classes_and_means() {
        let mut mf = MostFailed::new();
        for _ in 0..50 {
            mf.record(0x10, true, false); // strongly biased + stable
        }
        for i in 0..50 {
            mf.record(0x20, i % 2 == 0, true); // unbiased + alternating
        }
        let tax = mf.taxonomy();
        assert_eq!(tax.measured_branches, 2);
        assert_eq!(tax.entropy_classes[0].branches, 1, "strongly_biased");
        assert_eq!(tax.entropy_classes[3].branches, 1, "unbiased");
        assert_eq!(tax.transition_classes[0].branches, 1, "stable");
        assert_eq!(tax.transition_classes[2].branches, 1, "alternating");
        assert_eq!(tax.entropy_classes[3].mispredictions, 50);
        assert!((tax.mean_direction_entropy - 0.5).abs() < 1e-9);
        // 49 transitions over 49 consecutive pairs on 0x20, none on 0x10;
        // weighted by occurrences: (0*50 + 1*50) / 100.
        assert!((tax.mean_transition_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn taxonomy_survives_slot_eviction() {
        // Two addresses that collide in the slot array thrash each other;
        // totals must still be exact after the spill merge.
        let a = 0x100;
        let mut b = 0x101;
        while super::slot_index(b) != super::slot_index(a) {
            b += 1;
        }
        let mut mf = MostFailed::new();
        for i in 0..40 {
            mf.record(a, true, false);
            mf.record(b, i % 2 == 0, true);
        }
        let tax = mf.taxonomy();
        assert_eq!(tax.measured_branches, 2);
        let top = mf.top(10, 1000);
        let sa = top.iter().find(|s| s.ip == a).unwrap();
        let sb = top.iter().find(|s| s.ip == b).unwrap();
        assert_eq!(sa.occurrences, 40);
        assert_eq!(sa.taken, 40);
        assert_eq!(sb.occurrences, 40);
        assert_eq!(sb.taken, 20);
        // Each residency is a single record, so no within-residency pairs
        // exist and the transition count stays zero — deterministically.
        assert_eq!(sb.transition_rate, 0.0);
    }

    #[test]
    fn taxonomy_empty() {
        let mf = MostFailed::new();
        assert_eq!(mf.taxonomy(), BranchTaxonomy::default());
    }
}
