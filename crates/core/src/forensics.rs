//! Misprediction forensics: a bounded per-branch attribution engine.
//!
//! Aggregate MPKI says *how much* a predictor loses; forensics says *where*
//! and *why*. The engine keeps a capacity-bounded table of per-PC outcome
//! structure (direction entropy, transition rate, streak and misprediction
//! burst shape), classifies branches online against the hard-to-predict
//! (H2P) thresholds of the workload-characterization literature, and — for
//! composite predictors implementing
//! [`Predictor::last_mispredict_blame`](crate::Predictor::last_mispredict_blame)
//! — attributes each misprediction to the component that caused it.
//!
//! The table is bounded (default [`ForensicsConfig::capacity`]) with
//! clock-style eviction keyed by *misprediction mass*: each sweep of the
//! clock hand halves a slot's decaying misprediction weight and evicts the
//! first slot that reaches zero. A new branch may only claim a slot when it
//! mispredicts, so residency is biased toward the branches that matter and
//! slot churn is bounded by the misprediction rate, not the branch arrival
//! rate. Everything is deterministic: no randomness, no wall clock, and
//! address-ordered tie-breaking, so two runs over the same record stream
//! produce byte-identical reports. Global totals are accumulated outside
//! the table, so coverage fractions stay exact even after evictions.

use std::collections::HashMap;

use mbp_json::{json, Map, Value};
use mbp_utils::FastHashBuilder;

use crate::metrics::{
    direction_entropy, entropy_class_name, transition_class_name, transition_rate,
};

/// Schema version of the `"forensics"` report section.
pub const FORENSICS_SCHEMA_VERSION: u64 = 1;

/// A branch must execute at least this often to be classified H2P.
pub const H2P_MIN_OCCURRENCES: u64 = 16;

/// A branch must miss at least this fraction of executions to be H2P.
pub const H2P_MIN_MISPREDICTION_RATE: f64 = 0.05;

/// Same sentinel as the taxonomy accumulator: 0/1 are outcomes, 2 is
/// "no outcome observed yet".
const NO_OUTCOME: u8 = 2;

/// Configuration for the forensics engine.
#[derive(Clone, Debug)]
pub struct ForensicsConfig {
    /// Maximum number of per-branch slots resident at once.
    pub capacity: usize,
    /// Branches reported in the `"top"` array and coverage curve.
    pub top_limit: usize,
}

impl Default for ForensicsConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            top_limit: 10,
        }
    }
}

/// Per-branch forensic accumulator.
#[derive(Clone, Debug)]
struct ForensicSlot {
    ip: u64,
    occurrences: u64,
    mispredictions: u64,
    taken: u64,
    transitions: u64,
    last_taken: u8,
    /// Length of the current same-direction outcome run.
    streak: u64,
    max_streak: u64,
    /// Length of the current consecutive-misprediction run.
    burst: u64,
    max_burst: u64,
    /// Number of misprediction bursts (maximal runs of length ≥ 1).
    bursts: u64,
    /// Decaying misprediction weight driving clock eviction.
    mass: u64,
    /// Component attribution counts, insertion-ordered (sorted at render).
    blame: Vec<(&'static str, u64)>,
}

impl ForensicSlot {
    fn new(ip: u64) -> Self {
        Self {
            ip,
            occurrences: 0,
            mispredictions: 0,
            taken: 0,
            transitions: 0,
            last_taken: NO_OUTCOME,
            streak: 0,
            max_streak: 0,
            burst: 0,
            max_burst: 0,
            bursts: 0,
            mass: 0,
            blame: Vec::new(),
        }
    }

    fn record(&mut self, taken: bool, mispredicted: bool, blame: Option<&'static str>) {
        self.occurrences += 1;
        let outcome = taken as u8;
        if self.last_taken == outcome {
            self.streak += 1;
        } else {
            if self.last_taken != NO_OUTCOME {
                self.transitions += 1;
            }
            self.streak = 1;
        }
        self.max_streak = self.max_streak.max(self.streak);
        self.last_taken = outcome;
        self.taken += taken as u64;
        if mispredicted {
            self.mispredictions += 1;
            self.mass = self.mass.saturating_add(1);
            self.burst += 1;
            if self.burst == 1 {
                self.bursts += 1;
            }
            self.max_burst = self.max_burst.max(self.burst);
            if let Some(label) = blame {
                match self.blame.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += 1,
                    None => self.blame.push((label, 1)),
                }
            }
        } else {
            self.burst = 0;
        }
    }

    fn misprediction_rate(&self) -> f64 {
        if self.occurrences == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.occurrences as f64
        }
    }

    fn is_h2p(&self) -> bool {
        self.occurrences >= H2P_MIN_OCCURRENCES
            && self.misprediction_rate() >= H2P_MIN_MISPREDICTION_RATE
    }
}

/// The bounded per-branch forensics table.
///
/// # Examples
///
/// ```
/// use mbp_core::{Forensics, ForensicsConfig};
///
/// let mut f = Forensics::new(&ForensicsConfig::default());
/// for i in 0..32 {
///     f.record(0x40, i % 2 == 0, i % 2 == 0, None); // alternating, 50% missed
/// }
/// let report = f.report(32_000);
/// assert_eq!(report["top"][0]["ip"].as_u64(), Some(0x40));
/// assert_eq!(report["h2p_branches"].as_u64(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct Forensics {
    capacity: usize,
    top_limit: usize,
    index: HashMap<u64, usize, FastHashBuilder>,
    slots: Vec<ForensicSlot>,
    /// Clock-eviction hand.
    hand: usize,
    evictions: u64,
    /// Global totals, independent of table residency.
    conditional_branches: u64,
    mispredictions: u64,
}

impl Forensics {
    /// Builds an empty table with the configured bounds.
    pub fn new(cfg: &ForensicsConfig) -> Self {
        Self {
            capacity: cfg.capacity.max(1),
            top_limit: cfg.top_limit.max(1),
            index: HashMap::default(),
            slots: Vec::new(),
            hand: 0,
            evictions: 0,
            conditional_branches: 0,
            mispredictions: 0,
        }
    }

    /// Records one measured conditional branch outcome.
    ///
    /// `blame` is the component label reported by the predictor's
    /// attribution hook for this misprediction (ignored unless
    /// `mispredicted`).
    pub fn record(
        &mut self,
        ip: u64,
        taken: bool,
        mispredicted: bool,
        blame: Option<&'static str>,
    ) {
        self.conditional_branches += 1;
        if mispredicted {
            self.mispredictions += 1;
        }
        if let Some(&i) = self.index.get(&ip) {
            self.slots[i].record(taken, mispredicted, blame);
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(ForensicSlot::new(ip));
            self.slots.len() - 1
        } else if mispredicted {
            // The table is full: only a mispredicting branch may claim a
            // slot, by evicting the slot whose decaying misprediction mass
            // first reaches zero under the clock hand.
            let i = self.evict();
            self.slots[i] = ForensicSlot::new(ip);
            i
        } else {
            // Well-predicted new branches still count in the global totals
            // above but do not displace resident offenders.
            return;
        };
        self.index.insert(ip, i);
        self.slots[i].record(taken, mispredicted, blame);
    }

    /// Clock eviction: halve the mass of each visited slot and evict the
    /// first that reaches zero. Bounded at two full sweeps (after one full
    /// sweep every mass has at least halved; after two, any slot with mass
    /// below 2^sweeps is zero), then the hand position is evicted outright.
    fn evict(&mut self) -> usize {
        let mut victim = self.hand;
        for _ in 0..2 * self.capacity {
            let slot = &mut self.slots[self.hand];
            slot.mass /= 2;
            let here = self.hand;
            self.hand = (self.hand + 1) % self.capacity;
            if self.slots[here].mass == 0 {
                victim = here;
                break;
            }
            victim = self.hand;
        }
        self.index.remove(&self.slots[victim].ip);
        self.evictions += 1;
        victim
    }

    /// Number of branches currently resident in the table.
    pub fn tracked_branches(&self) -> usize {
        self.index.len()
    }

    /// Global measured conditional-branch count (survives eviction).
    pub fn conditional_branches(&self) -> u64 {
        self.conditional_branches
    }

    /// Global misprediction count (survives eviction).
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// The currently worst resident branch `(ip, mispredictions)`, ties
    /// broken toward the lower address.
    pub fn worst_branch(&self) -> Option<(u64, u64)> {
        self.index
            .values()
            .map(|&i| (self.slots[i].ip, self.slots[i].mispredictions))
            .filter(|&(_, m)| m > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Renders the versioned forensic report over `instructions` measured
    /// instructions. Deterministic: branches sort by mispredictions
    /// descending then address ascending, attribution labels sort
    /// lexicographically.
    pub fn report(&self, instructions: u64) -> Value {
        let mut order: Vec<&ForensicSlot> = self
            .index
            .values()
            .map(|&i| &self.slots[i])
            .filter(|s| s.mispredictions > 0)
            .collect();
        order.sort_by(|a, b| {
            b.mispredictions
                .cmp(&a.mispredictions)
                .then(a.ip.cmp(&b.ip))
        });

        let h2p_branches = self
            .index
            .values()
            .filter(|&&i| self.slots[i].is_h2p())
            .count() as u64;

        let mut top = Vec::new();
        let mut coverage = Vec::new();
        let mut covered = 0u64;
        for (n, slot) in order.iter().take(self.top_limit).enumerate() {
            let entropy = direction_entropy(slot.taken, slot.occurrences);
            let transition = transition_rate(slot.transitions, slot.occurrences);
            let mut branch = Map::new();
            branch.insert("ip", slot.ip);
            branch.insert("occurrences", slot.occurrences);
            branch.insert("mispredictions", slot.mispredictions);
            branch.insert("misprediction_rate", slot.misprediction_rate());
            branch.insert(
                "taken_rate",
                if slot.occurrences == 0 {
                    0.0
                } else {
                    slot.taken as f64 / slot.occurrences as f64
                },
            );
            branch.insert("direction_entropy", entropy);
            branch.insert("entropy_class", entropy_class_name(entropy));
            branch.insert("transition_rate", transition);
            branch.insert("transition_class", transition_class_name(transition));
            branch.insert("max_streak", slot.max_streak);
            branch.insert("max_misprediction_burst", slot.max_burst);
            branch.insert("misprediction_bursts", slot.bursts);
            branch.insert(
                "mpki",
                if instructions == 0 {
                    0.0
                } else {
                    slot.mispredictions as f64 * 1000.0 / instructions as f64
                },
            );
            branch.insert("h2p", slot.is_h2p());
            let mut labels: Vec<&(&'static str, u64)> = slot.blame.iter().collect();
            labels.sort_by(|a, b| a.0.cmp(b.0));
            let mut attribution = Map::new();
            for (label, count) in labels {
                attribution.insert(*label, *count);
            }
            branch.insert("attribution", attribution);
            top.push(Value::from(branch));

            covered += slot.mispredictions;
            coverage.push(json!({
                "top_n": (n + 1) as u64,
                "mispredictions": covered,
                "fraction": if self.mispredictions == 0 {
                    0.0
                } else {
                    covered as f64 / self.mispredictions as f64
                },
            }));
        }

        json!({
            "schema_version": FORENSICS_SCHEMA_VERSION,
            "capacity": self.capacity as u64,
            "tracked_branches": self.tracked_branches() as u64,
            "evictions": self.evictions,
            "conditional_branches": self.conditional_branches,
            "mispredictions": self.mispredictions,
            "h2p_branches": h2p_branches,
            "top": top,
            "coverage": coverage,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Forensics {
        Forensics::new(&ForensicsConfig {
            capacity: 4,
            top_limit: 10,
        })
    }

    #[test]
    fn accumulates_structure_per_branch() {
        let mut f = Forensics::new(&ForensicsConfig::default());
        // T T T N T N: 3 transitions, streak max 3.
        let outcomes = [true, true, true, false, true, false];
        for (i, &t) in outcomes.iter().enumerate() {
            f.record(
                0x100,
                t,
                i >= 3,
                if i >= 3 { Some("provider") } else { None },
            );
        }
        let doc = f.report(6_000);
        let b = &doc["top"][0];
        assert_eq!(b["ip"].as_u64(), Some(0x100));
        assert_eq!(b["occurrences"].as_u64(), Some(6));
        assert_eq!(b["mispredictions"].as_u64(), Some(3));
        assert_eq!(b["max_streak"].as_u64(), Some(3));
        // Misses at indices 3,4,5 form one burst of length 3.
        assert_eq!(b["misprediction_bursts"].as_u64(), Some(1));
        assert_eq!(b["max_misprediction_burst"].as_u64(), Some(3));
        assert_eq!(b["attribution"]["provider"].as_u64(), Some(3));
        assert_eq!(
            doc["schema_version"].as_u64(),
            Some(FORENSICS_SCHEMA_VERSION)
        );
    }

    #[test]
    fn h2p_requires_volume_and_rate() {
        let mut f = Forensics::new(&ForensicsConfig::default());
        // 0x10: frequent and often missed -> H2P.
        for i in 0..100 {
            f.record(0x10, i % 2 == 0, i % 3 == 0, None);
        }
        // 0x20: frequent but rarely missed -> not H2P.
        for i in 0..100 {
            f.record(0x20, true, i == 0, None);
        }
        // 0x30: missed every time but too rare -> not H2P.
        for _ in 0..4 {
            f.record(0x30, true, true, None);
        }
        assert_eq!(f.report(1)["h2p_branches"].as_u64(), Some(1));
    }

    #[test]
    fn full_table_admits_only_mispredicting_branches() {
        let mut f = small();
        for ip in 0..4u64 {
            f.record(ip, true, true, None);
        }
        // Well-predicted newcomer: counted globally, not resident.
        f.record(100, true, false, None);
        assert_eq!(f.tracked_branches(), 4);
        assert_eq!(f.conditional_branches(), 5);
        // Mispredicting newcomer evicts a resident slot.
        f.record(101, true, true, None);
        assert_eq!(f.tracked_branches(), 4);
        assert_eq!(f.report(1)["evictions"].as_u64(), Some(1));
    }

    #[test]
    fn eviction_prefers_low_misprediction_mass() {
        let mut f = small();
        for ip in 0..4u64 {
            // Branch `ip` accumulates `4 + ip * 8` mispredictions of mass.
            for _ in 0..(4 + ip * 8) {
                f.record(ip, true, true, None);
            }
        }
        // The clock halves masses until one hits zero; the lightest slot
        // (ip 0, mass 4) zeroes first.
        f.record(99, true, true, None);
        assert_eq!(f.tracked_branches(), 4);
        let doc = f.report(1);
        let ips: Vec<u64> = doc["top"]
            .as_array()
            .unwrap()
            .iter()
            .map(|b| b["ip"].as_u64().unwrap())
            .collect();
        assert!(!ips.contains(&0), "lightest branch evicted: {ips:?}");
        assert!(ips.contains(&3) && ips.contains(&99));
    }

    #[test]
    fn coverage_curve_is_cumulative_over_global_total() {
        let mut f = Forensics::new(&ForensicsConfig {
            capacity: 4096,
            top_limit: 2,
        });
        for _ in 0..6 {
            f.record(0xA, true, true, None);
        }
        for _ in 0..3 {
            f.record(0xB, true, true, None);
        }
        f.record(0xC, true, true, None);
        let doc = f.report(1);
        let cov = doc["coverage"].as_array().unwrap();
        assert_eq!(cov.len(), 2);
        assert_eq!(cov[0]["mispredictions"].as_u64(), Some(6));
        assert_eq!(cov[0]["fraction"].as_f64(), Some(0.6));
        assert_eq!(cov[1]["mispredictions"].as_u64(), Some(9));
        assert_eq!(cov[1]["fraction"].as_f64(), Some(0.9));
    }

    #[test]
    fn report_is_deterministic_and_address_ordered_on_ties() {
        let mut a = Forensics::new(&ForensicsConfig::default());
        let mut b = Forensics::new(&ForensicsConfig::default());
        for f in [&mut a, &mut b] {
            f.record(0x30, true, true, None);
            f.record(0x10, false, true, None);
            f.record(0x20, true, true, None);
        }
        let ra = a.report(3_000).to_pretty_string();
        let rb = b.report(3_000).to_pretty_string();
        assert_eq!(ra, rb);
        let doc = a.report(3_000);
        let ips: Vec<u64> = doc["top"]
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x["ip"].as_u64().unwrap())
            .collect();
        assert_eq!(ips, [0x10, 0x20, 0x30], "ties break toward low address");
    }

    #[test]
    fn worst_branch_tracks_max_mispredictions() {
        let mut f = small();
        assert_eq!(f.worst_branch(), None);
        f.record(0x10, true, false, None);
        assert_eq!(f.worst_branch(), None, "no mispredictions yet");
        f.record(0x20, true, true, None);
        f.record(0x30, true, true, None);
        f.record(0x30, true, true, None);
        assert_eq!(f.worst_branch(), Some((0x30, 2)));
    }
}
